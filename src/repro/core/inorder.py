"""In-order baseline: SASE-style SSC assuming ordered arrival.

This is the "state of the art" (circa 2006) the paper measures against:
a sequence-scan / sequence-construction engine whose correctness rests
on the assumption that **arrival order equals occurrence order**.

Architecture (faithful to the AIS design):

* per-step stacks are **append-only** in arrival order; each instance
  records a *rightmost instance pointer* (RIP) — the size of the
  previous step's stack at insertion time.  Construction follows RIP
  pointers, i.e. only considers combinations whose members arrived in
  step order;
* construction triggers **only on final-step arrivals**;
* purging and negation sealing are driven by the **raw clock** (max
  timestamp seen), the correct horizon when arrival is ordered.

The engine is given every benefit of the doubt: it checks strict
timestamp increase along a candidate combination (so it never emits a
temporally invalid sequence even when its ordering assumption is
broken) and evaluates the window and all ``WHERE`` predicates exactly.

What still breaks under out-of-order arrival — quantified in
experiment E1:

* **missed matches**: a late event is appended at the top of its stack,
  so RIP pointers of earlier-arrived later-step instances never reach
  it; matches whose latest-arriving member is not at the final step are
  never constructed; purge keyed on the raw clock may have already
  dropped the partners a late event needed;
* **false positives**: negation seals on the raw clock, so a match is
  released before a late negative event that invalidates it arrives.

On genuinely ordered input the engine is exactly correct (the test
suite pins it to the oracle), making it a fair throughput baseline at
zero disorder.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core import snapshot as snapshots
from repro.core.clock import StreamClock
from repro.core.engine import Engine, ValidationPolicy
from repro.core.errors import EngineStateError
from repro.core.event import (
    Event,
    Punctuation,
    StreamElement,
    admission_error,
    malformed_reason,
)
from repro.core.negation import collect_kleene, PendingMatches, seal_point, violated
from repro.core.pattern import Match, Pattern
from repro.core.purge import PurgeMode, PurgePolicy, Purger
from repro.core.stacks import NegativeStore


class _RipInstance:
    """Stack entry: the event plus the RIP into the previous stack."""

    __slots__ = ("event", "arrival", "rip")

    def __init__(self, event: Event, arrival: int, rip: int):
        self.event = event
        self.arrival = arrival
        self.rip = rip

    @property
    def ts(self) -> int:
        return self.event.ts


class InOrderEngine(Engine):
    """SASE-style engine: exactly correct on ordered streams, breaks on disorder."""

    def __init__(
        self,
        pattern: Pattern,
        purge: Optional[PurgePolicy] = None,
    ):
        super().__init__(pattern)
        # k=0: "arrival order equals occurrence order" as a clock promise.
        self.clock = StreamClock(k=0)
        # Cloned: due() mutates schedule state, so engines must not share
        # the caller's policy object (see PurgePolicy.clone).
        self.purge_policy = (purge if purge is not None else PurgePolicy.eager()).clone()
        self.stacks: List[List[_RipInstance]] = [[] for _ in range(pattern.length)]
        self.negatives = NegativeStore(pattern.negated_types)
        self.kleene_store = NegativeStore(pattern.kleene_types)
        self.pending = PendingMatches()
        self.purger = Purger(pattern.within, pattern.length)
        # Predicate pushdown for the RIP descent (SASE evaluates
        # predicates during construction, not on complete combos): a
        # predicate becomes checkable at the *earliest* positive step it
        # mentions, because descent binds steps from the last backwards.
        self._vars = [s.var for s in pattern.positive_steps]
        position = {var: i for i, var in enumerate(self._vars)}
        self._desc_staged: List[List] = [[] for _ in range(pattern.length)]
        for predicate in pattern.positive_predicates:
            earliest = min(position[v] for v in predicate.variables())
            self._desc_staged[earliest].append(predicate)
        # Per-step local predicates (single-variable), resolved once so
        # admission does not re-filter the staged lists per event.
        self._local: List[List] = []
        for step in pattern.positive_steps:
            staged = pattern.staged.get(step.var, [])
            self._local.append([p for p in staged if p.variables() == {step.var}])
        # Event type → ((step_index, var, local predicates), …), so the
        # batched path admits with a single dict probe.
        self._admission: Dict[str, Tuple] = {}
        for etype, steps in pattern.steps_of_type.items():
            self._admission[etype] = tuple(
                (index, self._vars[index], tuple(self._local[index])) for index in steps
            )

    # -- state ---------------------------------------------------------------

    def state_size(self) -> int:
        stacked = sum(len(stack) for stack in self.stacks)
        return (
            stacked
            + self.negatives.size()
            + self.kleene_store.size()
            + len(self.pending)
        )

    # -- checkpoint / restore -----------------------------------------------------

    def _snapshot_config(self) -> dict:
        config = super()._snapshot_config()
        config["purge"] = (self.purge_policy.mode.value, self.purge_policy.interval)
        return config

    def _snapshot_state(self) -> dict:
        state = self._base_state()
        state.update(
            {
                "clock": self.clock.snapshot_state(),
                "purge_policy": self.purge_policy.snapshot_state(),
                "stacks": [
                    [(i.event, i.arrival, i.rip) for i in stack]
                    for stack in self.stacks
                ],
                "negatives": self.negatives.snapshot_state(),
                "kleene": self.kleene_store.snapshot_state(),
                "pending": self.pending.snapshot_state(snapshots.encode_match),
            }
        )
        return state

    def _restore_state(self, state: dict) -> None:
        self._restore_base(state)
        self.clock.restore_state(state["clock"])
        self.purge_policy.restore_state(state["purge_policy"])
        self.stacks = [
            [_RipInstance(event, arrival, rip) for event, arrival, rip in stack]
            for stack in state["stacks"]
        ]
        self.negatives.restore_state(state["negatives"])
        self.kleene_store.restore_state(state["kleene"])
        self.pending.restore_state(state["pending"], self._decode_match)

    # -- processing -------------------------------------------------------------

    def _process_event(self, event: Event) -> List[Match]:
        emitted: List[Match] = []
        if self.clock.observe(event):
            self.stats.out_of_order_events += 1

        if event.etype not in self.pattern.relevant_types:
            self.stats.events_ignored += 1
        else:
            admitted = False
            if self.negatives.relevant(event.etype):
                self.negatives.insert(event)
                admitted = True
            if self.kleene_store.relevant(event.etype):
                self.kleene_store.insert(event)
                admitted = True
            for step_index in self.pattern.steps_of_type.get(event.etype, ()):
                if not self._local_ok(step_index, event):
                    continue
                admitted = True
                rip = len(self.stacks[step_index - 1]) if step_index > 0 else 0
                instance = _RipInstance(event, self._arrival, rip)
                self.stacks[step_index].append(instance)
                if step_index == self.pattern.length - 1:
                    for match in self._construct(instance):
                        self._route(match, emitted)
            if admitted:
                self.stats.events_admitted += 1
            else:
                self.stats.events_ignored += 1

        self._release_ripe(emitted)
        if self.purge_policy.due():
            self._purge()
        return emitted

    def _on_punctuation(self, punctuation: Punctuation) -> List[Match]:
        self.clock.observe_punctuation(punctuation)
        emitted: List[Match] = []
        self._release_ripe(emitted)
        if self.purge_policy.due():
            self._purge()
        return emitted

    def _flush(self) -> List[Match]:
        emitted: List[Match] = []
        for match in self.pending.drain():
            self._decide(match, emitted)
        return emitted

    # -- batched fast path -------------------------------------------------------

    def feed_batch(self, elements: Iterable[StreamElement]) -> List[Match]:
        """Batched hot path; observably identical to feeding one at a time.

        Same playbook as :meth:`OutOfOrderEngine.feed_batch`: hoist
        attribute lookups and clock/purge arithmetic into locals, admit
        via the pre-resolved per-type table, accumulate flow counters
        locally (flushed in ``finally``), and elide purge scans that are
        provably no-ops (horizon unmoved and no insert landed at or
        below a purge threshold since the last scan — elided runs still
        count in ``stats.purge_runs``, exactly as the per-event path
        counts its no-op scans).
        """
        if self._closed:
            raise EngineStateError(f"{type(self).__name__} is closed")
        if self._obs is not None:
            # Observability classifies per-element stat deltas the fused
            # loop does not model; take the reference loop.
            return Engine.feed_batch(self, elements)
        emitted: List[Match] = []
        stats = self.stats
        clock = self.clock
        pattern = self.pattern
        stacks = self.stacks
        negatives = self.negatives
        kleene_store = self.kleene_store
        pending_heap = self.pending._heap
        purge_policy = self.purge_policy
        relevant_types = pattern.relevant_types
        admission = self._admission
        neg_relevant = negatives.relevant
        kleene_relevant = kleene_store.relevant
        neg_insert = negatives.insert
        kleene_insert = kleene_store.insert
        construct = self._construct
        route = self._route
        window = pattern.within
        final = pattern.length - 1

        purge_mode = purge_policy.mode
        purge_eager = purge_mode is PurgeMode.EAGER
        purge_lazy = purge_mode is PurgeMode.LAZY
        purge_interval = purge_policy.interval
        since_last = purge_policy._since_last

        quarantine = self.validation is ValidationPolicy.QUARANTINE
        quarantined = 0
        max_ts = clock._max_ts
        horizon = clock.horizon()
        observations = 0
        stacked = sum(len(stack) for stack in stacks)
        side_size = negatives.size() + kleene_store.size()
        peak = stats.peak_state_size
        events_in = 0
        events_admitted = 0
        events_ignored = 0
        out_of_order = 0
        predicate_evals = 0
        # Purge-elision trackers: the horizon the last real scan ran at,
        # and whether any insert since could sit at/below a threshold.
        purged_at = -2
        dirty = True
        try:
            for element in elements:
                if isinstance(element, Event):
                    ts = element.ts
                    etype = element.etype
                    # Inlined admission screen (mirrors malformed_reason).
                    if (
                        type(ts) is not int
                        or ts < 0
                        or not isinstance(etype, str)
                        or not etype
                    ):
                        if quarantine:
                            quarantined += 1
                            continue
                        raise admission_error(element)
                    self._arrival += 1
                    events_in += 1
                    observations += 1
                    if ts > max_ts:
                        max_ts = ts
                        clock._max_ts = ts
                        advanced = ts - 1  # k = 0: horizon = max_ts - 1
                        if advanced > horizon:
                            horizon = advanced
                    elif ts < max_ts:
                        out_of_order += 1
                    if etype not in relevant_types:
                        events_ignored += 1
                    else:
                        admitted = False
                        if neg_relevant(etype):
                            neg_insert(element)
                            admitted = True
                            side_size += 1
                            if ts <= horizon - window:
                                dirty = True
                        if kleene_relevant(etype):
                            kleene_insert(element)
                            admitted = True
                            side_size += 1
                            if ts <= horizon - window:
                                dirty = True
                        entries = admission.get(etype)
                        if entries:
                            arrival = self._arrival
                            for step_index, var, predicates in entries:
                                if predicates:
                                    bindings = {var: element}
                                    ok = True
                                    for predicate in predicates:
                                        predicate_evals += 1
                                        if not predicate.evaluate(bindings):
                                            ok = False
                                            break
                                    if not ok:
                                        continue
                                admitted = True
                                rip = len(stacks[step_index - 1]) if step_index > 0 else 0
                                instance = _RipInstance(element, arrival, rip)
                                stacks[step_index].append(instance)
                                stacked += 1
                                if step_index == final:
                                    if ts <= horizon + 1:
                                        dirty = True
                                    for match in construct(instance):
                                        route(match, emitted)
                                elif ts <= horizon - window:
                                    dirty = True
                        if admitted:
                            events_admitted += 1
                        else:
                            events_ignored += 1
                    if pending_heap:
                        self._release_ripe(emitted)
                    if purge_eager:
                        due = True
                    elif purge_lazy:
                        since_last += 1
                        if since_last >= purge_interval:
                            since_last = 0
                            due = True
                        else:
                            due = False
                    else:
                        due = False
                    if due and horizon >= 0:
                        if dirty or horizon > purged_at:
                            self._purge()
                            purged_at = horizon
                            dirty = False
                            stacked = sum(len(stack) for stack in stacks)
                            side_size = negatives.size() + kleene_store.size()
                        else:
                            stats.purge_runs += 1
                    size_now = stacked + side_size + len(pending_heap)
                    if size_now > peak:
                        peak = size_now
                else:
                    if malformed_reason(element) is not None:
                        if quarantine:
                            quarantined += 1
                            continue
                        raise admission_error(element)
                    # Punctuations take the per-element path; sync the
                    # hoisted locals across the call.
                    stats.punctuations_in += 1
                    clock._observations += observations
                    observations = 0
                    purge_policy._since_last = since_last
                    emitted.extend(self._on_punctuation(element))
                    max_ts = clock._max_ts
                    horizon = clock.horizon()
                    since_last = purge_policy._since_last
                    stacked = sum(len(stack) for stack in stacks)
                    side_size = negatives.size() + kleene_store.size()
                    purged_at = -2
                    dirty = True
                    size_now = stacked + side_size + len(pending_heap)
                    if size_now > peak:
                        peak = size_now
        finally:
            clock._observations += observations
            purge_policy._since_last = since_last
            stats.peak_state_size = peak
            stats.events_quarantined += quarantined
            stats.events_in += events_in
            stats.events_admitted += events_admitted
            stats.events_ignored += events_ignored
            stats.out_of_order_events += out_of_order
            stats.predicate_evaluations += predicate_evals
        return emitted

    # -- construction (RIP descent) --------------------------------------------------

    def _construct(self, trigger: _RipInstance) -> List[Match]:
        self.stats.construction_triggers += 1
        pattern = self.pattern
        matches: List[Match] = []
        bindings = {self._vars[-1]: trigger.event}
        if pattern.length == 1:
            if self._staged_ok(0, bindings):
                matches.append(
                    Match(pattern, [trigger.event], detected_at=trigger.arrival)
                )
            return matches
        if not self._staged_ok(pattern.length - 1, bindings):
            return matches
        suffix: List[_RipInstance] = [trigger]
        self._descend(pattern.length - 2, trigger, suffix, bindings, matches)
        return matches

    def _descend(
        self,
        step: int,
        trigger: _RipInstance,
        suffix: List[_RipInstance],
        bindings: dict,
        matches: List[Match],
    ) -> None:
        pattern = self.pattern
        newest = suffix[-1]
        # RIP: only instances that had arrived when `newest` was inserted.
        candidates = self.stacks[step][: newest.rip]
        floor = trigger.ts - pattern.within
        var = self._vars[step]
        for candidate in candidates:
            self.stats.partial_combinations += 1
            # Benefit of the doubt: strict timestamp increase is checked,
            # so broken ordering never yields an invalid sequence.
            if candidate.ts >= newest.ts or candidate.ts < floor:
                continue
            bindings[var] = candidate.event
            if not self._staged_ok(step, bindings):
                del bindings[var]
                continue
            suffix.append(candidate)
            if step == 0:
                events = [inst.event for inst in reversed(suffix)]
                matches.append(Match(pattern, events, detected_at=trigger.arrival))
            else:
                self._descend(step - 1, trigger, suffix, bindings, matches)
            suffix.pop()
            del bindings[var]

    def _staged_ok(self, step: int, bindings: dict) -> bool:
        """Predicates whose earliest mentioned step is *step* (pushdown)."""
        for predicate in self._desc_staged[step]:
            self.stats.predicate_evaluations += 1
            if not predicate.evaluate(bindings):
                return False
        return True

    def _local_ok(self, step_index: int, event: Event) -> bool:
        local = self._local[step_index]
        if not local:
            return True
        step = self.pattern.positive_steps[step_index]
        bindings = {step.var: event}
        for predicate in local:
            self.stats.predicate_evaluations += 1
            if not predicate.evaluate(bindings):
                return False
        return True

    # -- negation / purge ---------------------------------------------------------------

    def _route(self, match: Match, emitted: List[Match]) -> None:
        point = seal_point(self.pattern, match)
        if point <= self.clock.horizon():
            self._decide(match, emitted)
        else:
            self.pending.add(match, point)
            self.stats.matches_pending = len(self.pending)
            if self._obs is not None:
                self._obs.note_pending(self, match, point)

    def _decide(self, match: Match, emitted: List[Match]) -> None:
        if self.pattern.has_negation and violated(
            self.pattern, match, self.negatives, self.stats
        ):
            self.stats.matches_cancelled += 1
            if self._obs is not None:
                self._obs.note_cancelled(self, match, "negation violated at seal")
            return
        if self.pattern.has_kleene:
            collections = collect_kleene(
                self.pattern, match, self.kleene_store, self.stats
            )
            if collections is None:
                self.stats.matches_cancelled += 1
                if self._obs is not None:
                    self._obs.note_cancelled(self, match, "empty kleene collection")
                return
            match = match.with_collections(collections)
        self._emit(match, self.clock.now)
        emitted.append(match)

    def _release_ripe(self, emitted: List[Match]) -> None:
        for match in self.pending.release(self.clock.horizon()):
            self._decide(match, emitted)
        self.stats.matches_pending = len(self.pending)

    def _purge(self) -> None:
        horizon = self.clock.horizon()
        if horizon < 0:
            return
        final = self.pattern.length - 1
        dropped = 0
        for index, stack in enumerate(self.stacks):
            threshold = horizon + 1 if index == final else horizon - self.pattern.within
            kept = []
            removed = 0
            for instance in stack:
                if instance.ts <= threshold:
                    removed += 1
                else:
                    kept.append(instance)
            if removed:
                # RIP pointers index into the previous stack; shifting that
                # stack left by `removed` requires rescaling the next
                # stack's pointers — the in-order engine does this under
                # its ordering assumption (purged entries are a prefix).
                if index + 1 < len(self.stacks):
                    for later in self.stacks[index + 1]:
                        later.rip = max(0, later.rip - removed)
                stack[:] = kept
                dropped += removed
        self.stats.instances_purged += dropped
        self.stats.negatives_purged += self.negatives.purge_through(
            horizon - self.pattern.within
        )
        self.stats.negatives_purged += self.kleene_store.purge_through(
            horizon - self.pattern.within
        )
        self.stats.purge_runs += 1
