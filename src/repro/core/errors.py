"""Exception hierarchy for the repro event-processing library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  The concrete
subclasses distinguish the three failure domains a stream engine has:
malformed queries, malformed stream input, and violated runtime promises
(most importantly the disorder bound K).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class QueryError(ReproError):
    """A pattern query is structurally invalid.

    Raised while *building* a query: unknown variables in predicates,
    adjacent negated components, non-positive windows, and similar
    static problems.  A query that constructs without raising
    ``QueryError`` is guaranteed evaluable by every engine.
    """


class ParseError(QueryError):
    """The textual query language could not be parsed.

    Carries the offending position so tooling can point at it.
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            pointer = text[:position] + " >>> " + text[position:]
            message = f"{message} (at position {position}: {pointer!r})"
        super().__init__(message)


class StreamError(ReproError):
    """A stream element is malformed (e.g. negative timestamp)."""


class DisorderBoundViolation(StreamError):
    """An event arrived later than the promised disorder bound K allows.

    The engine's purge correctness relies on the K promise; by default a
    violating event is rejected with this error.  Engines can be
    configured to count-and-drop instead (see ``LatePolicy``).
    """

    def __init__(self, event, clock: int, bound: int):
        self.event = event
        self.clock = clock
        self.bound = bound
        super().__init__(
            f"event {event!r} with ts={event.ts} arrived while clock={clock}; "
            f"violates disorder bound K={bound} (clock - K = {clock - bound})"
        )


class EngineStateError(ReproError):
    """The engine was driven through an invalid lifecycle transition.

    For example: feeding events after ``close()``, or asking a purged
    engine to replay state it no longer holds.
    """


class ConfigurationError(ReproError):
    """Engine or substrate configuration is inconsistent."""


class SnapshotError(ReproError):
    """A snapshot blob cannot be restored into this engine.

    Raised when the blob is corrupt, was produced by a different engine
    class, or was produced under a different configuration (pattern, K,
    purge schedule, …).  Restoring state into a differently-configured
    engine would silently change semantics, so the mismatch is fatal.
    """


class RecoveryError(ReproError):
    """Crash recovery found inconsistent durable state.

    Raised when the write-ahead log, checkpoint and delivered-output log
    disagree — e.g. a replayed match does not reproduce the logged
    emission it is supposed to dedup against.  Indicates corruption or a
    non-deterministic engine, both of which make exactly-once delivery
    impossible to guarantee.
    """
