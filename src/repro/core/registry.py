"""Multi-query registry: one stream in, many pattern queries out.

A CEP deployment registers many queries against one event bus.  The
naive shape — feed every element to every engine — spends most of its
time asking engines about events they ignore (each engine's scan
re-checks relevance).  :class:`QueryRegistry` indexes engines by the
event types their patterns mention and routes each event only to the
engines that care, which is how the paper-era systems (and today's)
dispatch.

Punctuations are broadcast to every engine (they carry stream progress,
which every engine needs regardless of types).  The registry also
tracks a shared clock so callers can observe global progress without
touching member engines.

Engines keep their own results; the registry's ``feed`` returns the
per-call emissions tagged with the owning query's name so a consumer
can demultiplex.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.clock import StreamClock
from repro.core.engine import Engine
from repro.core.errors import ConfigurationError
from repro.core.event import Punctuation, StreamElement, is_event
from repro.core.pattern import Match


class QueryRegistry:
    """Type-indexed dispatch of one stream to many engines.

    >>> registry = QueryRegistry()
    >>> registry.register(OutOfOrderEngine(query_a, k=10))   # doctest: +SKIP
    >>> registry.register(OutOfOrderEngine(query_b, k=10))   # doctest: +SKIP
    >>> registry.feed(event)                                 # doctest: +SKIP
    [("qa", Match[qa](...))]
    """

    def __init__(self) -> None:
        self._engines: Dict[str, Engine] = {}
        self._by_type: Dict[str, List[Engine]] = {}
        self.clock = StreamClock(k=None)
        self.events_routed = 0
        self.events_skipped = 0

    # -- registration -----------------------------------------------------------

    def register(self, engine: Engine) -> None:
        """Add an engine; its pattern's name must be unique in the registry."""
        name = engine.pattern.name
        if name in self._engines:
            raise ConfigurationError(
                f"a query named {name!r} is already registered; "
                "give patterns unique names"
            )
        self._engines[name] = engine
        for etype in engine.pattern.relevant_types:
            self._by_type.setdefault(etype, []).append(engine)

    def unregister(self, name: str) -> Engine:
        """Remove and return the engine owning query *name*."""
        try:
            engine = self._engines.pop(name)
        except KeyError:
            raise ConfigurationError(f"no query named {name!r} registered") from None
        for engines in self._by_type.values():
            if engine in engines:
                engines.remove(engine)
        return engine

    def engine(self, name: str) -> Engine:
        """The engine owning query *name*."""
        try:
            return self._engines[name]
        except KeyError:
            raise ConfigurationError(f"no query named {name!r} registered") from None

    def names(self) -> List[str]:
        return sorted(self._engines)

    def __len__(self) -> int:
        return len(self._engines)

    # -- stream processing ---------------------------------------------------------

    def feed(self, element: StreamElement) -> List[Tuple[str, Match]]:
        """Route one element; returns (query name, match) pairs emitted now."""
        emitted: List[Tuple[str, Match]] = []
        if is_event(element):
            self.clock.observe(element)
            interested = self._by_type.get(element.etype)
            if not interested:
                self.events_skipped += 1
                return emitted
            self.events_routed += 1
            for engine in interested:
                for match in engine.feed(element):
                    emitted.append((engine.pattern.name, match))
        else:
            self.clock.observe_punctuation(element)
            for engine in self._engines.values():
                for match in engine.feed(element):
                    emitted.append((engine.pattern.name, match))
        return emitted

    def feed_many(self, elements: Iterable[StreamElement]) -> List[Tuple[str, Match]]:
        emitted: List[Tuple[str, Match]] = []
        for element in elements:
            emitted.extend(self.feed(element))
        return emitted

    def close(self) -> List[Tuple[str, Match]]:
        """Close every engine; returns final emissions."""
        emitted: List[Tuple[str, Match]] = []
        for engine in self._engines.values():
            for match in engine.close():
                emitted.append((engine.pattern.name, match))
        return emitted

    def run(self, elements: Iterable[StreamElement]) -> List[Tuple[str, Match]]:
        emitted = self.feed_many(elements)
        emitted.extend(self.close())
        return emitted

    # -- introspection ---------------------------------------------------------------

    def state_size(self) -> int:
        """Combined retained state across all registered engines."""
        return sum(engine.state_size() for engine in self._engines.values())

    def results(self, name: Optional[str] = None):
        """Results of one query, or ``{name: results}`` for all."""
        if name is not None:
            return list(self.engine(name).results)
        return {n: list(e.results) for n, e in self._engines.items()}

    def routing_ratio(self) -> float:
        """Fraction of events that reached at least one engine."""
        total = self.events_routed + self.events_skipped
        return self.events_routed / total if total else 0.0


class HeartbeatDriver:
    """Inject registry-level punctuations from the shared clock.

    When member engines run without a K promise (``k=None``) the
    registry's global clock can still seal them: every *interval*
    routed events, broadcast ``Punctuation(clock - slack - 1)``.
    Mirrors :class:`repro.core.partition.PartitionedEngine`'s horizon
    broadcast, at the multi-query level.
    """

    def __init__(self, registry: QueryRegistry, interval: int = 128, slack: int = 0):
        if interval < 1:
            raise ConfigurationError(f"interval must be >= 1, got {interval}")
        if slack < 0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        self.registry = registry
        self.interval = interval
        self.slack = slack
        self._since = 0
        self._last = -1

    def feed(self, element: StreamElement) -> List[Tuple[str, Match]]:
        emitted = self.registry.feed(element)
        if is_event(element):
            self._since += 1
            if self._since >= self.interval:
                self._since = 0
                asserted = self.registry.clock.now - self.slack - 1
                if asserted > self._last and asserted >= 0:
                    self._last = asserted
                    emitted = emitted + self.registry.feed(Punctuation(asserted))
        return emitted

    def feed_many(self, elements: Iterable[StreamElement]) -> List[Tuple[str, Match]]:
        emitted: List[Tuple[str, Match]] = []
        for element in elements:
            emitted.extend(self.feed(element))
        return emitted
