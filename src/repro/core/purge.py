"""State purge: keeping engine memory bounded under disorder.

Purging is where out-of-order arrival hurts most.  An in-order engine
can discard an instance as soon as the current timestamp passes its
window; under disorder a *late* arrival might still need that instance,
so purge decisions must be keyed on the **safe horizon** derived from
the disorder bound K (see ``repro.core.clock``), not on the raw clock.

Derivation of the thresholds (W = window, h = horizon; "future" events
have occurrence time > h):

* an instance at a **non-final** step can only join matches whose last
  event is within W above it; future arrivals satisfy ``ts > h``, so
  once ``e.ts + W <= h`` nothing can complete it → purge ``e.ts <= h - W``;
* an instance at the **final** step needs strictly-older future
  arrivals to form new matches; once ``e.ts - 1 <= h`` none can arrive
  → purge ``e.ts <= h + 1`` (the paper's observation that final-step
  state can be dropped much earlier);
* a **negated-type** event can only invalidate matches whose negation
  bracket contains it; every such bracket seals no later than
  ``e.ts + W`` on the horizon axis (proof in ``repro.core.negation``)
  and the engine seals pending matches *before* purging → purge
  ``e.ts <= h - W``.

Three policies are provided for the ablation (experiment E5):

* **EAGER** — purge after every element; minimal state, per-event cost;
* **LAZY** — purge every *interval* elements; amortised cost, state
  overshoots between runs;
* **NONE** — never purge; the pathological configuration that shows
  why purge algorithms matter (state grows without bound).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.core.stacks import NegativeStore, StackSet
from repro.core.stats import EngineStats


class PurgeMode(enum.Enum):
    """When purge runs relative to event processing."""

    NONE = "none"
    EAGER = "eager"
    LAZY = "lazy"


class PurgePolicy:
    """A purge schedule; construct via the class methods.

    >>> PurgePolicy.eager()
    PurgePolicy(eager)
    >>> PurgePolicy.lazy(interval=256)
    PurgePolicy(lazy, interval=256)
    """

    __slots__ = ("mode", "interval", "_since_last")

    def __init__(self, mode: PurgeMode, interval: int = 1):
        if mode is PurgeMode.LAZY:
            if not isinstance(interval, int) or isinstance(interval, bool) or interval < 1:
                raise ConfigurationError(
                    f"lazy purge interval must be a positive int, got {interval!r}"
                )
        self.mode = mode
        self.interval = interval
        self._since_last = 0

    @classmethod
    def none(cls) -> "PurgePolicy":
        """Never purge (pathological baseline for E5)."""
        return cls(PurgeMode.NONE)

    @classmethod
    def eager(cls) -> "PurgePolicy":
        """Purge after every processed element (the paper's default)."""
        return cls(PurgeMode.EAGER)

    @classmethod
    def lazy(cls, interval: int = 128) -> "PurgePolicy":
        """Purge every *interval* processed elements."""
        return cls(PurgeMode.LAZY, interval=interval)

    def due(self) -> bool:
        """Advance the schedule by one element; True when purge should run."""
        if self.mode is PurgeMode.NONE:
            return False
        if self.mode is PurgeMode.EAGER:
            return True
        self._since_last += 1
        if self._since_last >= self.interval:
            self._since_last = 0
            return True
        return False

    def reset(self) -> None:
        self._since_last = 0

    def snapshot_state(self) -> dict:
        """Mutable schedule progress (mode/interval are config, not state)."""
        return {"since_last": self._since_last}

    def restore_state(self, state: dict) -> None:
        self._since_last = state["since_last"]

    def clone(self) -> "PurgePolicy":
        """Fresh policy with the same schedule but private progress state.

        ``due()`` mutates ``_since_last``, so a single LAZY policy object
        shared across engines would interleave their purge schedules
        (each engine advancing the other's countdown).  Engines therefore
        clone whatever policy they are handed.
        """
        return PurgePolicy(self.mode, self.interval)

    def __repr__(self) -> str:
        if self.mode is PurgeMode.LAZY:
            return f"PurgePolicy(lazy, interval={self.interval})"
        return f"PurgePolicy({self.mode.value})"


class Purger:
    """Applies the threshold arithmetic to one engine's state."""

    __slots__ = ("window", "pattern_length")

    def __init__(self, window: int, pattern_length: int):
        self.window = window
        self.pattern_length = pattern_length

    def run(
        self,
        horizon: int,
        stacks: StackSet,
        negatives: Optional[NegativeStore] = None,
        stats: Optional[EngineStats] = None,
        kleene: Optional[NegativeStore] = None,
    ) -> int:
        """Purge everything provably useless at *horizon*; returns drop count.

        Callers must seal/emit pending negation matches *before*
        invoking this (the negative-store threshold proof relies on it).
        """
        if horizon < 0:
            return 0
        dropped = 0
        final = self.pattern_length - 1
        for index, stack in enumerate(stacks):
            if index == final:
                dropped += stack.purge_through(horizon + 1)
            else:
                dropped += stack.purge_through(horizon - self.window)
        if stats is not None:
            stats.instances_purged += dropped
        if negatives is not None:
            neg_dropped = negatives.purge_through(horizon - self.window)
            dropped += neg_dropped
            if stats is not None:
                stats.negatives_purged += neg_dropped
        if kleene is not None:
            # Kleene elements share the negatives' retention proof: any
            # unsealed bracket that could collect them lies above
            # horizon - W, and sealing runs before purging.
            kleene_dropped = kleene.purge_through(horizon - self.window)
            dropped += kleene_dropped
            if stats is not None:
                stats.negatives_purged += kleene_dropped
        if stats is not None:
            stats.purge_runs += 1
        return dropped

    def peek(
        self,
        horizon: int,
        stacks: StackSet,
        negatives: Optional[NegativeStore] = None,
        kleene: Optional[NegativeStore] = None,
    ) -> list:
        """The events :meth:`run` would evict at *horizon*, without evicting.

        Shares the threshold arithmetic with :meth:`run` so a preview
        taken immediately before a purge lists exactly its victims.
        Deduplicated by event identity (the same event can sit in
        several stacks) and returned in (ts, eid) order for stable
        trace output.  Tracing-only — never on the uninstrumented path.
        """
        if horizon < 0:
            return []
        victims = {}
        final = self.pattern_length - 1
        for index, stack in enumerate(stacks):
            cut = horizon + 1 if index == final else horizon - self.window
            for event in stack.events_through(cut):
                victims[event.eid] = event
        for store in (negatives, kleene):
            if store is not None:
                for event in store.events_through(horizon - self.window):
                    victims[event.eid] = event
        return sorted(victims.values(), key=lambda e: (e.ts, e.eid))
