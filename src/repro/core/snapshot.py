"""Engine checkpoint serialisation: ``snapshot() -> bytes`` / ``restore``.

The durability layer (``repro.core.recovery``) needs to freeze a
running engine's **full deterministic state** — sorted stacks, side
stores, pending seal heap, clock, purge schedule, counters, emitted
results — such that a fresh engine restored from the blob behaves
byte-identically to the original on every subsequent element.  Two
design constraints shape the format:

* **Patterns are not serialised.**  A pattern may hold ``FnPredicate``
  callables (lambdas), which do not pickle.  A snapshot therefore only
  stores the pattern's *fingerprint* inside the config header; the
  restoring engine must already have been constructed with an
  equivalent pattern, and matches are re-built against that live
  pattern object.
* **Config is verified, not restored.**  Construction-time parameters
  (K, late policy, purge schedule, optimisation flags) shape behaviour
  but are not mutable state; restoring a blob into a
  differently-configured engine would silently change semantics, so
  :func:`unpack` compares the header against the target engine and
  raises :class:`~repro.core.errors.SnapshotError` on any mismatch.

Events pickle via their ``__reduce__`` (constructor rebuild with an
explicit eid), so identity — which result-set comparisons and the
exactly-once dedup keys rely on — survives the round trip.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict

from repro.core.errors import SnapshotError
from repro.core.pattern import Match, Pattern

#: Bump when the snapshot layout changes incompatibly.
SNAPSHOT_FORMAT = 1


def encode_match(match: Match) -> Dict[str, Any]:
    """Pattern-free encoding of a match (events keep their identity)."""
    state: Dict[str, Any] = {
        "events": list(match.events),
        "detected_at": match.detected_at,
    }
    if match.collections is not None:
        state["collections"] = {
            var: list(elements) for var, elements in match.collections.items()
        }
    return state


def decode_match(pattern: Pattern, state: Dict[str, Any]) -> Match:
    """Rebuild a match against the restoring engine's live pattern."""
    collections = state.get("collections")
    if collections is not None:
        collections = {var: tuple(elements) for var, elements in collections.items()}
    return Match(
        pattern,
        state["events"],
        detected_at=state["detected_at"],
        collections=collections,
    )


def pattern_fingerprint(pattern: Pattern) -> Dict[str, Any]:
    """Structural identity of a pattern, without its (unpicklable) predicates."""
    return {
        "name": pattern.name,
        "length": pattern.length,
        "within": pattern.within,
        "positive_types": pattern.positive_types,
        "negated_types": tuple(sorted(pattern.negated_types)),
        "kleene_types": tuple(sorted(pattern.kleene_types)),
    }


def pack(engine: Any, config: Dict[str, Any], state: Dict[str, Any]) -> bytes:
    """Serialise one engine checkpoint; inverse of :func:`unpack`."""
    payload = {
        "format": SNAPSHOT_FORMAT,
        "engine": type(engine).__name__,
        "config": config,
        "state": state,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def unpack(engine: Any, blob: bytes) -> Dict[str, Any]:
    """Validate *blob* against *engine* and return its state section.

    Raises :class:`SnapshotError` when the blob is corrupt, from a
    different engine class, or from a different configuration.
    """
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise SnapshotError(f"snapshot blob is not readable: {exc}") from exc
    if not isinstance(payload, dict) or "format" not in payload:
        raise SnapshotError("snapshot blob has no format header")
    if payload["format"] != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"snapshot format {payload['format']!r} is not supported "
            f"(this build reads format {SNAPSHOT_FORMAT})"
        )
    expected = type(engine).__name__
    if payload.get("engine") != expected:
        raise SnapshotError(
            f"snapshot was taken from {payload.get('engine')!r}, "
            f"cannot restore into {expected}"
        )
    config = engine._snapshot_config()
    if payload.get("config") != config:
        raise SnapshotError(
            "snapshot configuration does not match this engine: "
            f"snapshot={payload.get('config')!r} engine={config!r}"
        )
    return payload["state"]
