"""Sequence construction (SC): enumerate completed matches exactly once.

Construction is the second core operator.  Given a trigger instance
(an event just inserted at step *i*), it enumerates every combination
of stack instances that

* places the trigger at step *i*,
* has strictly increasing occurrence timestamps across steps,
* fits the ``WITHIN`` window,
* satisfies the staged ``WHERE`` predicates, and
* — the out-of-order twist — consists otherwise of instances that
  **arrived before the trigger**.

The arrival filter is what makes output exactly-once under arbitrary
arrival permutations: every match has a unique latest-arriving member,
and only that member's arrival emits it.  With in-order arrival the
latest-arriving member is always the last step's event, so this
degenerates to the classic SASE rule (construct on last-step arrival
only); no special-casing is needed.

Enumeration is **anchored at the trigger** and walks outward — prefix
steps descending (i−1 … 0), then suffix steps ascending (i+1 … n−1) —
because predicates between *adjacent* steps (the overwhelmingly common
join shape) then prune at depth one on both sides.  Predicates are
staged dynamically per trigger position: each predicate is evaluated
at the earliest point in this binding order at which all of its
variables are bound.  Candidate sets come from binary-searched
timestamp ranges over the ts-sorted stacks (the point of the paper's
stack redesign); disabling that narrowing is the E6 ablation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.event import Event
from repro.core.pattern import Match, Pattern
from repro.core.predicates import Predicate
from repro.core.stacks import Instance, StackSet
from repro.core.stats import EngineStats


class SequenceConstructor:
    """Enumerates matches for one pattern over a :class:`StackSet`.

    Parameters
    ----------
    pattern:
        The compiled query.
    optimize:
        When False, timestamp-range narrowing via binary search is
        disabled (full stack scans with per-candidate checks) — the
        unoptimised configuration for experiment E6.  Results are
        identical either way.
    """

    def __init__(self, pattern: Pattern, optimize: bool = True):
        self.pattern = pattern
        self.optimize = optimize
        self._vars = [s.var for s in pattern.positive_steps]
        self._orders: List[List[int]] = []
        self._staged: List[List[List[Predicate]]] = []
        for trigger_step in range(pattern.length):
            order = (
                [trigger_step]
                + list(range(trigger_step - 1, -1, -1))
                + list(range(trigger_step + 1, pattern.length))
            )
            self._orders.append(order)
            self._staged.append(self._stage_for(order))

    def _stage_for(self, order: List[int]) -> List[List[Predicate]]:
        """Assign each positive predicate to its earliest evaluable position."""
        staged: List[List[Predicate]] = [[] for __ in order]
        position_of_step = {step: k for k, step in enumerate(order)}
        var_position = {
            self._vars[step]: position_of_step[step] for step in order
        }
        for predicate in self.pattern.positive_predicates:
            latest = max(var_position[v] for v in predicate.variables())
            staged[latest].append(predicate)
        return staged

    def construct(
        self,
        stacks: StackSet,
        step_index: int,
        trigger: Instance,
        stats: Optional[EngineStats] = None,
    ) -> List[Match]:
        """All matches completed by *trigger* at *step_index*.

        The trigger instance must already be inserted in its stack;
        candidates for every other step are filtered to arrivals
        strictly before the trigger's.
        """
        if stats is not None:
            stats.construction_triggers += 1
        matches: List[Match] = []
        order = self._orders[step_index]
        staged = self._staged[step_index]
        bound: Dict[int, Instance] = {step_index: trigger}
        bindings: Dict[str, Event] = {self._vars[step_index]: trigger.event}
        if not self._staged_ok(staged[0], bindings, stats):
            return matches
        self._extend(stacks, order, staged, 1, trigger, bound, bindings, matches, stats)
        return matches

    # -- internals ---------------------------------------------------------------

    def _max_bound_ts(self, bound: Dict[int, Instance]) -> int:
        return max(instance.ts for instance in bound.values())

    def _extend(
        self,
        stacks: StackSet,
        order: List[int],
        staged: List[List[Predicate]],
        depth: int,
        trigger: Instance,
        bound: Dict[int, Instance],
        bindings: Dict[str, Event],
        matches: List[Match],
        stats: Optional[EngineStats],
    ) -> None:
        pattern = self.pattern
        if depth == len(order):
            events = [bound[step].event for step in range(pattern.length)]
            matches.append(Match(pattern, events, detected_at=trigger.arrival))
            return

        step = order[depth]
        trigger_step = order[0]
        if step < trigger_step:
            # Prefix step: strictly older than the bound step+1 event,
            # and within the window below the youngest bound event.
            lower = self._max_bound_ts(bound) - pattern.within
            upper_exclusive = bound[step + 1].ts
            lower_exclusive = lower - 1
            upper_inclusive = upper_exclusive - 1
        else:
            # Suffix step: strictly younger than step-1, within the
            # window above the first event (step 0 is bound by now).
            lower_exclusive = bound[step - 1].ts
            upper_inclusive = bound[0].ts + pattern.within
        if self.optimize:
            candidates: Sequence[Instance] = stacks[step].range_after(
                lower_exclusive, max_ts=upper_inclusive
            )
            prefiltered = True
        else:
            # Unoptimised: linear scan of the whole stack, bounds
            # checked per candidate (the cost E6 measures).
            candidates = list(stacks[step])
            prefiltered = False

        var = self._vars[step]
        checks = staged[depth]
        for candidate in candidates:
            if candidate.arrival >= trigger.arrival:
                continue
            if stats is not None:
                stats.partial_combinations += 1
            if not prefiltered and not (
                lower_exclusive < candidate.ts <= upper_inclusive
            ):
                if stats is not None:
                    stats.window_rejections += 1
                continue
            bindings[var] = candidate.event
            if checks and not self._staged_ok(checks, bindings, stats):
                del bindings[var]
                continue
            bound[step] = candidate
            self._extend(
                stacks, order, staged, depth + 1, trigger, bound, bindings, matches, stats
            )
            del bound[step]
            del bindings[var]

    def _staged_ok(
        self,
        predicates: List[Predicate],
        bindings: Dict[str, Event],
        stats: Optional[EngineStats],
    ) -> bool:
        for predicate in predicates:
            if stats is not None:
                stats.predicate_evaluations += 1
            if not predicate.evaluate(bindings):
                return False
        return True
