"""Sequence construction (SC): enumerate completed matches exactly once.

Construction is the second core operator.  Given a trigger instance
(an event just inserted at step *i*), it enumerates every combination
of stack instances that

* places the trigger at step *i*,
* has strictly increasing occurrence timestamps across steps,
* fits the ``WITHIN`` window,
* satisfies the staged ``WHERE`` predicates, and
* — the out-of-order twist — consists otherwise of instances that
  **arrived before the trigger**.

The arrival filter is what makes output exactly-once under arbitrary
arrival permutations: every match has a unique latest-arriving member,
and only that member's arrival emits it.  With in-order arrival the
latest-arriving member is always the last step's event, so this
degenerates to the classic SASE rule (construct on last-step arrival
only); no special-casing is needed.

Enumeration is **anchored at the trigger** and walks outward — prefix
steps descending (i−1 … 0), then suffix steps ascending (i+1 … n−1) —
because predicates between *adjacent* steps (the overwhelmingly common
join shape) then prune at depth one on both sides.  Predicates are
staged dynamically per trigger position: each predicate is evaluated
at the earliest point in this binding order at which all of its
variables are bound.  Candidate sets come from binary-searched
timestamp ranges over the ts-sorted stacks (the point of the paper's
stack redesign); disabling that narrowing is the E6 ablation.

Two further optimisations live in ``repro.core.indexplan`` and are
applied here: equality-index lookups replace the range scan for steps
joined to an already-bound step by attribute equality (the stacks'
posting lists serve exactly the equal-valued candidates, window-clamped
by bisect), and the staged predicate lists are compiled into one
closure per (trigger position, depth) at build time.  Both are
ablatable (``index=False``) and results are identical either way.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.event import Event
from repro.core.indexplan import StagePlan, build_plan
from repro.core.pattern import Match, Pattern
from repro.core.predicates import Predicate
from repro.core.stacks import Instance, StackSet
from repro.core.stats import EngineStats


class SequenceConstructor:
    """Enumerates matches for one pattern over a :class:`StackSet`.

    Parameters
    ----------
    pattern:
        The compiled query.
    optimize:
        When False, timestamp-range narrowing via binary search is
        disabled (full stack scans with per-candidate checks) — the
        unoptimised configuration for experiment E6.  Results are
        identical either way.
    index:
        When False, equality-index lookups are disabled and every step
        is served by the (optimised or not) range scan — the ablation
        for experiment E19.  Results are identical either way.  The
        index is only active when *optimize* is also True: it is a
        refinement of the range scan, not of the linear scan.
    """

    def __init__(self, pattern: Pattern, optimize: bool = True, index: bool = True):
        self.pattern = pattern
        self.optimize = optimize
        self.index = index
        self._vars = [s.var for s in pattern.positive_steps]
        self._orders: List[List[int]] = []
        self._staged: List[List[List[Predicate]]] = []
        for trigger_step in range(pattern.length):
            order = (
                [trigger_step]
                + list(range(trigger_step - 1, -1, -1))
                + list(range(trigger_step + 1, pattern.length))
            )
            self._orders.append(order)
            self._staged.append(self._stage_for(order))
        plan = build_plan(
            pattern,
            self._vars,
            self._orders,
            self._staged,
            use_index=index and optimize,
        )
        self._stages: List[List[StagePlan]] = plan.stages
        #: Per-step attribute names the engine's stacks must index, or
        #: None when no lookup was planned (engines then build plain
        #: stacks and skip index maintenance entirely).
        self.indexed_attrs = plan.indexed_attrs
        #: Observability hook: when set (by the obs layer), called with
        #: the size of every index-served candidate set.
        self._observe_candidates: Optional[Callable[[int], None]] = None

    def _stage_for(self, order: List[int]) -> List[List[Predicate]]:
        """Assign each positive predicate to its earliest evaluable position."""
        staged: List[List[Predicate]] = [[] for __ in order]
        position_of_step = {step: k for k, step in enumerate(order)}
        var_position = {
            self._vars[step]: position_of_step[step] for step in order
        }
        for predicate in self.pattern.positive_predicates:
            latest = max(var_position[v] for v in predicate.variables())
            staged[latest].append(predicate)
        return staged

    def construct(
        self,
        stacks: StackSet,
        step_index: int,
        trigger: Instance,
        stats: Optional[EngineStats] = None,
    ) -> List[Match]:
        """All matches completed by *trigger* at *step_index*.

        The trigger instance must already be inserted in its stack;
        candidates for every other step are filtered to arrivals
        strictly before the trigger's.
        """
        if stats is not None:
            stats.construction_triggers += 1
        matches: List[Match] = []
        order = self._orders[step_index]
        compiled = self._stages[step_index]
        bound: Dict[int, Instance] = {step_index: trigger}
        bindings: Dict[str, Event] = {self._vars[step_index]: trigger.event}
        check0 = compiled[0][0]
        if check0 is not None and not check0(bindings, stats):
            return matches
        self._extend(stacks, order, compiled, 1, trigger, bound, bindings, matches, stats)
        return matches

    # -- internals ---------------------------------------------------------------

    def _extend(
        self,
        stacks: StackSet,
        order: List[int],
        compiled: List[StagePlan],
        depth: int,
        trigger: Instance,
        bound: Dict[int, Instance],
        bindings: Dict[str, Event],
        matches: List[Match],
        stats: Optional[EngineStats],
    ) -> None:
        pattern = self.pattern
        if depth == len(order):
            events = [bound[step].event for step in range(pattern.length)]
            matches.append(Match(pattern, events, detected_at=trigger.arrival))
            return

        step = order[depth]
        trigger_step = order[0]
        if step < trigger_step:
            # Prefix step: strictly older than the bound step+1 event,
            # and within the window below the youngest bound event.
            # Prefix steps are bound before suffix steps and every
            # prefix candidate is strictly older than the trigger, so
            # the youngest bound event here is always the trigger
            # itself — no max() over the bindings needed.
            lower_exclusive = trigger.ts - pattern.within - 1
            upper_inclusive = bound[step + 1].ts - 1
        else:
            # Suffix step: strictly younger than step-1, within the
            # window above the first event (step 0 is bound by now).
            lower_exclusive = bound[step - 1].ts
            upper_inclusive = bound[0].ts + pattern.within

        full_checks, reduced_checks, spec = compiled[depth]
        checks = full_checks
        prefiltered = True
        candidates: Optional[Sequence[Instance]] = None
        if spec is not None:
            name, bound_value = spec
            candidates = stacks[step].equality_candidates(
                name, bound_value(bindings), lower_exclusive, upper_inclusive
            )
            if candidates is not None:
                checks = reduced_checks
                if stats is not None:
                    if candidates:
                        stats.index_hits += 1
                    else:
                        stats.index_misses += 1
                if self._observe_candidates is not None:
                    self._observe_candidates(len(candidates))
        if candidates is None:
            if self.optimize:
                candidates = stacks[step].range_after(
                    lower_exclusive, max_ts=upper_inclusive
                )
            else:
                # Unoptimised: linear scan of the whole stack, bounds
                # checked per candidate (the cost E6 measures).
                candidates = list(stacks[step])
                prefiltered = False

        var = self._vars[step]
        for candidate in candidates:
            if candidate.arrival >= trigger.arrival:
                continue
            if stats is not None:
                stats.partial_combinations += 1
            if not prefiltered and not (
                lower_exclusive < candidate.ts <= upper_inclusive
            ):
                if stats is not None:
                    stats.window_rejections += 1
                continue
            bindings[var] = candidate.event
            if checks is not None and not checks(bindings, stats):
                del bindings[var]
                continue
            bound[step] = candidate
            self._extend(
                stacks, order, compiled, depth + 1, trigger, bound, bindings, matches, stats
            )
            del bound[step]
            del bindings[var]
