"""Engine clocks: tracking progress of occurrence time under disorder.

The out-of-order engine needs a notion of "how far time has advanced"
that is robust to late arrivals.  Following the paper, the engine clock
is the **maximum occurrence timestamp seen so far**; combined with the
disorder bound K it yields a *safe horizon*::

    horizon = clock - K

No event with occurrence time ``<= horizon`` will ever arrive again
(that is the K promise), so state whose usefulness ends at or before
the horizon can be purged and negation intervals at or before it can be
sealed.  Punctuations can push the horizon further than the K promise
alone (e.g. a source that knows it is fully flushed).

This module keeps the clock logic in one place so every engine
(in-order, out-of-order, reordering, aggressive) shares identical
horizon arithmetic — a prerequisite for the benchmarks to compare like
with like.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import ConfigurationError
from repro.core.event import Event, Punctuation


class StreamClock:
    """Tracks max occurrence time and the K-safe horizon.

    Parameters
    ----------
    k:
        The disorder bound: an event with occurrence time ``t`` is
        promised to arrive while ``clock <= t + k``.  ``k=0`` asserts
        in-order arrival.  ``None`` means *no promise* — the horizon
        never advances from the K side (only punctuations move it), so
        state is held indefinitely unless punctuated.

    Notes
    -----
    The clock starts at -1 ("before time zero") so an event at ts=0 is
    never considered late.
    """

    __slots__ = ("_k", "_max_ts", "_punctuated", "_observations")

    def __init__(self, k: Optional[int] = None):
        if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 0):
            raise ConfigurationError(f"disorder bound K must be an int >= 0 or None, got {k!r}")
        self._k = k
        self._max_ts = -1
        self._punctuated = -1
        self._observations = 0

    @property
    def k(self) -> Optional[int]:
        """The configured disorder bound (None = unbounded)."""
        return self._k

    @property
    def now(self) -> int:
        """Maximum occurrence timestamp observed so far (-1 before any event)."""
        return self._max_ts

    @property
    def observations(self) -> int:
        """Number of events observed (punctuations excluded)."""
        return self._observations

    def observe(self, event: Event) -> bool:
        """Record *event* and report whether it arrived out of order.

        Returns ``True`` when the event's occurrence time is older than
        the current clock (i.e. some younger event already arrived).
        """
        self._observations += 1
        if event.ts > self._max_ts:
            self._max_ts = event.ts
            return False
        return event.ts < self._max_ts

    def observe_punctuation(self, punctuation: Punctuation) -> None:
        """Advance the punctuated horizon; never moves backwards."""
        if punctuation.ts > self._punctuated:
            self._punctuated = punctuation.ts
        if punctuation.ts > self._max_ts:
            self._max_ts = punctuation.ts

    def is_late(self, event: Event) -> bool:
        """True when *event* violates the promises made so far.

        An event is late when its occurrence time is at or below the
        safe horizon: either the K promise or a punctuation already
        asserted that no such event remains in flight.
        """
        return event.ts <= self.horizon()

    def horizon(self) -> int:
        """Largest ``t`` such that no event with ``ts <= t`` can still arrive.

        Combines the K promise (``max_ts - k``... strictly, an event at
        ``t`` may arrive while ``clock <= t + k``, so only ``t <
        clock - k`` is sealed, i.e. horizon = ``clock - k - 1``) with
        the punctuated horizon, whichever is further along.
        """
        k_horizon = -1
        if self._k is not None and self._max_ts >= 0:
            k_horizon = self._max_ts - self._k - 1
        return max(k_horizon, self._punctuated)

    def sealed(self, ts: int) -> bool:
        """True when no event with occurrence time ``<= ts`` can still arrive."""
        return ts <= self.horizon()

    def refreeze(self, k: Optional[int]) -> None:
        """Re-freeze the disorder bound at an epoch boundary.

        The purge proofs assume the horizon never regresses, so changing
        K mid-run is only sound if the old horizon is first locked in:
        the current horizon is folded into the punctuated floor before
        the new bound takes effect.  Growing K therefore never re-admits
        occurrence times whose partner state was already purged, and
        shrinking K only ever advances sealing — the controller's
        quality-for-latency trade (see ``repro.streams.controller``).
        """
        if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 0):
            raise ConfigurationError(f"disorder bound K must be an int >= 0 or None, got {k!r}")
        floor = self.horizon()
        if floor > self._punctuated:
            self._punctuated = floor
        self._k = k

    def reset(self) -> None:
        """Return to the initial state (used by replay tooling)."""
        self._max_ts = -1
        self._punctuated = -1
        self._observations = 0

    def snapshot_state(self) -> dict:
        """Mutable clock state for engine checkpoints.

        K rides along because :meth:`refreeze` makes it state when a
        controller is attached; for fixed-K engines the stored value
        always equals the configured one.
        """
        return {
            "k": self._k,
            "max_ts": self._max_ts,
            "punctuated": self._punctuated,
            "observations": self._observations,
        }

    def restore_state(self, state: dict) -> None:
        # ``get`` with the current bound: snapshots taken before K was
        # re-freezable carry no "k" key and restore the configured value.
        self._k = state.get("k", self._k)
        self._max_ts = state["max_ts"]
        self._punctuated = state["punctuated"]
        self._observations = state["observations"]

    def __repr__(self) -> str:
        k = "∞" if self._k is None else self._k
        return f"StreamClock(now={self._max_ts}, k={k}, horizon={self.horizon()})"
