"""Partitioned evaluation: hash-route events by the query's equality key.

Most real pattern queries — every canned query in ``repro.workloads`` —
correlate all steps on one attribute: *same tag*, *same source*, *same
symbol*.  For such queries, events with different key values can never
appear in one match, so the engine can be **partitioned**: one
lightweight sub-engine per key value, each seeing only its partition's
events.  Construction then joins within a partition instead of across
the whole window — the classic CEP partitioning optimisation, applied
here on top of the out-of-order machinery.

Key detection is automatic and conservative: the pattern must connect
*all* positive steps through ``==`` predicates on a single attribute
name, and every negated step's predicates must tie it to the same
attribute.  Anything else raises, so partitioning never silently
changes semantics (tests pin partitioned == unpartitioned == oracle).

Disorder handling across partitions needs one extra mechanism: a
partition that goes quiet would never advance its local clock, so its
state could linger and its negation seals would never ripen.  The
router therefore broadcasts **punctuations** derived from the global
clock (safe under the global K promise) every ``punctuate_every``
events, keeping every sub-engine's horizon moving.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List, Optional

from repro.core.clock import StreamClock
from repro.core.engine import Engine, LatePolicy, OutOfOrderEngine
from repro.core.errors import ConfigurationError, QueryError
from repro.core.event import Event, Punctuation
from repro.core.pattern import Match, Pattern
from repro.core.purge import PurgePolicy
from repro.core.stats import EngineStats


def require_picklable_pattern(pattern: Pattern, backend: str) -> None:
    """Fail fast — and descriptively — on process-backend pickling hazards.

    A process pool (and a pipeline worker under the ``spawn`` start
    method) must pickle the pattern; ``FnPredicate`` lambdas can't be.
    Checking at construction, unconditionally for process backends,
    turns a platform-dependent mid-run ``PicklingError`` deep inside the
    pool machinery into an immediate :class:`ConfigurationError` that
    names the offending predicates.
    """
    try:
        pickle.dumps(pattern)
        return
    except Exception as exc:  # PicklingError, AttributeError (local fn), ...
        from repro.core.predicates import FnPredicate

        suspects = list(pattern.where)
        for bracket in list(pattern.negations) + list(pattern.kleene):
            suspects.extend(bracket.predicates)
        offenders = []
        for predicate in suspects:
            if isinstance(predicate, FnPredicate):
                try:
                    pickle.dumps(predicate)
                except Exception:
                    offenders.append(repr(predicate))
        if offenders:
            raise ConfigurationError(
                f"backend={backend!r} runs workers in separate processes, but "
                f"pattern {pattern.name!r} holds unpicklable predicates: "
                f"{', '.join(offenders)}. Use named module-level functions "
                "instead of lambdas/closures in FnPredicate, or backend='thread'."
            ) from exc
        raise ConfigurationError(
            f"backend={backend!r} requires a picklable pattern, but "
            f"{pattern.name!r} failed to pickle: {exc}"
        ) from exc


def detect_partition_key(pattern: Pattern) -> str:
    """The single attribute that partitions *pattern*, or raise.

    Requirements:

    * some attribute name ``a`` such that the pattern's ``==``
      predicates of shape ``x.a == y.a`` connect all positive steps
      into one component;
    * every negated step carries at least one ``==`` predicate on the
      same attribute linking it to a positive step.
    """
    positive_vars = [s.var for s in pattern.positive_steps]
    candidates: Dict[str, List] = {}
    for left, right in pattern.equality_pairs:
        if left.name == right.name:
            candidates.setdefault(left.name, []).append((left.var, right.var))
    for name, edges in candidates.items():
        if not _connects_all(positive_vars, edges):
            continue
        if _negations_keyed(pattern, name):
            return name
    raise QueryError(
        f"pattern {pattern.name!r} has no single equality attribute connecting "
        "all positive steps (and tying every negated step); partitioned "
        "evaluation is not applicable"
    )


def _connects_all(variables: List[str], edges: List) -> bool:
    if len(variables) == 1:
        return True
    parent = {var: var for var in variables}

    def find(v: str) -> str:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for left, right in edges:
        if left in parent and right in parent:
            parent[find(left)] = find(right)
    roots = {find(v) for v in variables}
    return len(roots) == 1


def _negations_keyed(pattern: Pattern, name: str) -> bool:
    for bracket in list(pattern.negations) + list(pattern.kleene):
        keyed = False
        for predicate in bracket.predicates:
            for left, right in predicate.equality_pairs():
                if left.name == name and right.name == name and (
                    bracket.step.var in (left.var, right.var)
                ):
                    keyed = True
        if not keyed:
            return False
    return True


class PartitionedEngine(Engine):
    """Hash-partitioned wrapper around per-key :class:`OutOfOrderEngine` s.

    Parameters
    ----------
    pattern:
        The compiled query; must be partitionable (see
        :func:`detect_partition_key`), or pass *key* explicitly.
    k:
        Global disorder bound (same promise as the flat engine).
    key:
        Partition attribute; auto-detected when omitted.
    punctuate_every:
        Broadcast a global-horizon punctuation to all partitions every
        this many events (bounds idle-partition state and seals their
        negation brackets).
    index:
        Equality-index pushdown inside every sub-engine's construction
        (see :class:`OutOfOrderEngine`); disable for ablation.
    speculative:
        Forwarded to every sub-engine: each partition keeps its own
        speculative stream (``sub.speculation``), aggregated by
        :meth:`speculation_summary` / :meth:`retraction_records`.
    controller:
        Adaptive-K prototype; every partition receives its **own clone**
        at spawn, so bounds adapt per partition (a bursty key shrinks or
        grows its K without disturbing calm ones) — the broadcast
        punctuations are each partition's re-freeze boundaries.
    """

    def __init__(
        self,
        pattern: Pattern,
        k: Optional[int] = None,
        purge: Optional[PurgePolicy] = None,
        late_policy: LatePolicy = LatePolicy.DROP,
        key: Optional[str] = None,
        punctuate_every: int = 64,
        index: bool = True,
        speculative: bool = False,
        controller=None,
    ):
        super().__init__(pattern)
        if punctuate_every < 1:
            raise ConfigurationError(
                f"punctuate_every must be >= 1, got {punctuate_every}"
            )
        self.key = key or detect_partition_key(pattern)
        self.k = k
        self.late_policy = late_policy
        self.index = index
        self.speculative = speculative
        # Prototype only — _blank_sub_engine hands it to each sub-engine,
        # which clones at attachment, so this instance never mutates.
        self._controller = controller
        self._purge_mode = purge.mode if purge is not None else None
        self._purge_interval = purge.interval if purge is not None else 1
        self.clock = StreamClock(k)
        self.punctuate_every = punctuate_every
        self._partitions: Dict[Any, OutOfOrderEngine] = {}
        self._since_punctuation = 0
        self._last_broadcast = -1

    # -- partition plumbing ------------------------------------------------------

    def partition_count(self) -> int:
        """Live partitions (sub-engines instantiated so far)."""
        return len(self._partitions)

    def _sub_engine(self, value: Any) -> OutOfOrderEngine:
        engine = self._partitions.get(value)
        if engine is None:
            engine = self._blank_sub_engine()
            # Catch the new partition up to the global horizon so its
            # first events are judged against the same promise.
            if self._last_broadcast >= 0:
                engine.feed(Punctuation(self._last_broadcast))
            self._partitions[value] = engine
        return engine

    def state_size(self) -> int:
        return sum(engine.state_size() for engine in self._partitions.values())

    # -- checkpoint / restore ------------------------------------------------------

    def _snapshot_config(self) -> dict:
        config = super()._snapshot_config()
        config.update(
            {
                "k": self.k,
                "late_policy": self.late_policy.value,
                "purge": (self._purge_mode.value if self._purge_mode else None,
                          self._purge_interval),
                "key": self.key,
                "punctuate_every": self.punctuate_every,
                "index": self.index,
                "speculative": self.speculative,
                "controller": (
                    self._controller.fingerprint()
                    if self._controller is not None
                    else None
                ),
            }
        )
        return config

    def _snapshot_state(self) -> dict:
        state = self._base_state()
        state.update(
            {
                "clock": self.clock.snapshot_state(),
                "since_punctuation": self._since_punctuation,
                "last_broadcast": self._last_broadcast,
                # Insertion order is part of the deterministic behaviour
                # (punctuation broadcasts iterate it), so a list of
                # pairs, not a dict re-keyed on restore.
                "partitions": [
                    (value, sub._snapshot_state())
                    for value, sub in self._partitions.items()
                ],
            }
        )
        return state

    def _restore_state(self, state: dict) -> None:
        self._restore_base(state)
        self.clock.restore_state(state["clock"])
        self._since_punctuation = state["since_punctuation"]
        self._last_broadcast = state["last_broadcast"]
        self._partitions = {}
        for value, sub_state in state["partitions"]:
            sub = self._blank_sub_engine()
            sub._restore_state(sub_state)
            self._partitions[value] = sub

    def _blank_sub_engine(self) -> OutOfOrderEngine:
        """A sub-engine as :meth:`_sub_engine` builds it, minus the catch-up
        punctuation (the restored state already contains its effect)."""
        if self._purge_mode is None:
            purge = None
        else:
            purge = PurgePolicy(self._purge_mode, self._purge_interval)
        return OutOfOrderEngine(
            self.pattern,
            k=self.k,
            purge=purge,
            late_policy=self.late_policy,
            index=self.index,
            speculative=self.speculative,
            controller=self._controller,
        )

    # -- processing ------------------------------------------------------------------

    def _process_event(self, event: Event) -> List[Match]:
        emitted: List[Match] = []
        if self.clock.is_late(event):
            self.stats.late_dropped += 1
            if self.late_policy is LatePolicy.RAISE:
                from repro.core.errors import DisorderBoundViolation

                raise DisorderBoundViolation(event, self.clock.now, self.k or 0)
            if self.late_policy is LatePolicy.DROP:
                return emitted
        if self.clock.observe(event):
            self.stats.out_of_order_events += 1

        if event.etype in self.pattern.relevant_types:
            value = event.get(self.key)
            if value is None and self.key not in event:
                self.stats.events_ignored += 1
            else:
                sub = self._sub_engine(value)
                for match in sub.feed(event):
                    self._surface(match, emitted)
                self.stats.events_admitted += 1
        else:
            self.stats.events_ignored += 1

        self._since_punctuation += 1
        if self._since_punctuation >= self.punctuate_every:
            self._broadcast_horizon(emitted)
            self._since_punctuation = 0
        return emitted

    def _on_punctuation(self, punctuation: Punctuation) -> List[Match]:
        self.clock.observe_punctuation(punctuation)
        emitted: List[Match] = []
        for engine in self._partitions.values():
            for match in engine.feed(punctuation):
                self._surface(match, emitted)
        self._last_broadcast = max(self._last_broadcast, punctuation.ts)
        return emitted

    def _broadcast_horizon(self, emitted: List[Match]) -> None:
        horizon = self.clock.horizon()
        if horizon <= self._last_broadcast or horizon < 0:
            return
        self._last_broadcast = horizon
        punctuation = Punctuation(horizon)
        for engine in self._partitions.values():
            for match in engine.feed(punctuation):
                self._surface(match, emitted)

    def _flush(self) -> List[Match]:
        emitted: List[Match] = []
        for engine in self._partitions.values():
            for match in engine.close():
                self._surface(match, emitted)
        return emitted

    def _surface(self, match: Match, emitted: List[Match]) -> None:
        self._emit(match, self.clock.now)
        emitted.append(match)

    # -- diagnostics ---------------------------------------------------------------

    def merged_substats(self):
        """Aggregated work counters across all partitions."""
        merged = EngineStats()
        for engine in self._partitions.values():
            merged.merge(engine.stats)
        return merged

    def speculation_summary(self) -> dict:
        """Aggregate speculative-stream accounting across partitions."""
        emitted = retracted = still_open = 0
        for engine in self._partitions.values():
            log = engine.speculation
            if log is not None:
                emitted += len(log.emissions)
                retracted += len(log.retractions)
                still_open += log.open_count
        return {"emitted": emitted, "retracted": retracted, "open": still_open}

    def retraction_records(self) -> List:
        """Every partition's retractions as ``(partition_value, Retraction)``,
        in partition-insertion order (deterministic)."""
        records = []
        for value, engine in self._partitions.items():
            if engine.speculation is not None:
                for retraction in engine.speculation.retractions:
                    records.append((value, retraction))
        return records


def _run_partition(payload):
    """Pool worker: run one partition's event slice through a fresh engine.

    Module-level so both pool backends can pickle it; returns the
    partition's final matches, its work counters, and — when the parent
    engine is instrumented — a metrics-registry snapshot for the
    deterministic per-worker merge.
    """
    pattern, k, purge_mode, purge_interval, late_policy, events, instrument, index = (
        payload
    )
    purge = None
    if purge_mode is not None:
        purge = PurgePolicy(purge_mode, purge_interval)
    engine = OutOfOrderEngine(
        pattern, k=k, purge=purge, late_policy=late_policy, index=index
    )
    metrics_state = None
    if instrument:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        engine.enable_observability(metrics=registry)
        engine.feed_batch(events)
        engine.close()
        metrics_state = registry.snapshot_state()
    else:
        engine.feed_batch(events)
        engine.close()
    return engine.results, engine.stats, metrics_state


class ParallelPartitionedEngine(PartitionedEngine):
    """Partitioned evaluation fanned out over a worker pool.

    With ``workers=1`` this class **is** the serial
    :class:`PartitionedEngine` — no code path diverges, so golden traces
    stay byte-identical.  With ``workers > 1`` execution is deferred:
    ``feed`` runs only the global-clock pre-pass (late-arrival policy
    and routing, with identical flow accounting to the serial engine)
    and buffers each partition's events; :meth:`close` then runs every
    partition to completion on the pool and merges the emissions
    **deterministically** by ``(end_ts, start_ts, match key)``, so the
    output is a pure function of the input stream regardless of worker
    count or scheduling.

    Correctness of the fan-out: the pre-pass replicates every
    late-drop decision (the outer clock sees the full stream, exactly
    as the serial engine's outer clock does), and a sub-engine's local
    horizon never exceeds the global one, so deferring a partition's
    events can never drop more.  The serial engine's broadcast
    punctuations only accelerate purging and sealing — they never
    change the post-``close`` result set — so the workers skip them.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` = serial fallback (byte-identical traces).
    backend:
        ``"thread"`` (default; no pickling constraints, best for small
        batches under a free-threaded or I/O-bound runtime) or
        ``"process"`` (true parallelism; pattern, predicates and events
        must be picklable, so ``FnPredicate`` lambdas are out).

    Notes
    -----
    With ``workers > 1`` the streaming surface is deliberately coarse:
    ``feed`` returns no matches (everything surfaces at ``close``),
    emission records carry the end-of-stream clock, and per-element
    state peaks reflect the buffered events.  Late-policy ``PROCESS``
    keeps its best-effort character: purge timing differs between
    serial and parallel runs, so results involving purged state may
    differ — ``DROP`` and ``RAISE`` are exact.
    """

    def __init__(
        self,
        pattern: Pattern,
        k: Optional[int] = None,
        purge: Optional[PurgePolicy] = None,
        late_policy: LatePolicy = LatePolicy.DROP,
        key: Optional[str] = None,
        punctuate_every: int = 64,
        index: bool = True,
        workers: int = 1,
        backend: str = "thread",
        speculative: bool = False,
        controller=None,
    ):
        super().__init__(
            pattern,
            k=k,
            purge=purge,
            late_policy=late_policy,
            key=key,
            punctuate_every=punctuate_every,
            index=index,
            speculative=speculative,
            controller=controller,
        )
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ConfigurationError(f"workers must be an int >= 1, got {workers!r}")
        if workers > 1 and (speculative or controller is not None):
            # The deferred pre-pass buffers partitions until close, so
            # there is no live stream to speculate on and no punctuation
            # boundary at which a controller could re-freeze.
            raise ConfigurationError(
                "speculative/adaptive modes need live per-partition streams; "
                "use workers=1 (serial) for them"
            )
        if backend not in ("thread", "process"):
            raise ConfigurationError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        if backend == "process" and workers > 1:
            require_picklable_pattern(pattern, backend)
        self.workers = workers
        self.backend = backend
        self._routed: Dict[Any, List[Event]] = {}
        self._worker_stats: List = []

    # -- deferred pre-pass (workers > 1) -------------------------------------------

    def _process_event(self, event: Event) -> List[Match]:
        if self.workers == 1:
            return PartitionedEngine._process_event(self, event)
        if self.clock.is_late(event):
            self.stats.late_dropped += 1
            if self.late_policy is LatePolicy.RAISE:
                from repro.core.errors import DisorderBoundViolation

                raise DisorderBoundViolation(event, self.clock.now, self.k or 0)
            if self.late_policy is LatePolicy.DROP:
                return []
        if self.clock.observe(event):
            self.stats.out_of_order_events += 1
        if event.etype in self.pattern.relevant_types:
            value = event.get(self.key)
            if value is None and self.key not in event:
                self.stats.events_ignored += 1
            else:
                bucket = self._routed.get(value)
                if bucket is None:
                    bucket = self._routed[value] = []
                bucket.append(event)
                self.stats.events_admitted += 1
        else:
            self.stats.events_ignored += 1
        return []

    def _on_punctuation(self, punctuation: Punctuation) -> List[Match]:
        if self.workers == 1:
            return PartitionedEngine._on_punctuation(self, punctuation)
        # Advance the global clock so later events are judged against the
        # punctuated horizon, exactly as the serial pre-pass would.
        self.clock.observe_punctuation(punctuation)
        self._last_broadcast = max(self._last_broadcast, punctuation.ts)
        return []

    def partition_count(self) -> int:
        if self.workers == 1:
            return PartitionedEngine.partition_count(self)
        return len(self._routed)

    def state_size(self) -> int:
        if self.workers == 1:
            return PartitionedEngine.state_size(self)
        return sum(len(bucket) for bucket in self._routed.values())

    # -- checkpoint / restore ------------------------------------------------------

    def _snapshot_config(self) -> dict:
        config = super()._snapshot_config()
        # Worker count and pool backend never change results (merge is
        # deterministic), but serial vs. deferred is a different state
        # shape, so only that distinction is part of the fingerprint.
        config["parallel_variant"] = "serial" if self.workers == 1 else "deferred"
        return config

    def _snapshot_state(self) -> dict:
        if self.workers == 1:
            return PartitionedEngine._snapshot_state(self)
        state = self._base_state()
        state.update(
            {
                "clock": self.clock.snapshot_state(),
                "since_punctuation": self._since_punctuation,
                "last_broadcast": self._last_broadcast,
                "routed": [
                    (value, list(bucket)) for value, bucket in self._routed.items()
                ],
                "worker_stats": [
                    stats.as_dict() for stats in self._worker_stats
                ],
            }
        )
        return state

    def _restore_state(self, state: dict) -> None:
        if self.workers == 1:
            PartitionedEngine._restore_state(self, state)
            return
        self._restore_base(state)
        self.clock.restore_state(state["clock"])
        self._since_punctuation = state["since_punctuation"]
        self._last_broadcast = state["last_broadcast"]
        self._routed = {value: list(bucket) for value, bucket in state["routed"]}
        restored_stats = []
        for payload in state.get("worker_stats", []):
            stats = EngineStats()
            stats.restore_from(payload)
            restored_stats.append(stats)
        self._worker_stats = restored_stats

    # -- fan-out + deterministic merge ----------------------------------------------

    def _flush(self) -> List[Match]:
        if self.workers == 1:
            return PartitionedEngine._flush(self)
        instrument = self._obs is not None and self._obs.registry is not None
        payloads = [
            (
                self.pattern,
                self.k,
                self._purge_mode,
                self._purge_interval,
                self.late_policy,
                bucket,
                instrument,
                self.index,
            )
            for bucket in self._routed.values()
        ]
        outcomes = self._map(payloads)
        self._worker_stats = [stats for _, stats, _ in outcomes]
        if instrument:
            # Fold worker registries in routing-insertion order; the
            # merge itself is order-insensitive (counters add, gauges
            # max), so the result is deterministic regardless of pool
            # scheduling.
            self._obs.merge_worker_states([m for _, _, m in outcomes])
        merged: List[Match] = []
        for matches, _, _ in outcomes:
            merged.extend(matches)
        merged.sort(key=lambda m: (m.end_ts, m.start_ts, m.key()))
        emitted: List[Match] = []
        for match in merged:
            self._surface(match, emitted)
        self._routed.clear()
        return emitted

    def _map(self, payloads: List) -> List:
        if not payloads:
            return []
        # One pool for the whole close-time map (the run's single
        # fan-out), sized to the work at hand and mapped with an
        # explicit chunksize derived from the partition count: the
        # default chunksize is tuned for huge iterables and would hand
        # some workers nothing when partitions barely exceed workers.
        # The pool lives only inside this call — it never becomes
        # engine state, so snapshots have no handle to lose.
        pool_size = min(self.workers, len(payloads))
        chunksize = max(1, len(payloads) // (pool_size * 4))
        if self.backend == "process":
            import multiprocessing

            pool = multiprocessing.Pool(pool_size)
            try:
                return pool.map(_run_partition, payloads, chunksize=chunksize)
            finally:
                pool.close()
                pool.join()
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=pool_size) as executor:
            return list(
                executor.map(_run_partition, payloads, chunksize=chunksize)
            )

    def merged_substats(self):
        if self.workers == 1:
            return PartitionedEngine.merged_substats(self)
        merged = EngineStats()
        for stats in self._worker_stats:
            merged.merge(stats)
        return merged
