"""Buffer-and-sort baseline: fix disorder *before* the engine.

The conservative alternative the paper argues against: put a K-slack
reorder buffer in front of an unmodified in-order engine.  Events are
held in a priority queue keyed on occurrence time and released — in
timestamp order — only once the clock guarantees nothing older can
still arrive (``ts <= clock - K``).  The inner engine then sees a
perfectly ordered stream and is exactly correct.

The price, which experiments E3/E4 quantify:

* **latency** — every event, and therefore every result, is delayed by
  up to K time units even when the stream happens to be in order;
* **memory** — the buffer holds O(arrival rate × K) events *in
  addition to* the engine's own state;
* **throughput** — the heap adds log-cost per event, though this is
  minor next to the latency cost.

Correctness matches the oracle exactly (pinned by tests), so E2/E3
compare two *correct* systems — the paper's native engine wins on
latency and buffer memory, not on result quality.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterable, List, Optional

if TYPE_CHECKING:  # runtime import stays lazy; see __init__
    from repro.streams.spill import SpillingReorderBuffer

from repro.core.clock import StreamClock
from repro.core.engine import Engine, ValidationPolicy
from repro.core.errors import ConfigurationError, EngineStateError
from repro.core.event import (
    Event,
    Punctuation,
    StreamElement,
    admission_error,
    malformed_reason,
)
from repro.core.inorder import InOrderEngine
from repro.core.pattern import Match, Pattern
from repro.core.purge import PurgePolicy
from repro.core.stats import EngineStats


class ReorderingEngine(Engine):
    """K-slack reorder buffer feeding an :class:`InOrderEngine`.

    Parameters
    ----------
    pattern:
        The compiled query.
    k:
        Disorder bound; must be a concrete integer here (the buffer
        needs a release rule; ``None`` would buffer forever).
    purge:
        Purge policy for the *inner* engine.
    memory_limit:
        When set, the reorder buffer holds at most this many events in
        memory and spills overflow to disk segments
        (:class:`repro.streams.spill.SpillingReorderBuffer`) — the
        persistent-storage support for spiky workloads.
    max_spilled:
        Optional disk bound for the spill tier (requires
        *memory_limit*): when spilled segments exceed this many events,
        the oldest segments are shed — counted in ``stats.events_shed``
        — so a runaway burst degrades results instead of filling the
        disk.
    """

    def __init__(
        self,
        pattern: Pattern,
        k: int,
        purge: Optional[PurgePolicy] = None,
        memory_limit: Optional[int] = None,
        max_spilled: Optional[int] = None,
    ) -> None:
        super().__init__(pattern)
        if not isinstance(k, int) or isinstance(k, bool) or k < 0:
            raise ConfigurationError(
                f"ReorderingEngine requires a concrete disorder bound K >= 0, got {k!r}"
            )
        if max_spilled is not None and memory_limit is None:
            raise ConfigurationError(
                "max_spilled bounds the disk spill tier; it requires memory_limit"
            )
        self.k = k
        self.clock = StreamClock(k)
        self.inner = InOrderEngine(pattern, purge=purge)
        self._buffer: List[tuple] = []  # (ts, eid, event) min-heap
        self._spill: Optional["SpillingReorderBuffer"] = None
        if memory_limit is not None:
            from repro.streams.spill import SpillingReorderBuffer

            self._spill = SpillingReorderBuffer(
                memory_limit=memory_limit, max_disk_events=max_spilled
            )
        self.buffer_peak = 0

    # -- observability -----------------------------------------------------------

    def enable_observability(self, tracer=None, metrics=None):
        """Instrument this tier and, when tracing, the inner engine too.

        The inner engine shares the tracer under the ``"inner"`` stream
        tag — so a lifecycle shows both the buffer residency (outer
        BUFFERED/RELEASED spans) and the in-order admission/match story
        — but *not* the registry: flow metrics are reported once, at
        this tier, never double-counted.
        """
        obs = super().enable_observability(tracer=tracer, metrics=metrics)
        if obs.tracing:
            from repro.obs.hooks import Observability

            self.inner._obs = Observability(
                self.inner, tracer=obs.tracer, registry=None, stream="inner"
            )
        return obs

    # -- state ----------------------------------------------------------------

    def state_size(self) -> int:
        return self.buffer_size() + self.inner.state_size()

    def buffer_size(self) -> int:
        """Events currently held back by the reorder buffer (all tiers)."""
        if self._spill is not None:
            return len(self._spill)
        return len(self._buffer)

    def buffer_memory_size(self) -> int:
        """Events held in *memory* (excludes spilled segments)."""
        if self._spill is not None:
            return self._spill.memory_size()
        return len(self._buffer)

    def oldest_buffered_ts(self) -> Optional[int]:
        """Occurrence time of the oldest event the buffer is holding.

        The reorder-hold probe for latency attribution: the distance
        between this and the merged watermark is *why* an event is still
        waiting.  None when nothing is buffered (or when the spill tier
        owns the buffer — its segments are sorted on disk, and peeking
        them would do I/O on a hot path).
        """
        if self._spill is not None or not self._buffer:
            return None
        return self._buffer[0][0]

    # -- checkpoint / restore -----------------------------------------------------

    def _snapshot_config(self) -> dict:
        config = super()._snapshot_config()
        config.update(
            {
                "k": self.k,
                "memory_limit": (
                    self._spill.memory_limit if self._spill is not None else None
                ),
                "max_spilled": (
                    self._spill.max_disk_events if self._spill is not None else None
                ),
                "inner_purge": (
                    self.inner.purge_policy.mode.value,
                    self.inner.purge_policy.interval,
                ),
            }
        )
        return config

    def _snapshot_state(self) -> dict:
        state = self._base_state()
        state.update(
            {
                "clock": self.clock.snapshot_state(),
                "buffer": [entry[2] for entry in self._buffer],
                "buffer_peak": self.buffer_peak,
                "spill": (
                    self._spill.snapshot_state() if self._spill is not None else None
                ),
                "inner": self.inner._snapshot_state(),
            }
        )
        return state

    def _restore_state(self, state: dict) -> None:
        self._restore_base(state)
        self.clock.restore_state(state["clock"])
        self._buffer = [(e.ts, e.eid, e) for e in state["buffer"]]
        heapq.heapify(self._buffer)
        self.buffer_peak = state["buffer_peak"]
        if self._spill is not None and state["spill"] is not None:
            self._spill.restore_state(state["spill"])
        self.inner._restore_state(state["inner"])

    # -- processing -------------------------------------------------------------

    def _process_event(self, event: Event) -> List[Match]:
        if self.clock.is_late(event):
            # The promise is broken; releasing it now would feed the inner
            # engine out of order and void its correctness, so drop.
            self.stats.late_dropped += 1
            return []
        if self.clock.observe(event):
            self.stats.out_of_order_events += 1
        if self._spill is not None:
            self._spill.push(event)
            # Disk-bound shedding happens inside the spill tier; mirror
            # its cumulative casualty count into the engine's stats.
            self.stats.events_shed = self._spill.shed_events
        else:
            heapq.heappush(self._buffer, (event.ts, event.eid, event))
        if self.buffer_size() > self.buffer_peak:
            self.buffer_peak = self.buffer_size()
        if self._obs is not None:
            self._obs.note_buffered(self, event)
        return self._drain()

    def _on_punctuation(self, punctuation: Punctuation) -> List[Match]:
        self.clock.observe_punctuation(punctuation)
        emitted = self._drain()
        emitted.extend(self._relay(self.inner.feed(punctuation)))
        return emitted

    def feed_batch(self, elements: Iterable[StreamElement]) -> List[Match]:
        """Batched hot path; observably identical to feeding one at a time.

        The buffer bookkeeping is hoisted into locals and each element's
        drain is handed to the inner engine as one
        :meth:`InOrderEngine.feed_batch` call (the drain happens after
        this element advanced the clock, so every released event shares
        the same emission clock — exactly as the per-event path).  The
        spill-backed configuration keeps the reference loop; its cost is
        dominated by segment I/O, not call dispatch.
        """
        if self._spill is not None or self._obs is not None:
            # Segment I/O (spill) or per-element classification (obs)
            # dominates; take the reference loop.
            return Engine.feed_batch(self, elements)
        if self._closed:
            raise EngineStateError(f"{type(self).__name__} is closed")
        emitted: List[Match] = []
        stats = self.stats
        clock = self.clock
        buffer = self._buffer
        heappush = heapq.heappush
        heappop = heapq.heappop
        inner_feed_batch = self.inner.feed_batch
        inner_state_size = self.inner.state_size
        relay = self._relay
        k = self.k
        quarantine = self.validation is ValidationPolicy.QUARANTINE
        quarantined = 0
        max_ts = clock._max_ts
        horizon = clock.horizon()
        observations = 0
        buffer_peak = self.buffer_peak
        peak = stats.peak_state_size
        events_in = 0
        late_dropped = 0
        out_of_order = 0
        try:
            for element in elements:
                if isinstance(element, Event):
                    ts = element.ts
                    etype = element.etype
                    # Inlined admission screen (mirrors malformed_reason):
                    # a NaN/float timestamp would silently corrupt the
                    # heap order this engine's correctness rests on.
                    if (
                        type(ts) is not int
                        or ts < 0
                        or not isinstance(etype, str)
                        or not etype
                    ):
                        if quarantine:
                            quarantined += 1
                            continue
                        raise admission_error(element)
                    self._arrival += 1
                    events_in += 1
                    if ts <= horizon:
                        # Promise broken: releasing now would feed the
                        # inner engine out of order, so drop (see
                        # _process_event).
                        late_dropped += 1
                        continue
                    observations += 1
                    if ts > max_ts:
                        max_ts = ts
                        clock._max_ts = ts
                        advanced = ts - k - 1
                        if advanced > horizon:
                            horizon = advanced
                    elif ts < max_ts:
                        out_of_order += 1
                    heappush(buffer, (ts, element.eid, element))
                    if len(buffer) > buffer_peak:
                        buffer_peak = len(buffer)
                    if buffer and buffer[0][0] <= horizon:
                        released = []
                        while buffer and buffer[0][0] <= horizon:
                            released.append(heappop(buffer)[2])
                        emitted.extend(relay(inner_feed_batch(released)))
                else:
                    if malformed_reason(element) is not None:
                        if quarantine:
                            quarantined += 1
                            continue
                        raise admission_error(element)
                    stats.punctuations_in += 1
                    clock._observations += observations
                    observations = 0
                    self.buffer_peak = buffer_peak
                    emitted.extend(self._on_punctuation(element))
                    max_ts = clock._max_ts
                    horizon = clock.horizon()
                    buffer_peak = self.buffer_peak
                size_now = len(buffer) + inner_state_size()
                if size_now > peak:
                    peak = size_now
        finally:
            clock._observations += observations
            self.buffer_peak = buffer_peak
            stats.peak_state_size = peak
            stats.events_quarantined += quarantined
            stats.events_in += events_in
            stats.late_dropped += late_dropped
            stats.out_of_order_events += out_of_order
        return emitted

    def _drain(self) -> List[Match]:
        """Release every sealed buffered event to the inner engine, in ts order."""
        horizon = self.clock.horizon()
        emitted: List[Match] = []
        if self._spill is not None:
            for event in self._spill.release(horizon):
                if self._obs is not None:
                    self._obs.note_released(self, event)
                emitted.extend(self._relay(self.inner.feed(event)))
            return emitted
        while self._buffer and self._buffer[0][0] <= horizon:
            __, __, event = heapq.heappop(self._buffer)
            if self._obs is not None:
                self._obs.note_released(self, event)
            emitted.extend(self._relay(self.inner.feed(event)))
        return emitted

    # Inner-engine work counters folded into the outer stats at close,
    # so cost accounting (construction work, purge activity) is visible
    # at the strategy level the benchmarks compare.  Flow counters
    # (events_in, matches_emitted) are NOT folded — the outer engine
    # already tracks those and folding would double-count.
    _FOLDED_COUNTERS = (
        "events_admitted",
        "events_ignored",
        "construction_triggers",
        "construction_skipped_by_probe",
        "partial_combinations",
        "predicate_evaluations",
        "window_rejections",
        "matches_cancelled",
        "purge_runs",
        "instances_purged",
        "negatives_purged",
    )

    def _flush(self) -> List[Match]:
        emitted: List[Match] = []
        if self._spill is not None:
            for event in self._spill.drain():
                if self._obs is not None:
                    self._obs.note_released(self, event)
                emitted.extend(self._relay(self.inner.feed(event)))
            self._spill.close()
        while self._buffer:
            __, __, event = heapq.heappop(self._buffer)
            if self._obs is not None:
                self._obs.note_released(self, event)
            emitted.extend(self._relay(self.inner.feed(event)))
        emitted.extend(self._relay(self.inner.close()))
        for name in self._FOLDED_COUNTERS:
            setattr(
                self.stats,
                name,
                getattr(self.stats, name) + getattr(self.inner.stats, name),
            )
        return emitted

    def _relay(self, matches: List[Match]) -> List[Match]:
        """Surface inner-engine emissions through this engine's bookkeeping."""
        for match in matches:
            self._emit(match, self.clock.now)
        return matches

    # -- diagnostics ----------------------------------------------------------------

    @property
    def inner_stats(self) -> EngineStats:
        """Counters of the wrapped in-order engine."""
        return self.inner.stats
