"""Operator-level counters: the hardware-independent CPU-cost proxy.

The paper reports CPU cost; our substrate is pure Python on modern
hardware, so absolute milliseconds are not comparable to a 2007 Java
prototype.  Counters of the *algorithmic work performed* — construction
attempts, partial combinations extended, predicate evaluations, purge
scans — are comparable across engines and configurations, and they are
what the optimisation experiments (E5, E6) report alongside wall time.

Every engine owns an :class:`EngineStats`; substrates and the bench
harness read it, never write it.
"""

from __future__ import annotations

from typing import Dict


class EngineStats:
    """Mutable counter bundle; all counters start at zero."""

    __slots__ = (
        "events_in",
        "punctuations_in",
        "events_admitted",
        "events_ignored",
        "out_of_order_events",
        "late_dropped",
        "construction_triggers",
        "construction_skipped_by_probe",
        "partial_combinations",
        "predicate_evaluations",
        "window_rejections",
        "index_hits",
        "index_misses",
        "matches_emitted",
        "matches_pending",
        "matches_cancelled",
        "purge_runs",
        "instances_purged",
        "negatives_purged",
        "peak_state_size",
        "revocations",
        "speculative_emitted",
        "retractions_issued",
        "events_quarantined",
        "events_shed",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def note_state_size(self, size: int) -> None:
        """Track the high-water mark of total retained state."""
        if size > self.peak_state_size:
            self.peak_state_size = size

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters (stable key order for reports)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def restore_from(self, counters: Dict[str, int]) -> None:
        """Overwrite every counter from a snapshot dict.

        Missing keys reset to zero so snapshots written before a counter
        existed stay restorable.
        """
        for name in self.__slots__:
            setattr(self, name, counters.get(name, 0))

    def merge(self, other: "EngineStats") -> None:
        """Accumulate *other* into self (peak is max-merged, not summed)."""
        for name in self.__slots__:
            if name == "peak_state_size":
                self.note_state_size(other.peak_state_size)
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        if not parts:
            return "EngineStats()"
        return f"EngineStats({parts})"
