"""Crash recovery: write-ahead logging + checkpoints + exactly-once replay.

:class:`ResilientRunner` wraps any engine with the standard
stream-processing fault-tolerance recipe:

* **Write-ahead log** — every input element is appended (JSON-lines,
  flushed) to ``wal.jsonl`` *before* the engine sees it.  A crash can
  therefore lose at most the element whose append was interrupted — and
  that element never reached the engine, so re-feeding it is safe.
* **Checkpoints** — every *checkpoint_every* elements the engine's full
  deterministic state (:meth:`Engine.snapshot`) is written to
  ``checkpoint.bin`` with an atomic ``os.replace``, together with the
  WAL sequence number and the count of matches delivered so far.
* **Delivery log** — every match handed downstream is recorded in
  ``delivered.jsonl`` as a compact identity record
  ``(seq, start_ts, end_ts, key)``.

Recovery composes the three: restore the last checkpoint, replay the
WAL suffix, and *suppress* the first ``delivered_total - delivered_at_
checkpoint`` re-emissions — verifying each suppressed match against the
logged identity (a mismatch means the logs disagree with the engine's
determinism and raises :class:`~repro.core.errors.RecoveryError`).
The delivered stream across any number of crash/recover cycles is
byte-identical to an uninterrupted run: exactly-once delivery.

The runner deliberately has **no opinion about what crashed it** — an
exception from a fault injector, a purge-time crash point, or a real
process death all recover the same way: build a fresh engine with the
same configuration, point a new runner at the same directory, and call
:meth:`run` with the same input.
"""
# The WAL append, delivery log and checkpoint are *deliberately*
# synchronous on the caller's thread: sync-before-ack is the durability
# contract (an acked frame is on disk), and the ingest gateway's
# group-commit batches one flush per socket batch to amortise it.
# Moving these writes off-thread would ack frames the disk has not seen.
# repro: ignore-file[R007] -- group-commit durability is synchronous by design

from __future__ import annotations

import json
import os
import pickle
from json.encoder import encode_basestring_ascii as _escape_json
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, TextIO, Tuple, Union

from repro.core.engine import Engine
from repro.core.errors import ConfigurationError, RecoveryError
from repro.core.event import Event, Punctuation, StreamElement
from repro.core.pattern import Match

CHECKPOINT_FORMAT = 1

WAL_NAME = "wal.jsonl"
CHECKPOINT_NAME = "checkpoint.bin"
DELIVERED_NAME = "delivered.jsonl"


# -- element codec ------------------------------------------------------------------
#
# The WAL needs a durable element encoding.  ``repro.streams.replay`` has
# one, but core must not import streams (streams imports core); the codec
# is small enough to own here.


def encode_element(element: StreamElement) -> Dict[str, Any]:
    if isinstance(element, Event):
        return {
            "kind": "event",
            "etype": element.etype,
            "ts": element.ts,
            "eid": element.eid,
            "attrs": element.attrs,
        }
    if isinstance(element, Punctuation):
        return {"kind": "punct", "ts": element.ts}
    raise ConfigurationError(f"cannot WAL-encode {type(element).__name__}")


def _element_wal_line(element: StreamElement) -> str:
    """The WAL line for *element*: ``json.dumps(encode_element(e), sort_keys=True)``.

    Hand-assembled on the common path — the per-element dict build plus
    full-document ``json.dumps`` is the single largest cost of the WAL
    append (~3µs of a ~7µs budget), and events are almost always a flat
    string/int attribute map.  Anything else falls back to the real
    encoder, so the output is identical JSON either way.
    """
    if type(element) is Event:
        parts = []
        fast = True
        attrs = element.attrs
        for key in sorted(attrs):
            value = attrs[key]
            if type(value) is int:
                parts.append(f"{_escape_json(key)}: {value}")
            elif type(value) is str:
                parts.append(f"{_escape_json(key)}: {_escape_json(value)}")
            else:
                fast = False
                break
        if fast:
            return (
                '{"attrs": {' + ", ".join(parts) + "}, "
                f'"eid": {element.eid}, '
                f'"etype": {_escape_json(element.etype)}, '
                '"kind": "event", '
                f'"ts": {element.ts}}}'
            )
    return json.dumps(encode_element(element), sort_keys=True)


def decode_element(record: Dict[str, Any]) -> StreamElement:
    if record["kind"] == "event":
        return Event(
            record["etype"],
            record["ts"],
            record.get("attrs") or {},
            eid=record["eid"],
        )
    if record["kind"] == "punct":
        return Punctuation(record["ts"])
    raise RecoveryError(f"unknown WAL record kind {record['kind']!r}")


def _jsonable(value: Any) -> Any:
    """Tuples -> lists, recursively, so records survive a JSON round-trip."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    if isinstance(value, list):
        return [_jsonable(item) for item in value]
    return value


def clear_state(directory: Union[str, Path]) -> None:
    """Delete any recovery state in *directory* (start a run from scratch)."""
    directory = Path(directory)
    for name in (WAL_NAME, CHECKPOINT_NAME, DELIVERED_NAME):
        try:
            (directory / name).unlink()
        except FileNotFoundError:
            pass


def _read_jsonl(path: Path, label: str) -> List[Dict[str, Any]]:
    """Parse a JSON-lines log, repairing a torn final line.

    A crash can interrupt an append mid-line.  A final fragment without
    a trailing newline is the expected signature of that: if it still
    parses it is kept (and the newline re-appended so future appends do
    not concatenate onto it); otherwise it is truncated away — the write
    it belonged to never finished, so the element/match it described was
    never acted on.  A *complete* line that fails to parse is genuine
    corruption and raises :class:`RecoveryError`.
    """
    if not path.exists():
        return []
    raw = path.read_bytes()
    if not raw:
        return []
    complete, sep, fragment = raw.rpartition(b"\n")
    records = []
    for index, line in enumerate(complete.split(b"\n")):
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            raise RecoveryError(f"{label} corrupt at line {index + 1}: {line[:80]!r}")
    if fragment:
        try:
            records.append(json.loads(fragment))
        except ValueError:
            with path.open("r+b") as handle:
                handle.truncate(len(complete) + len(sep))
        else:
            with path.open("ab") as handle:
                handle.write(b"\n")
    return records


def read_wal_elements(directory: Union[str, Path]) -> List[StreamElement]:
    """The stream elements durably logged in *directory*'s WAL, in order.

    The ingestion gateway rebuilds its idempotent-admission window from
    this after a crash: every WAL event re-derives its idempotency id
    through the stream schema, so redeliveries racing the restart are
    deduplicated even though the in-memory window died with the old
    process.  Close sentinels are skipped; torn final lines are
    repaired exactly as recovery itself repairs them.
    """
    wal = _read_jsonl(Path(directory) / WAL_NAME, WAL_NAME)
    return [
        decode_element(record) for record in wal if record["kind"] != "close"
    ]


class ResilientRunner:
    """Checkpointed, write-ahead-logged driver around any engine.

    Parameters
    ----------
    engine:
        A *fresh or restored-compatible* engine.  On recovery the engine
        must have been constructed with the same configuration as the
        crashed incarnation (:meth:`Engine.restore` verifies this).
    directory:
        Where ``wal.jsonl`` / ``checkpoint.bin`` / ``delivered.jsonl``
        live.  If they already exist, construction performs recovery.
    checkpoint_every:
        Checkpoint interval in input elements (>= 1).
    fault:
        Optional :class:`repro.faultinject.FaultInjector`; its crash
        points fire after an element is durably logged and before the
        engine processes it.  Shared across incarnations, its one-shot
        crash points let tests script multi-crash schedules.
    """

    def __init__(
        self,
        engine: Engine,
        directory: Union[str, Path],
        checkpoint_every: int = 1000,
        fault: Optional[Any] = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.engine = engine
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = checkpoint_every
        self.fault = fault
        self._wal_path = self.directory / WAL_NAME
        self._checkpoint_path = self.directory / CHECKPOINT_NAME
        self._delivered_path = self.directory / DELIVERED_NAME
        self._seq = 0  # input elements durably logged AND processed
        self._delivered = 0  # matches delivered downstream (log length)
        self._suppress: List[Dict[str, Any]] = []
        self._engine_closed = False
        self._wal_handle: Optional[TextIO] = None
        self._wal_dirty = False
        self._delivered_handle: Optional[TextIO] = None
        #: matches delivered by THIS incarnation (replayed-but-suppressed
        #: re-emissions excluded — those were delivered by a predecessor).
        self.matches: List[Match] = []
        self.recovered = False
        self.replayed_elements = 0
        self.checkpoints_written = 0
        #: Optional ``(clock, report)`` pair installed by an operator
        #: layer (the ingest gateway's latency attribution): when set,
        #: :meth:`sync` times the WAL flush with *clock* and hands the
        #: duration in seconds to *report*.  None on the default path,
        #: which stays wall-clock free and byte-identical in behaviour.
        self.sync_probe: Optional[
            Tuple[Callable[[], float], Callable[[float], None]]
        ] = None
        # Runner-level metrics live in the engine's registry (when one is
        # attached), so they checkpoint/restore with the engine state.
        # Registered before _recover so restore finds live handles.
        self._c_wal = self._c_checkpoints = None
        self._c_recoveries = self._c_replayed = None
        obs = getattr(engine, "observability", None)
        if obs is not None and obs.registry is not None:
            registry = obs.registry
            self._c_wal = registry.counter(
                "repro_runner_wal_records_total", "elements appended to the WAL"
            )
            self._c_checkpoints = registry.counter(
                "repro_runner_checkpoints_total", "checkpoints written"
            )
            self._c_recoveries = registry.counter(
                "repro_runner_recoveries_total", "crash recoveries performed"
            )
            self._c_replayed = registry.counter(
                "repro_runner_replayed_total", "WAL elements replayed during recovery"
            )
        if self._checkpoint_path.exists() or self._wal_path.exists():
            self._recover()

    # -- lifecycle ------------------------------------------------------------------

    def __enter__(self) -> "ResilientRunner":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[Any],
    ) -> bool:
        self._close_handles()
        return False

    def _close_handles(self) -> None:
        for handle in (self._wal_handle, self._delivered_handle):
            if handle is not None:
                handle.close()  # flushes any buffered WAL tail
        self._wal_handle = None
        self._wal_dirty = False
        self._delivered_handle = None

    # -- recovery -------------------------------------------------------------------

    def _recover(self) -> None:
        self.recovered = True
        checkpoint_seq = 0
        checkpoint_delivered = 0
        if self._checkpoint_path.exists():
            data = self._load_checkpoint()
            self.engine.restore(data["snapshot"])
            checkpoint_seq = data["seq"]
            checkpoint_delivered = data["delivered"]
            self._engine_closed = data["closed"]
        delivered_log = _read_jsonl(self._delivered_path, DELIVERED_NAME)
        if len(delivered_log) < checkpoint_delivered:
            raise RecoveryError(
                f"delivery log has {len(delivered_log)} records but the "
                f"checkpoint claims {checkpoint_delivered} were delivered"
            )
        self._delivered = checkpoint_delivered
        self._suppress = delivered_log[checkpoint_delivered:]
        wal = _read_jsonl(self._wal_path, WAL_NAME)
        elements = [record for record in wal if record["kind"] != "close"]
        saw_close = any(record["kind"] == "close" for record in wal)
        if len(elements) < checkpoint_seq:
            raise RecoveryError(
                f"WAL has {len(elements)} elements but the checkpoint "
                f"claims {checkpoint_seq} were logged"
            )
        self._seq = checkpoint_seq
        # After engine.restore (above): the restored registry values are
        # the baseline this recovery adds to.
        if self._c_recoveries is not None:
            self._c_recoveries.inc()
        for record in elements[checkpoint_seq:]:
            self._apply(decode_element(record), logged=True)
            self.replayed_elements += 1
            if self._c_replayed is not None:
                self._c_replayed.inc()
        if saw_close and not self._engine_closed:
            self._replay_close()
        if self._suppress:
            raise RecoveryError(
                f"delivery log records {len(self._suppress)} matches the "
                "replayed engine never re-emitted"
            )

    def _load_checkpoint(self) -> Dict[str, Any]:
        try:
            data = pickle.loads(self._checkpoint_path.read_bytes())
        except Exception as exc:
            raise RecoveryError(f"checkpoint unreadable: {exc}") from exc
        if not isinstance(data, dict) or data.get("format") != CHECKPOINT_FORMAT:
            raise RecoveryError(
                f"checkpoint format {data.get('format') if isinstance(data, dict) else data!r} "
                f"not supported (expected {CHECKPOINT_FORMAT})"
            )
        return data

    def _replay_close(self) -> None:
        # The close sentinel was logged but the final checkpoint never
        # landed: redo the close (flush emissions, suppress/deliver as
        # usual) without re-appending the sentinel.
        matches = self.engine.close()
        self._engine_closed = True
        self._deliver(matches)
        self.checkpoint()

    # -- feeding --------------------------------------------------------------------

    def feed(self, element: StreamElement) -> List[Match]:
        """Durably log *element*, feed the engine, deliver new matches."""
        self._wal_write_line(_element_wal_line(element))
        return self._apply(element, logged=False)

    def run(self, elements: Iterable[StreamElement]) -> List[Match]:
        """Feed every element not already covered by the WAL, then close.

        After recovery this transparently resumes: the first
        ``self._seq`` elements of *elements* were already logged and
        replayed, so only the tail is processed.  Returns the matches
        delivered by this call (recovery-time deliveries are in
        :attr:`matches`).
        """
        delivered: List[Match] = []
        skip = self._seq
        for index, element in enumerate(elements):
            if index < skip:
                continue
            delivered.extend(self.feed(element))
        delivered.extend(self.close())
        return delivered

    def _apply(self, element: StreamElement, logged: bool) -> List[Match]:
        if self._engine_closed:
            raise RecoveryError("runner is closed; recovery found a close sentinel")
        self._seq += 1
        if self.fault is not None:
            # Fires after the element is durable, before the engine sees
            # it — the worst moment: state and log maximally disagree.
            self._flush_wal()
            self.fault.on_logged(self._seq - 1)
        matches = self.engine.feed(element)
        delivered = self._deliver(matches)
        if self._seq % self.checkpoint_every == 0:
            self.checkpoint()
        return delivered

    def close(self) -> List[Match]:
        """Flush the engine, deliver final matches, write a final checkpoint."""
        if self._engine_closed:
            return []
        self._wal_append({"kind": "close"})
        matches = self.engine.close()
        self._engine_closed = True
        delivered = self._deliver(matches)
        self.checkpoint()
        self._close_handles()
        return delivered

    # -- delivery -------------------------------------------------------------------

    def _match_record(self, match: Match, seq: int) -> Dict[str, Any]:
        return {
            "seq": seq,
            "start_ts": match.events[0].ts,
            "end_ts": match.events[-1].ts,
            "key": _jsonable(match.key()),
        }

    def _deliver(self, matches: List[Match]) -> List[Match]:
        delivered: List[Match] = []
        for match in matches:
            record = self._match_record(match, self._delivered)
            if self._suppress:
                expected = self._suppress.pop(0)
                if record != expected:
                    raise RecoveryError(
                        f"replay re-emitted {record} where the delivery "
                        f"log recorded {expected} — logs and engine "
                        "determinism disagree"
                    )
                self._delivered += 1
                continue
            self._delivered_append(record)
            self._delivered += 1
            self.matches.append(match)
            delivered.append(match)
        return delivered

    # -- durable writes ---------------------------------------------------------------

    def _wal_append(self, record: Dict[str, Any]) -> None:
        # Buffered: the flush is deferred until something downstream
        # depends on this record being on disk — a delivery-log append
        # (the WAL-never-behind-deliveries invariant recovery checks), a
        # checkpoint, or close.  A crash can lose at most the buffered
        # tail, and those elements are simply re-fed from the input —
        # they produced no durable delivery by construction.
        self._wal_write_line(json.dumps(record, sort_keys=True))

    def _wal_write_line(self, line: str) -> None:
        if self._wal_handle is None:
            self._wal_handle = self._wal_path.open("a", encoding="utf-8")
        self._wal_handle.write(line + "\n")
        self._wal_dirty = True
        if self._c_wal is not None:
            self._c_wal.inc()

    def _flush_wal(self) -> None:
        if self._wal_dirty and self._wal_handle is not None:
            self._wal_handle.flush()
            self._wal_dirty = False

    def sync(self) -> None:
        """Make the buffered WAL tail durable now.

        The deferred-flush contract (see :meth:`_wal_append`) assumes
        un-flushed elements can simply be re-fed from the input.  An
        ingestion gateway breaks that assumption the moment it *acks* a
        frame — an acked element will never be resent — so it must sync
        between feeding a group of frames and acknowledging them.
        """
        probe = self.sync_probe
        if probe is None:
            self._flush_wal()
            return
        clock, report = probe
        started = clock()
        self._flush_wal()
        report(clock() - started)

    def _delivered_append(self, record: Dict[str, Any]) -> None:
        # WAL first: a delivery record must never be durable while the
        # element that triggered it is not.
        self._flush_wal()
        if self._delivered_handle is None:
            self._delivered_handle = self._delivered_path.open("a", encoding="utf-8")
        self._delivered_handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._delivered_handle.flush()

    def checkpoint(self) -> None:
        """Atomically persist the engine snapshot + log positions."""
        self._flush_wal()
        payload = pickle.dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "seq": self._seq,
                "delivered": self._delivered,
                "closed": self._engine_closed,
                "snapshot": self.engine.snapshot(),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        tmp = self._checkpoint_path.with_name(CHECKPOINT_NAME + ".tmp")
        with tmp.open("wb") as handle:
            handle.write(payload)
        os.replace(tmp, self._checkpoint_path)
        self.checkpoints_written += 1
        if self._c_checkpoints is not None:
            self._c_checkpoints.inc()

    # -- diagnostics ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        """Input elements durably logged and processed so far."""
        return self._seq

    @property
    def delivered_count(self) -> int:
        """Matches delivered downstream across ALL incarnations."""
        return self._delivered
