"""Core of the reproduction: patterns, engines, and their building blocks.

The stable public surface of ``repro.core`` is re-exported here; see
``repro`` (the top-level package) for the library-wide API.
"""

from repro.core.aggressive import AggressiveEngine, Revocation
from repro.core.clock import StreamClock
from repro.core.engine import (
    EmissionRecord,
    Engine,
    LatePolicy,
    OutOfOrderEngine,
    ValidationPolicy,
)
from repro.core.errors import (
    ConfigurationError,
    DisorderBoundViolation,
    EngineStateError,
    ParseError,
    QueryError,
    RecoveryError,
    ReproError,
    SnapshotError,
    StreamError,
)
from repro.core.event import Event, Punctuation, StreamElement, is_event, sort_by_occurrence
from repro.core.inorder import InOrderEngine
from repro.core.oracle import OfflineOracle, oracle_matches
from repro.core.ordered_output import OrderedOutputAdapter
from repro.core.parser import parse
from repro.core.colbatch import BatchBuilder, EventBatch, EventBatchView
from repro.core.partition import (
    ParallelPartitionedEngine,
    PartitionedEngine,
    detect_partition_key,
)
from repro.core.pipeline import PipelinedPartitionedEngine
from repro.core.pattern import KleeneBracket, Match, NegationBracket, Pattern, Step, seq
from repro.core.plan import MultiQueryPlan, QueryPlan
from repro.core.predicates import (
    And,
    Attr,
    Comparison,
    Const,
    Eq,
    FnPredicate,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    Predicate,
)
from repro.core.purge import PurgeMode, PurgePolicy
from repro.core.recovery import ResilientRunner, clear_state
from repro.core.registry import HeartbeatDriver, QueryRegistry
from repro.core.reorder import ReorderingEngine
from repro.core.shedding import ShedMode, ShedPolicy
from repro.core.stats import EngineStats
from repro.core.transformation import CompositeEventFactory

__all__ = [
    "AggressiveEngine",
    "And",
    "Attr",
    "Comparison",
    "CompositeEventFactory",
    "ConfigurationError",
    "Const",
    "DisorderBoundViolation",
    "EmissionRecord",
    "Engine",
    "EngineStateError",
    "EngineStats",
    "Eq",
    "Event",
    "FnPredicate",
    "Ge",
    "Gt",
    "HeartbeatDriver",
    "InOrderEngine",
    "KleeneBracket",
    "LatePolicy",
    "Le",
    "Lt",
    "Match",
    "MultiQueryPlan",
    "Ne",
    "NegationBracket",
    "Not",
    "OfflineOracle",
    "Or",
    "OrderedOutputAdapter",
    "OutOfOrderEngine",
    "ParseError",
    "BatchBuilder",
    "EventBatch",
    "EventBatchView",
    "ParallelPartitionedEngine",
    "PartitionedEngine",
    "PipelinedPartitionedEngine",
    "Pattern",
    "Predicate",
    "Punctuation",
    "PurgeMode",
    "PurgePolicy",
    "QueryError",
    "QueryRegistry",
    "QueryPlan",
    "RecoveryError",
    "ReorderingEngine",
    "ReproError",
    "ResilientRunner",
    "Revocation",
    "ShedMode",
    "ShedPolicy",
    "SnapshotError",
    "Step",
    "StreamClock",
    "StreamElement",
    "StreamError",
    "ValidationPolicy",
    "clear_state",
    "is_event",
    "oracle_matches",
    "parse",
    "seq",
    "detect_partition_key",
    "sort_by_occurrence",
]
