"""Predicate expressions for ``WHERE`` clauses of pattern queries.

A ``WHERE`` clause is a conjunction of predicates over the variables
bound by the pattern steps, e.g. for ``SEQ(A a, B b)``::

    where=[Eq(Attr("a", "tag"), Attr("b", "tag")),
           Gt(Attr("b", "price"), Const(100))]

The engine needs two things from a predicate beyond evaluation:

* ``variables()`` — which step variables it mentions, so predicates can
  be *staged*: a predicate is checked as early as all of its variables
  are bound, pruning partial matches before full enumeration (one of
  the paper's CPU optimisations).
* equality-join structure (``equality_pairs``) — attribute-equality
  predicates between two variables, which construction can exploit with
  hash lookups instead of scans.

Predicates are immutable and hashable so queries can be deduplicated
and used as dict keys by the bench harness.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.core.errors import QueryError
from repro.core.event import Event

Bindings = Mapping[str, Event]


class Term:
    """Base class for predicate operands (attribute refs and constants)."""

    def variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def evaluate(self, bindings: Bindings) -> Any:
        raise NotImplementedError


class Attr(Term):
    """Reference to an attribute of a bound step variable: ``var.name``."""

    __slots__ = ("var", "name")

    def __init__(self, var: str, name: str):
        if not var or not isinstance(var, str):
            raise QueryError(f"attribute reference needs a variable name, got {var!r}")
        if not name or not isinstance(name, str):
            raise QueryError(f"attribute reference needs an attribute name, got {name!r}")
        self.var = var
        self.name = name

    def variables(self) -> FrozenSet[str]:
        return frozenset((self.var,))

    def evaluate(self, bindings: Bindings) -> Any:
        try:
            event = bindings[self.var]
        except KeyError:
            raise QueryError(f"variable {self.var!r} is not bound") from None
        if self.name == "ts":
            return event.ts
        try:
            return event._attrs[self.name]
        except KeyError:
            # Re-enter the public accessor for its descriptive error.
            return event[self.name]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Attr) and (self.var, self.name) == (other.var, other.name)

    def __hash__(self) -> int:
        return hash(("attr", self.var, self.name))

    def __repr__(self) -> str:
        return f"{self.var}.{self.name}"


class Const(Term):
    """A literal constant operand."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, bindings: Bindings) -> Any:
        return self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", repr(self.value)))

    def __repr__(self) -> str:
        return repr(self.value)


class Predicate:
    """Base class: a boolean condition over bound step variables."""

    def variables(self) -> FrozenSet[str]:
        """Step variables this predicate mentions."""
        raise NotImplementedError

    def evaluate(self, bindings: Bindings) -> bool:
        """Evaluate under *bindings*; all mentioned variables must be bound."""
        raise NotImplementedError

    def equality_pairs(self) -> List[Tuple[Attr, Attr]]:
        """``(left, right)`` attr pairs for var-to-var equality predicates."""
        return []

    def __and__(self, other: "Predicate") -> "And":
        return And([self, other])


_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Comparison(Predicate):
    """Binary comparison between two terms: ``left op right``."""

    __slots__ = ("left", "op", "right", "_fn", "_vars")

    def __init__(self, left: Term, op: str, right: Term):
        if op not in _OPS:
            raise QueryError(f"unknown comparison operator {op!r}; expected one of {sorted(_OPS)}")
        if not isinstance(left, Term) or not isinstance(right, Term):
            raise QueryError("comparison operands must be Attr or Const terms")
        self.left = left
        self.op = op
        self.right = right
        self._fn = _OPS[op]
        self._vars = left.variables() | right.variables()

    def variables(self) -> FrozenSet[str]:
        return self._vars

    def evaluate(self, bindings: Bindings) -> bool:
        try:
            return bool(self._fn(self.left.evaluate(bindings), self.right.evaluate(bindings)))
        except TypeError:
            # Heterogeneous attribute types (e.g. str vs int) never match.
            return False

    def equality_pairs(self) -> List[Tuple[Attr, Attr]]:
        if self.op == "==" and isinstance(self.left, Attr) and isinstance(self.right, Attr):
            if self.left.var != self.right.var:
                return [(self.left, self.right)]
        return []

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and (self.left, self.op, self.right) == (other.left, other.op, other.right)
        )

    def __hash__(self) -> int:
        return hash(("cmp", self.left, self.op, self.right))

    def __repr__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def Eq(left: Term, right: Term) -> Comparison:
    """Equality comparison, ``left == right``."""
    return Comparison(left, "==", right)


def Ne(left: Term, right: Term) -> Comparison:
    """Inequality comparison, ``left != right``."""
    return Comparison(left, "!=", right)


def Lt(left: Term, right: Term) -> Comparison:
    """Strict less-than comparison."""
    return Comparison(left, "<", right)


def Le(left: Term, right: Term) -> Comparison:
    """Less-or-equal comparison."""
    return Comparison(left, "<=", right)


def Gt(left: Term, right: Term) -> Comparison:
    """Strict greater-than comparison."""
    return Comparison(left, ">", right)


def Ge(left: Term, right: Term) -> Comparison:
    """Greater-or-equal comparison."""
    return Comparison(left, ">=", right)


class And(Predicate):
    """Conjunction of predicates; flattens nested conjunctions."""

    __slots__ = ("children", "_vars")

    def __init__(self, children: Iterable[Predicate]):
        flat: List[Predicate] = []
        for child in children:
            if not isinstance(child, Predicate):
                raise QueryError(f"And expects predicates, got {child!r}")
            if isinstance(child, And):
                flat.extend(child.children)
            else:
                flat.append(child)
        if not flat:
            raise QueryError("And requires at least one child predicate")
        self.children = tuple(flat)
        vars_: FrozenSet[str] = frozenset()
        for child in self.children:
            vars_ = vars_ | child.variables()
        self._vars = vars_

    def variables(self) -> FrozenSet[str]:
        return self._vars

    def evaluate(self, bindings: Bindings) -> bool:
        return all(child.evaluate(bindings) for child in self.children)

    def equality_pairs(self) -> List[Tuple[Attr, Attr]]:
        pairs: List[Tuple[Attr, Attr]] = []
        for child in self.children:
            pairs.extend(child.equality_pairs())
        return pairs

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.children == other.children

    def __hash__(self) -> int:
        return hash(("and", self.children))

    def __repr__(self) -> str:
        return " AND ".join(repr(child) for child in self.children)


class Or(Predicate):
    """Disjunction of predicates.

    Not part of the paper's core language but cheap to support; staged
    evaluation treats the whole disjunction as ready once all mentioned
    variables are bound.
    """

    __slots__ = ("children", "_vars")

    def __init__(self, children: Iterable[Predicate]):
        self.children = tuple(children)
        if not self.children:
            raise QueryError("Or requires at least one child predicate")
        vars_: FrozenSet[str] = frozenset()
        for child in self.children:
            if not isinstance(child, Predicate):
                raise QueryError(f"Or expects predicates, got {child!r}")
            vars_ = vars_ | child.variables()
        self._vars = vars_

    def variables(self) -> FrozenSet[str]:
        return self._vars

    def evaluate(self, bindings: Bindings) -> bool:
        return any(child.evaluate(bindings) for child in self.children)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.children == other.children

    def __hash__(self) -> int:
        return hash(("or", self.children))

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(child) for child in self.children) + ")"


class Not(Predicate):
    """Negation of a predicate (predicate-level, distinct from step negation)."""

    __slots__ = ("child",)

    def __init__(self, child: Predicate):
        if not isinstance(child, Predicate):
            raise QueryError(f"Not expects a predicate, got {child!r}")
        self.child = child

    def variables(self) -> FrozenSet[str]:
        return self.child.variables()

    def evaluate(self, bindings: Bindings) -> bool:
        return not self.child.evaluate(bindings)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.child == other.child

    def __hash__(self) -> int:
        return hash(("not", self.child))

    def __repr__(self) -> str:
        return f"NOT {self.child!r}"


class FnPredicate(Predicate):
    """Escape hatch: an arbitrary Python callable over the bindings.

    The caller must declare which variables the callable reads so that
    staged evaluation remains correct.

    >>> p = FnPredicate(("a", "b"), lambda b: b["a"]["x"] + b["b"]["x"] < 10)
    """

    __slots__ = ("_vars", "fn", "label")

    def __init__(self, variables: Iterable[str], fn: Callable[[Bindings], bool], label: str = ""):
        self._vars = frozenset(variables)
        if not self._vars:
            raise QueryError("FnPredicate must declare at least one variable")
        if not callable(fn):
            raise QueryError("FnPredicate requires a callable")
        self.fn = fn
        self.label = label or getattr(fn, "__name__", "<fn>")

    def variables(self) -> FrozenSet[str]:
        return self._vars

    def evaluate(self, bindings: Bindings) -> bool:
        return bool(self.fn(bindings))

    def __repr__(self) -> str:
        return f"FnPredicate({self.label}, vars={sorted(self._vars)})"


TRUE: Optional[Predicate] = None  # a WHERE clause of None means "no condition"


def stage_predicates(
    predicates: Iterable[Predicate],
    binding_order: List[str],
) -> Dict[str, List[Predicate]]:
    """Assign each predicate to the latest variable (in *binding_order*) it mentions.

    The returned mapping lets an engine check each predicate the moment
    its last variable becomes bound, pruning the search space as early
    as possible.  Predicates mentioning variables outside
    *binding_order* raise :class:`QueryError` — the query builder calls
    this as its validation pass.
    """
    position = {var: i for i, var in enumerate(binding_order)}
    staged: Dict[str, List[Predicate]] = {var: [] for var in binding_order}
    for predicate in predicates:
        mentioned = predicate.variables()
        unknown = mentioned - set(position)
        if unknown:
            raise QueryError(
                f"predicate {predicate!r} mentions unknown variable(s) {sorted(unknown)}; "
                f"pattern binds {binding_order}"
            )
        latest = max(mentioned, key=lambda v: position[v])
        staged[latest].append(predicate)
    return staged
