"""Shared benchmark harness: engine registry and sweep runner.

Each experiment in ``benchmarks/`` is a sweep over one knob, comparing
a fixed set of engine configurations on identical traces.  This module
centralises the two pieces every experiment needs:

* :func:`make_engine` — a name → engine factory covering all four
  strategies, so experiments select engines by string and stay
  declarative;
* :func:`run_cell` — feed one arrival trace through one engine and
  collect every measurement (wall time, counters, quality vs. oracle,
  latency summaries, peak state) in a flat dict, ready for a report
  row.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.aggressive import AggressiveEngine
from repro.core.engine import Engine, OutOfOrderEngine
from repro.core.errors import ConfigurationError
from repro.core.event import Event
from repro.core.inorder import InOrderEngine
from repro.core.oracle import OfflineOracle
from repro.core.partition import ParallelPartitionedEngine, PartitionedEngine
from repro.core.pattern import Pattern
from repro.core.pipeline import PipelinedPartitionedEngine
from repro.core.purge import PurgePolicy
from repro.core.reorder import ReorderingEngine
from repro.core.shedding import ShedPolicy
from repro.metrics.latency import summarize_arrival_latency, summarize_occurrence_latency
from repro.metrics.quality import QualityReport, compare_keys

ENGINE_NAMES = (
    "ooo", "inorder", "reorder", "aggressive", "partitioned", "parallel",
    "pipeline",
)


def make_engine(
    name: str,
    pattern: Pattern,
    k: Optional[int] = None,
    purge: Optional[PurgePolicy] = None,
    optimize: bool = True,
    index: bool = True,
    key: Optional[str] = None,
    workers: int = 1,
    backend: Optional[str] = None,
    shed: Optional[ShedPolicy] = None,
    speculative: bool = False,
    controller=None,
) -> Engine:
    """Build an engine by strategy name.

    ``ooo``         the paper's native out-of-order engine
    ``inorder``     SASE-style baseline assuming ordered arrival
    ``reorder``     K-slack buffer-and-sort in front of the baseline
    ``aggressive``  optimistic emit + revocations (extension)
    ``partitioned`` per-key sub-engines, serial routing
    ``parallel``    partitioned with a close-time worker pool (*workers*,
                    *backend*; the PR-1 barrier design)
    ``pipeline``    partitioned over long-lived workers with columnar
                    batches and epoch-ordered streaming output
                    (*workers*, *backend*)

    *backend* ``None`` resolves to each family's native default:
    ``thread`` for ``parallel`` (its pool maps once at close, where
    pickling dominates), ``process`` for ``pipeline`` (long-lived
    workers amortise start-up and escape the GIL).

    *speculative* / *controller* (the optimistic side-stream and the
    adaptive-K policy) apply to the ``ooo`` and ``partitioned`` families
    (``parallel``/``pipeline`` only at ``workers=1``); other strategies
    reject them —
    the aggressive engine already has its own optimistic protocol, and
    the reorder/inorder baselines have no pending matches to speculate
    on.
    """
    if speculative or controller is not None:
        if name not in ("ooo", "partitioned", "parallel", "pipeline"):
            raise ConfigurationError(
                "speculative/adaptive modes are supported by the ooo and "
                f"partitioned engine families, not {name!r}"
            )
    if name == "ooo":
        return OutOfOrderEngine(
            pattern,
            k=k,
            purge=purge,
            optimize_scan=optimize,
            optimize_construction=optimize,
            index=index,
            shed=shed,
            speculative=speculative,
            controller=controller,
        )
    if shed is not None and name != "aggressive":
        raise ConfigurationError(
            f"load shedding is supported by the ooo/aggressive engines, not {name!r}"
        )
    if name == "inorder":
        return InOrderEngine(pattern, purge=purge)
    if name == "reorder":
        if k is None:
            raise ConfigurationError("reorder engine needs a concrete K")
        return ReorderingEngine(pattern, k=k, purge=purge)
    if name == "aggressive":
        return AggressiveEngine(
            pattern,
            k=k,
            purge=purge,
            optimize_scan=optimize,
            optimize_construction=optimize,
            index=index,
            shed=shed,
        )
    if name == "partitioned":
        return PartitionedEngine(
            pattern,
            k=k,
            purge=purge,
            key=key,
            index=index,
            speculative=speculative,
            controller=controller,
        )
    if name == "pipeline":
        return PipelinedPartitionedEngine(
            pattern,
            k=k,
            purge=purge,
            key=key,
            index=index,
            workers=workers,
            backend=backend or "process",
            speculative=speculative,
            controller=controller,
        )
    if name == "parallel":
        return ParallelPartitionedEngine(
            pattern,
            k=k,
            purge=purge,
            key=key,
            index=index,
            workers=workers,
            backend=backend or "thread",
            speculative=speculative,
            controller=controller,
        )
    raise ConfigurationError(f"unknown engine {name!r}; choose from {ENGINE_NAMES}")


def speculation_counts(engine: Engine) -> tuple:
    """(speculative emissions, retractions) for any engine shape.

    Flat engines count in their own stats; partitioned engines count in
    the per-partition sub-stats, so fall through to the merged view.
    """
    emitted = engine.stats.speculative_emitted
    retracted = engine.stats.retractions_issued
    if emitted == 0 and retracted == 0 and hasattr(engine, "merged_substats"):
        merged = engine.merged_substats()
        emitted, retracted = merged.speculative_emitted, merged.retractions_issued
    return emitted, retracted


def run_cell(
    engine: Engine,
    arrival: Sequence[Event],
    truth_keys=None,
    batch_size: Optional[int] = None,
    metrics: bool = False,
) -> Dict[str, Any]:
    """One (engine, trace) measurement cell.

    When *truth_keys* (oracle identity set) is provided, quality
    metrics are included; engines with a ``net_result_set`` (the
    aggressive strategy) are judged on their net output.

    *batch_size* selects the feeding discipline: ``None`` hands the
    whole trace to ``feed_many`` (the batched fast path), a positive
    value feeds chunks of that size through ``feed_batch``, and ``0``
    forces the per-event ``feed`` loop — the reference discipline the
    batch speedups in experiment E16 are measured against.

    *metrics* attaches a fresh observability registry to the engine
    before feeding; the cell then carries histogram-derived latency
    quantiles (``lat_hist_*``, in timestamp units) and the full
    registry snapshot under ``"metrics"``.  Note the instrumented feed
    path is slower — keep it off for pure wall-time comparisons.
    """
    registry = None
    if metrics:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        engine.enable_observability(metrics=registry)
    start = time.perf_counter()
    if batch_size is None:
        engine.feed_many(arrival)
    elif batch_size <= 0:
        for element in arrival:
            engine.feed(element)
    else:
        for lo in range(0, len(arrival), batch_size):
            engine.feed_batch(arrival[lo : lo + batch_size])
    engine.close()
    seconds = time.perf_counter() - start

    produced = (
        engine.net_result_set()
        if hasattr(engine, "net_result_set")
        else engine.result_set()
    )
    cell: Dict[str, Any] = {
        "engine": type(engine).__name__,
        "events": len(arrival),
        "batch_size": batch_size,
        "seconds": seconds,
        "events_per_sec": len(arrival) / seconds if seconds > 0 else float("inf"),
        "matches": len(engine.results),
        "peak_state": engine.stats.peak_state_size,
        "partial_combinations": engine.stats.partial_combinations,
        "predicate_evaluations": engine.stats.predicate_evaluations,
        "construction_triggers": engine.stats.construction_triggers,
        "skipped_by_probe": engine.stats.construction_skipped_by_probe,
        "index_hits": engine.stats.index_hits,
        "index_misses": engine.stats.index_misses,
        "purged": engine.stats.instances_purged,
        "late_dropped": engine.stats.late_dropped,
        "revocations": engine.stats.revocations,
        "shed": engine.stats.events_shed,
        "quarantined": engine.stats.events_quarantined,
    }
    cell["speculative"], cell["retractions"] = speculation_counts(engine)
    arrival_summary = summarize_arrival_latency(engine.emissions, arrival)
    occurrence_summary = summarize_occurrence_latency(engine.emissions)
    cell["lat_arrival_mean"] = arrival_summary.mean
    cell["lat_arrival_p99"] = arrival_summary.p99
    cell["lat_occurrence_mean"] = occurrence_summary.mean
    cell["lat_occurrence_p99"] = occurrence_summary.p99
    if registry is not None:
        histogram = registry.get("repro_emission_latency_ts")
        if histogram is not None:
            summary = histogram.summary()
            cell["lat_hist_mean"] = summary["mean"]
            cell["lat_hist_p50"] = summary["p50"]
            cell["lat_hist_p90"] = summary["p90"]
            cell["lat_hist_p99"] = summary["p99"]
        cell["metrics"] = registry.snapshot_state()
    if truth_keys is not None:
        report: QualityReport = compare_keys(
            truth_keys, produced, shed=engine.stats.events_shed
        )
        cell["recall"] = report.recall
        cell["precision"] = report.precision
        cell["missed"] = report.missed
        cell["spurious"] = report.spurious
    return cell


def oracle_truth(pattern: Pattern, events: Sequence[Event]):
    """Identity set of the ground-truth result over *events*."""
    return OfflineOracle(pattern).evaluate_set(events)


def sweep(
    knob_values: Sequence[Any],
    build: Callable[[Any], Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Run *build* per knob value, tagging each row with the knob."""
    rows: List[Dict[str, Any]] = []
    for value in knob_values:
        row = build(value)
        row.setdefault("knob", value)
        rows.append(row)
    return rows
