"""Benchmark harness shared by the scripts in ``benchmarks/``."""

from repro.bench.runner import (
    ENGINE_NAMES,
    make_engine,
    oracle_truth,
    run_cell,
    sweep,
)

__all__ = ["ENGINE_NAMES", "make_engine", "oracle_truth", "run_cell", "sweep"]
