"""repro: out-of-order complex event processing.

A production-quality Python reproduction of *Event Stream Processing
with Out-of-Order Data Arrival* (Li, Liu, Ding, Rundensteiner, Mani —
ICDCS 2007 workshops): sequence pattern queries (``SEQ`` with
predicates, negation, and windows) evaluated natively over event
streams whose arrival order diverges from occurrence order.

Quickstart
----------
>>> from repro import Event, OutOfOrderEngine, parse
>>> query = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 10")
>>> engine = OutOfOrderEngine(query, k=5)
>>> engine.feed(Event("B", 4, {"x": 1}))     # arrives before its A!
[]
>>> engine.feed(Event("A", 2, {"x": 1}))     # late event completes the match
[Match[q](A@2#..., B@4#...)]

See ``README.md`` for the architecture tour and ``DESIGN.md`` for the
paper-to-module map.
"""

from repro.core import (
    AggressiveEngine,
    And,
    Attr,
    Comparison,
    CompositeEventFactory,
    ConfigurationError,
    Const,
    DisorderBoundViolation,
    EmissionRecord,
    Engine,
    EngineStateError,
    EngineStats,
    Eq,
    Event,
    FnPredicate,
    Ge,
    Gt,
    HeartbeatDriver,
    InOrderEngine,
    KleeneBracket,
    LatePolicy,
    Le,
    Lt,
    Match,
    MultiQueryPlan,
    Ne,
    NegationBracket,
    Not,
    OfflineOracle,
    Or,
    OrderedOutputAdapter,
    OutOfOrderEngine,
    ParallelPartitionedEngine,
    ParseError,
    PartitionedEngine,
    Pattern,
    Predicate,
    Punctuation,
    PurgeMode,
    PurgePolicy,
    QueryError,
    QueryPlan,
    QueryRegistry,
    ReorderingEngine,
    ReproError,
    Revocation,
    Step,
    StreamClock,
    StreamElement,
    StreamError,
    detect_partition_key,
    is_event,
    oracle_matches,
    parse,
    seq,
    sort_by_occurrence,
)

__version__ = "1.0.0"

__all__ = [
    "AggressiveEngine",
    "And",
    "Attr",
    "Comparison",
    "CompositeEventFactory",
    "ConfigurationError",
    "Const",
    "DisorderBoundViolation",
    "EmissionRecord",
    "Engine",
    "EngineStateError",
    "EngineStats",
    "Eq",
    "Event",
    "FnPredicate",
    "Ge",
    "Gt",
    "HeartbeatDriver",
    "InOrderEngine",
    "KleeneBracket",
    "LatePolicy",
    "Le",
    "Lt",
    "Match",
    "MultiQueryPlan",
    "Ne",
    "NegationBracket",
    "Not",
    "OfflineOracle",
    "Or",
    "OrderedOutputAdapter",
    "OutOfOrderEngine",
    "ParseError",
    "ParallelPartitionedEngine",
    "PartitionedEngine",
    "Pattern",
    "Predicate",
    "Punctuation",
    "PurgeMode",
    "PurgePolicy",
    "QueryError",
    "QueryPlan",
    "QueryRegistry",
    "ReorderingEngine",
    "ReproError",
    "Revocation",
    "Step",
    "StreamClock",
    "StreamElement",
    "StreamError",
    "__version__",
    "detect_partition_key",
    "is_event",
    "oracle_matches",
    "parse",
    "seq",
    "sort_by_occurrence",
]
