"""Setuptools entry point.

The modern metadata lives in pyproject.toml; this shim exists because
the build environment ships setuptools without the `wheel` package, so
pip must take the legacy `setup.py develop` path for editable installs.
"""

from setuptools import setup

setup()
