"""Intrusion-detection workload (repro.workloads.intrusion)."""

import pytest

from repro import ConfigurationError, OfflineOracle
from repro.workloads import IntrusionGenerator, brute_force_query, exfiltration_query


@pytest.fixture(scope="module")
def trace():
    return IntrusionGenerator(hosts=30, duration=10_000, attackers=4, seed=21).generate()


class TestGenerator:
    def test_deterministic(self):
        first = IntrusionGenerator(seed=1).generate()
        second = IntrusionGenerator(seed=1).generate()
        # eids are globally sequential, so determinism is content-level
        assert [(e.etype, e.ts, e.attrs) for e in first.events] == [
            (e.etype, e.ts, e.attrs) for e in second.events
        ]

    def test_occurrence_order(self, trace):
        timestamps = [e.ts for e in trace.events]
        assert timestamps == sorted(timestamps)

    def test_attacker_ids_disjoint_from_benign(self, trace):
        assert all(src > 30 for src in trace.brute_force_sources)
        assert all(src > 30 for src in trace.exfiltration_sources)
        assert not (trace.brute_force_sources & trace.exfiltration_sources)

    def test_attacker_counts(self, trace):
        assert len(trace.brute_force_sources) == 4
        assert len(trace.exfiltration_sources) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IntrusionGenerator(hosts=0)
        with pytest.raises(ConfigurationError):
            IntrusionGenerator(duration=10)
        with pytest.raises(ConfigurationError):
            IntrusionGenerator(background_rate=-1)
        with pytest.raises(ConfigurationError):
            IntrusionGenerator(attackers=-1)


class TestBruteForceQuery:
    def test_every_attacker_detected(self, trace):
        query = brute_force_query(within=300)
        matches = OfflineOracle(query).evaluate(trace.events)
        detected = {m.events[0]["src"] for m in matches}
        assert trace.brute_force_sources <= detected

    def test_matches_are_single_source(self, trace):
        query = brute_force_query(within=300)
        for match in OfflineOracle(query).evaluate(trace.events):
            sources = {e["src"] for e in match.events}
            assert len(sources) == 1


class TestExfiltrationQuery:
    def test_every_exfiltrator_detected(self, trace):
        query = exfiltration_query(within=500)
        matches = OfflineOracle(query).evaluate(trace.events)
        detected = {m.events[0]["src"] for m in matches}
        assert trace.exfiltration_sources <= detected

    def test_audited_workflows_not_flagged(self, trace):
        query = exfiltration_query(within=500)
        matches = OfflineOracle(query).evaluate(trace.events)
        detected = {m.events[0]["src"] for m in matches}
        # Benign hosts always audit between read and upload, so a benign
        # host can only appear via cross-workflow pairs whose interleaved
        # audit is missing — the generator always audits, so any benign
        # read→upload pair with no audit between them must span two
        # workflows where the later workflow's audit falls outside the
        # pair's bracket.  Verify flagged benign pairs truly lack audits.
        audit_times = {}
        for event in trace.events:
            if event.etype == "AUDIT":
                audit_times.setdefault(event["src"], []).append(event.ts)
        for match in matches:
            read, upload = match.events
            src = read["src"]
            between = [
                t for t in audit_times.get(src, []) if read.ts < t < upload.ts
            ]
            assert between == []
