"""Synthetic parameterised workload (repro.workloads.synthetic)."""

import pytest

from repro import ConfigurationError, OfflineOracle, OutOfOrderEngine
from repro.streams import NoDisorder, RandomDelayModel, measure_disorder
from repro.workloads import SyntheticWorkload, chain_query, rate_sweep_workloads


class TestChainQuery:
    def test_length_and_window(self):
        query = chain_query(4, within=30)
        assert query.length == 4
        assert query.within == 30

    def test_partitioned_adds_equality_chain(self):
        query = chain_query(3, within=10, partitioned=True)
        assert len(query.where) == 2

    def test_unpartitioned_has_no_predicates(self):
        query = chain_query(3, within=10, partitioned=False)
        assert not query.where

    def test_negated_step_inserted(self):
        query = chain_query(3, within=10, negated_step=1)
        assert query.has_negation
        assert query.length == 3
        assert query.negated_types == {"N"}

    def test_trailing_negation(self):
        query = chain_query(2, within=10, negated_step=2)
        bracket = query.negations[0]
        assert bracket.upper is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chain_query(0, within=10)
        with pytest.raises(ConfigurationError):
            chain_query(2, within=0)


class TestWorkload:
    def test_generate_returns_both_orders(self):
        workload = SyntheticWorkload(event_count=500, seed=1)
        ordered, arrival = workload.generate()
        assert len(ordered) == len(arrival) == 500
        assert [e.ts for e in ordered] == sorted(e.ts for e in ordered)

    def test_disorder_applied_to_arrival(self):
        workload = SyntheticWorkload(
            event_count=500, disorder=RandomDelayModel(0.4, 20, seed=2), seed=1
        )
        __, arrival = workload.generate()
        assert measure_disorder(arrival).displaced > 0

    def test_no_disorder_default(self):
        workload = SyntheticWorkload(event_count=200, seed=1)
        __, arrival = workload.generate()
        assert measure_disorder(arrival).displaced == 0

    def test_deterministic(self):
        a = SyntheticWorkload(event_count=300, seed=9).generate()
        b = SyntheticWorkload(event_count=300, seed=9).generate()
        # eids are globally sequential, so determinism is content-level
        assert [(e.etype, e.ts, e.attrs) for e in a[0]] == [
            (e.etype, e.ts, e.attrs) for e in b[0]
        ]

    def test_negatives_included_when_requested(self):
        workload = SyntheticWorkload(
            event_count=1000, negated_step=1, include_negatives=0.3, seed=2
        )
        ordered, __ = workload.generate()
        negatives = sum(1 for e in ordered if e.etype == "N")
        assert 200 < negatives < 400

    def test_partitions_control_selectivity(self):
        def match_count(partitions):
            workload = SyntheticWorkload(
                event_count=800, partitions=partitions, seed=3, within=30
            )
            ordered, __ = workload.generate()
            return len(OfflineOracle(workload.query).evaluate(ordered))

        assert match_count(1) > match_count(20)

    def test_engine_runs_clean_on_workload(self):
        workload = SyntheticWorkload(
            event_count=600,
            disorder=RandomDelayModel(0.3, 15, seed=4),
            seed=5,
        )
        ordered, arrival = workload.generate()
        truth = OfflineOracle(workload.query).evaluate_set(ordered)
        engine = OutOfOrderEngine(workload.query, k=15)
        engine.run(arrival)
        assert engine.result_set() == truth

    def test_describe_mentions_config(self):
        text = SyntheticWorkload(event_count=100, seed=1).describe()
        assert "n=100" in text and "chain=3" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticWorkload(partitions=0)
        with pytest.raises(ConfigurationError):
            SyntheticWorkload(noise_types=-1)
        with pytest.raises(ConfigurationError):
            SyntheticWorkload(include_negatives=2.0)


class TestRateSweep:
    def test_one_workload_per_rate(self):
        sweep = rate_sweep_workloads([0.0, 0.2, 0.5], max_delay=20, event_count=100)
        assert [rate for rate, __ in sweep] == [0.0, 0.2, 0.5]

    def test_zero_rate_uses_no_disorder(self):
        sweep = rate_sweep_workloads([0.0], max_delay=20, event_count=100)
        assert isinstance(sweep[0][1].disorder, NoDisorder)

    def test_rates_produce_increasing_disorder(self):
        sweep = rate_sweep_workloads([0.1, 0.6], max_delay=20, event_count=2000)
        measured = []
        for __, workload in sweep:
            __, arrival = workload.generate()
            measured.append(measure_disorder(arrival).rate)
        assert measured[1] > measured[0]
