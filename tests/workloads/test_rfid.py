"""RFID supply-chain workload (repro.workloads.rfid)."""

import pytest

from repro import ConfigurationError, OfflineOracle, OutOfOrderEngine
from repro.workloads import (
    RfidStoreGenerator,
    detected_tags,
    restock_query,
    shoplifting_query,
)


@pytest.fixture(scope="module")
def trace():
    return RfidStoreGenerator(items=300, shoplift_rate=0.1, seed=11).generate()


class TestGenerator:
    def test_deterministic(self):
        first = RfidStoreGenerator(items=50, seed=3).generate()
        second = RfidStoreGenerator(items=50, seed=3).generate()
        # eids are globally sequential, so determinism is content-level
        assert [(e.etype, e.ts, e.attrs) for e in first.merged] == [
            (e.etype, e.ts, e.attrs) for e in second.merged
        ]
        assert first.shoplifted_tags == second.shoplifted_tags

    def test_streams_in_occurrence_order(self, trace):
        for events in trace.by_reader.values():
            timestamps = [e.ts for e in events]
            assert timestamps == sorted(timestamps)
        merged_ts = [e.ts for e in trace.merged]
        assert merged_ts == sorted(merged_ts)

    def test_merged_is_union_of_readers(self, trace):
        union = sorted(
            e.eid for events in trace.by_reader.values() for e in events
        )
        assert union == sorted(e.eid for e in trace.merged)

    def test_shoplifted_items_have_no_counter_read(self, trace):
        counter_tags = {e["tag"] for e in trace.by_reader["COUNTER_READ"]}
        assert not (trace.shoplifted_tags & counter_tags)

    def test_honest_items_have_counter_between_shelf_and_exit(self, trace):
        shelf = {}
        for event in trace.by_reader["SHELF_READ"]:
            shelf.setdefault(event["tag"], event.ts)
        for event in trace.by_reader["COUNTER_READ"]:
            tag = event["tag"]
            assert shelf[tag] < event.ts

    def test_shoplift_rate_approximate(self):
        trace = RfidStoreGenerator(items=2000, shoplift_rate=0.1, seed=5).generate()
        rate = len(trace.shoplifted_tags) / 2000
        assert 0.07 < rate < 0.13

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"items": -1},
            {"shoplift_rate": 1.5},
            {"shoplift_rate": 0.5, "browse_rate": 0.8},
            {"dwell": 2},
            {"arrival_span": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RfidStoreGenerator(**kwargs)


class TestShopliftingQuery:
    def test_oracle_detects_exactly_ground_truth(self, trace):
        query = shoplifting_query(within=2000)
        matches = OfflineOracle(query).evaluate(trace.merged)
        assert detected_tags(matches) == trace.shoplifted_tags

    def test_one_match_per_shoplifted_item(self, trace):
        query = shoplifting_query(within=2000)
        matches = OfflineOracle(query).evaluate(trace.merged)
        assert len(matches) == len(trace.shoplifted_tags)

    def test_engine_on_ordered_merged_stream(self, trace):
        query = shoplifting_query(within=2000)
        engine = OutOfOrderEngine(query, k=0)
        engine.run(trace.merged)
        assert detected_tags(engine.results) == trace.shoplifted_tags

    def test_window_too_small_misses(self, trace):
        query = shoplifting_query(within=1)
        matches = OfflineOracle(query).evaluate(trace.merged)
        assert len(matches) < len(trace.shoplifted_tags) or not trace.shoplifted_tags


class TestRestockQuery:
    def test_restock_counts_checkout_then_shelf(self, trace):
        query = restock_query(within=2000)
        matches = OfflineOracle(query).evaluate(trace.merged)
        # Browse items reshelve without checkout, so every restock match
        # requires a counter read before a (later) shelf read of the
        # same tag — rare in this generator but structurally possible
        # only for honest items whose tag also browses; verify predicate.
        for match in matches:
            counter, shelf = match.events
            assert counter["tag"] == shelf["tag"]
            assert counter.ts < shelf.ts
