"""Stock-tick workload (repro.workloads.stock)."""

import pytest

from repro import ConfigurationError, OfflineOracle, OutOfOrderEngine
from repro.workloads import StockFeedGenerator, calm_rise_query, rally_query, vshape_query


@pytest.fixture(scope="module")
def feed():
    return StockFeedGenerator(count=2000, seed=13).generate()


class TestGenerator:
    def test_deterministic(self):
        first = StockFeedGenerator(count=100, seed=1).generate()
        second = StockFeedGenerator(count=100, seed=1).generate()
        # eids are globally sequential, so determinism is content-level
        assert [(e.etype, e.ts, e.attrs) for e in first] == [
            (e.etype, e.ts, e.attrs) for e in second
        ]

    def test_occurrence_order(self, feed):
        timestamps = [e.ts for e in feed]
        assert timestamps == sorted(timestamps)

    def test_prices_positive(self, feed):
        assert all(e["price"] >= 1 for e in feed if e.etype == "TICK")

    def test_trades_have_volume(self, feed):
        trades = [e for e in feed if e.etype == "TRADE"]
        assert trades
        assert all(e["volume"] >= 1 for e in trades)

    def test_symbols_from_alphabet(self, feed):
        symbols = {e["sym"] for e in feed}
        assert symbols <= {"IBM", "ORCL", "MSFT", "DELL"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StockFeedGenerator(symbols=[])
        with pytest.raises(ConfigurationError):
            StockFeedGenerator(trade_rate=2.0)
        with pytest.raises(ConfigurationError):
            StockFeedGenerator(volatility=0)
        with pytest.raises(ConfigurationError):
            StockFeedGenerator(count=-1)


class TestQueries:
    def test_rally_matches_are_rising_same_symbol(self, feed):
        matches = OfflineOracle(rally_query(within=30)).evaluate(feed[:600])
        assert matches  # volatility makes rallies common
        for match in matches:
            a, b, c = match.events
            assert a["sym"] == b["sym"] == c["sym"]
            assert a["price"] < b["price"] < c["price"]

    def test_vshape_matches_dip_and_recover(self, feed):
        matches = OfflineOracle(vshape_query(within=40)).evaluate(feed[:600])
        for match in matches:
            a, b, c = match.events
            assert b["price"] < a["price"] < c["price"]

    def test_calm_rise_excludes_large_trades(self, feed):
        query = calm_rise_query(within=30, volume=1000)
        matches = OfflineOracle(query).evaluate(feed[:800])
        trades = [e for e in feed[:800] if e.etype == "TRADE"]
        for match in matches:
            a, c = match.events
            blocking = [
                t
                for t in trades
                if t["sym"] == a["sym"] and t["volume"] > 1000 and a.ts < t.ts < c.ts
            ]
            assert blocking == []

    def test_engine_agrees_with_oracle_on_feed(self, feed):
        query = rally_query(within=25)
        sample = feed[:400]
        truth = OfflineOracle(query).evaluate_set(sample)
        engine = OutOfOrderEngine(query, k=0)
        engine.run(sample)
        assert engine.result_set() == truth
