"""Integration: multi-query registry over simulated deployments + CLI."""

import pytest

from repro import OfflineOracle, OutOfOrderEngine, PartitionedEngine, QueryRegistry
from repro.cli import main as cli_main
from repro.netsim import UniformLatency, simulate_star
from repro.streams import dump_trace
from repro.workloads import (
    RfidStoreGenerator,
    detected_tags,
    restock_query,
    shoplifting_query,
)


class TestRegistryOverNetsim:
    @pytest.fixture(scope="class")
    def deployment(self):
        trace = RfidStoreGenerator(items=200, shoplift_rate=0.08, seed=91).generate()
        simulated = simulate_star(
            trace.by_reader, lambda i: UniformLatency(0, 120), seed=92
        )
        return trace, simulated

    def test_two_store_queries_one_stream(self, deployment):
        trace, simulated = deployment
        k = simulated.observed_disorder_bound()
        shoplift = shoplifting_query(2000, name="shoplift")
        restock = restock_query(2000, name="restock")
        registry = QueryRegistry()
        registry.register(OutOfOrderEngine(shoplift, k=k))
        registry.register(PartitionedEngine(restock, k=k))
        registry.run(simulated.arrival_order)

        assert (
            detected_tags(registry.results("shoplift")) == trace.shoplifted_tags
        )
        restock_truth = OfflineOracle(restock).evaluate_set(trace.merged)
        assert registry.engine("restock").result_set() == restock_truth

    def test_routing_skips_nothing_relevant(self, deployment):
        trace, simulated = deployment
        registry = QueryRegistry()
        registry.register(
            OutOfOrderEngine(shoplifting_query(2000, name="s"), k=5000)
        )
        registry.run(simulated.arrival_order)
        # every reader type is relevant to the shoplifting pattern
        assert registry.events_skipped == 0
        assert registry.routing_ratio() == 1.0


class TestCliOverWorkloadTrace:
    def test_rfid_trace_verified_through_cli(self, tmp_path):
        trace = RfidStoreGenerator(items=120, shoplift_rate=0.1, seed=93).generate()
        simulated = simulate_star(
            trace.by_reader, lambda i: UniformLatency(0, 60), seed=94
        )
        path = tmp_path / "store.jsonl"
        dump_trace(simulated.arrival_order, path)
        k = simulated.observed_disorder_bound()
        code = cli_main(
            [
                "run",
                "--query",
                "PATTERN SEQ(SHELF_READ s, !COUNTER_READ c, EXIT_READ e) "
                "WHERE s.tag == e.tag AND c.tag == s.tag WITHIN 2000",
                "--trace", str(path),
                "--engine", "partitioned",
                "--k", str(k),
                "--verify",
            ]
        )
        assert code == 0

    def test_inorder_engine_fails_verification_on_same_trace(self, tmp_path, capsys):
        trace = RfidStoreGenerator(items=120, shoplift_rate=0.1, seed=93).generate()
        simulated = simulate_star(
            trace.by_reader, lambda i: UniformLatency(0, 60), seed=94
        )
        path = tmp_path / "store.jsonl"
        dump_trace(simulated.arrival_order, path)
        code = cli_main(
            [
                "run",
                "--query",
                "PATTERN SEQ(SHELF_READ s, !COUNTER_READ c, EXIT_READ e) "
                "WHERE s.tag == e.tag AND c.tag == s.tag WITHIN 2000",
                "--trace", str(path),
                "--engine", "inorder",
                "--verify",
            ]
        )
        assert code == 1  # breaks on the disordered trace, and says so
