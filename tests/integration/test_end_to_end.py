"""Integration tests: full pipelines from generator through netsim to engines.

These exercise the exact paths the benchmarks and examples use, pinning
the cross-module contracts: workload → network simulation → disorder →
engine → metrics → quality-vs-oracle.
"""

import pytest

from repro import (
    AggressiveEngine,
    CompositeEventFactory,
    InOrderEngine,
    OfflineOracle,
    OutOfOrderEngine,
    QueryPlan,
    ReorderingEngine,
)
from repro.bench import make_engine, oracle_truth, run_cell
from repro.metrics import compare_keys, summarize_arrival_latency
from repro.netsim import FailureSchedule, UniformLatency, simulate_star
from repro.streams import RandomDelayModel, dump_trace, load_trace
from repro.workloads import (
    IntrusionGenerator,
    RfidStoreGenerator,
    SyntheticWorkload,
    brute_force_query,
    detected_tags,
    exfiltration_query,
    shoplifting_query,
)


class TestRfidPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        trace = RfidStoreGenerator(items=250, shoplift_rate=0.08, seed=31).generate()
        simulated = simulate_star(
            trace.by_reader, lambda i: UniformLatency(0, 120), seed=32
        )
        return trace, simulated

    def test_ooo_engine_detects_all_shoplifting_under_network_disorder(self, setup):
        trace, simulated = setup
        query = shoplifting_query(2000)
        engine = OutOfOrderEngine(query, k=simulated.observed_disorder_bound())
        engine.run(simulated.arrival_order)
        assert detected_tags(engine.results) == trace.shoplifted_tags

    def test_inorder_engine_misbehaves_on_same_input(self, setup):
        trace, simulated = setup
        query = shoplifting_query(2000)
        truth = OfflineOracle(query).evaluate_set(trace.merged)
        engine = InOrderEngine(query)
        engine.run(simulated.arrival_order)
        report = compare_keys(truth, engine.result_set())
        assert not report.exact  # misses and/or false alarms

    def test_reorder_engine_correct_but_slower_to_answer(self, setup):
        trace, simulated = setup
        query = shoplifting_query(2000)
        k = simulated.observed_disorder_bound()
        reorder = ReorderingEngine(query, k=k)
        reorder.run(simulated.arrival_order)
        assert detected_tags(reorder.results) == trace.shoplifted_tags
        ooo = OutOfOrderEngine(query, k=k)
        ooo.run(simulated.arrival_order)
        slow = summarize_arrival_latency(reorder.emissions, simulated.arrival_order)
        fast = summarize_arrival_latency(ooo.emissions, simulated.arrival_order)
        assert fast.mean <= slow.mean

    def test_alert_plan_produces_composite_alarms(self, setup):
        trace, simulated = setup
        query = shoplifting_query(2000)
        plan = QueryPlan(
            OutOfOrderEngine(query, k=simulated.observed_disorder_bound()),
            transformation=CompositeEventFactory(
                "SHOPLIFT_ALERT", {"tag": "s.tag", "exit_ts": "e.ts"}
            ),
        )
        alerts = plan.run(simulated.arrival_order)
        assert {a["tag"] for a in alerts} == trace.shoplifted_tags
        assert all(a.etype == "SHOPLIFT_ALERT" for a in alerts)


class TestIntrusionPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        trace = IntrusionGenerator(hosts=25, duration=8000, attackers=3, seed=41).generate()
        arrival = RandomDelayModel(0.3, 60, seed=42).apply(trace.events)
        return trace, arrival

    def test_brute_force_detection_under_disorder(self, setup):
        trace, arrival = setup
        query = brute_force_query(300)
        engine = OutOfOrderEngine(query, k=60)
        engine.run(arrival)
        detected = {m.events[0]["src"] for m in engine.results}
        assert trace.brute_force_sources <= detected
        truth = OfflineOracle(query).evaluate_set(trace.events)
        assert engine.result_set() == truth

    def test_exfiltration_negation_under_disorder(self, setup):
        trace, arrival = setup
        query = exfiltration_query(500)
        engine = OutOfOrderEngine(query, k=60)
        engine.run(arrival)
        truth = OfflineOracle(query).evaluate_set(trace.events)
        assert engine.result_set() == truth
        detected = {m.events[0]["src"] for m in engine.results}
        assert trace.exfiltration_sources <= detected

    def test_aggressive_alerts_faster_with_net_parity(self, setup):
        trace, arrival = setup
        query = exfiltration_query(500)
        aggressive = AggressiveEngine(query, k=60)
        aggressive.run(arrival)
        truth = OfflineOracle(query).evaluate_set(trace.events)
        assert aggressive.net_result_set() == truth


class TestFailureBurstPipeline:
    def test_recovery_burst_handled(self):
        trace = RfidStoreGenerator(items=150, seed=51, arrival_span=20_000).generate()
        failures = FailureSchedule()
        failures.add_outage("COUNTER_READ", 5_000, 9_000)  # counter node down
        simulated = simulate_star(
            trace.by_reader, lambda i: UniformLatency(0, 10), failures=failures, seed=52
        )
        query = shoplifting_query(2000)
        k = simulated.observed_disorder_bound()
        assert k >= 3000  # the outage dominates disorder
        engine = OutOfOrderEngine(query, k=k)
        engine.run(simulated.arrival_order)
        assert detected_tags(engine.results) == trace.shoplifted_tags


class TestBenchRunnerHarness:
    @pytest.fixture(scope="class")
    def workload(self):
        return SyntheticWorkload(
            event_count=1500, disorder=RandomDelayModel(0.25, 30, seed=61), seed=62
        )

    def test_run_cell_reports_quality_and_latency(self, workload):
        ordered, arrival = workload.generate()
        truth = oracle_truth(workload.query, ordered)
        cell = run_cell(make_engine("ooo", workload.query, k=30), arrival, truth)
        assert cell["recall"] == 1.0
        assert cell["precision"] == 1.0
        assert cell["events"] == 1500
        assert cell["seconds"] > 0

    def test_engine_registry_covers_all_strategies(self, workload):
        ordered, arrival = workload.generate()
        truth = oracle_truth(workload.query, ordered)
        recalls = {}
        for name in ("ooo", "inorder", "reorder", "aggressive"):
            cell = run_cell(make_engine(name, workload.query, k=30), arrival, truth)
            recalls[name] = cell["recall"]
        assert recalls["ooo"] == recalls["reorder"] == recalls["aggressive"] == 1.0
        assert recalls["inorder"] < 1.0

    def test_unknown_engine_name_rejected(self, workload):
        from repro import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_engine("nope", workload.query)
        with pytest.raises(ConfigurationError):
            make_engine("reorder", workload.query, k=None)


class TestTraceReplayRegression:
    def test_recorded_pipeline_is_replayable(self, tmp_path):
        workload = SyntheticWorkload(
            event_count=400, disorder=RandomDelayModel(0.3, 20, seed=71), seed=72
        )
        __, arrival = workload.generate()
        path = tmp_path / "arrival.jsonl"
        dump_trace(arrival, path)
        first = OutOfOrderEngine(workload.query, k=20)
        first.run(arrival)
        second = OutOfOrderEngine(workload.query, k=20)
        second.run(load_trace(path))
        assert first.result_set() == second.result_set()
        assert first.stats.as_dict() == second.stats.as_dict()
