"""Golden regression fixture: committed trace, committed expected results.

``trace.jsonl`` is a recorded out-of-order arrival stream (1500 events,
30% disorder, delays ≤ 25); ``expected.json`` holds the oracle result
keys for three query shapes (chain join, negation, Kleene), computed
when the fixture was created.  These tests re-evaluate the trace with
the current code and demand byte-identical result identities — any
semantic drift in parser, pattern compilation, oracle, or any engine
shows up as a diff against history, independent of the generators.
"""

import json
from pathlib import Path

import pytest

from repro import (
    AggressiveEngine,
    OfflineOracle,
    OutOfOrderEngine,
    ParallelPartitionedEngine,
    PartitionedEngine,
    ReorderingEngine,
    parse,
)
from repro.streams import load_trace

GOLDEN = Path(__file__).parent


@pytest.fixture(scope="module")
def fixture():
    arrival = load_trace(GOLDEN / "trace.jsonl")
    expected = json.loads((GOLDEN / "expected.json").read_text())
    return arrival, expected


def _expected_keys(expected, name):
    keys = set()
    for key in expected["queries"][name]["keys"]:
        qname, anchors, collections = key
        keys.add(
            (
                qname,
                tuple(anchors),
                tuple((var, tuple(eids)) for var, eids in collections),
            )
        )
    return keys


@pytest.mark.parametrize("name", ["chain", "negation", "kleene"])
class TestGoldenResults:
    def test_oracle_reproduces_committed_results(self, fixture, name):
        arrival, expected = fixture
        query = parse(expected["queries"][name]["text"], name=name)
        keys = OfflineOracle(query).evaluate_set(arrival)
        assert keys == _expected_keys(expected, name)
        assert len(keys) == expected["queries"][name]["count"]

    def test_ooo_engine_reproduces_committed_results(self, fixture, name):
        arrival, expected = fixture
        query = parse(expected["queries"][name]["text"], name=name)
        engine = OutOfOrderEngine(query, k=expected["k"])
        engine.run(list(arrival))
        assert engine.result_set() == _expected_keys(expected, name)

    def test_reorder_engine_reproduces_committed_results(self, fixture, name):
        arrival, expected = fixture
        query = parse(expected["queries"][name]["text"], name=name)
        engine = ReorderingEngine(query, k=expected["k"])
        engine.run(list(arrival))
        assert engine.result_set() == _expected_keys(expected, name)

    def test_aggressive_engine_reproduces_committed_results(self, fixture, name):
        arrival, expected = fixture
        query = parse(expected["queries"][name]["text"], name=name)
        engine = AggressiveEngine(query, k=expected["k"])
        engine.run(list(arrival))
        assert engine.net_result_set() == _expected_keys(expected, name)

    def test_partitioned_engine_reproduces_committed_results(self, fixture, name):
        arrival, expected = fixture
        query = parse(expected["queries"][name]["text"], name=name)
        engine = PartitionedEngine(query, k=expected["k"])
        engine.run(list(arrival))
        assert engine.result_set() == _expected_keys(expected, name)

    def test_parallel_serial_fallback_is_byte_identical(self, fixture, name):
        # workers=1 must be indistinguishable from PartitionedEngine:
        # same matches in the same emission order, same counters.
        arrival, expected = fixture
        query = parse(expected["queries"][name]["text"], name=name)
        serial = PartitionedEngine(query, k=expected["k"])
        serial.run(list(arrival))
        parallel = ParallelPartitionedEngine(query, k=expected["k"], workers=1)
        parallel.run(list(arrival))
        assert [m.key() for m in parallel.results] == [m.key() for m in serial.results]
        assert [
            (r.emitted_seq, r.emitted_clock) for r in parallel.emissions
        ] == [(r.emitted_seq, r.emitted_clock) for r in serial.emissions]
        assert parallel.stats.as_dict() == serial.stats.as_dict()

    def test_parallel_pool_reproduces_committed_results(self, fixture, name):
        arrival, expected = fixture
        query = parse(expected["queries"][name]["text"], name=name)
        engine = ParallelPartitionedEngine(query, k=expected["k"], workers=2)
        engine.run(list(arrival))
        assert engine.result_set() == _expected_keys(expected, name)
