"""Shared test helpers (importable from every test module).

``tests/conftest.py`` puts this directory on ``sys.path``, so tests do
``from helpers import make_events`` regardless of their subdirectory.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro import Event, OfflineOracle, OutOfOrderEngine, Pattern


def make_events(spec: str, attr: str = "x") -> List[Event]:
    """Compact trace literal: ``"A1:0 B3:1 C5:0"`` → events.

    Each token is ``TYPE<ts>`` optionally followed by ``:<attr value>``
    (integer).  Types are words, timestamps integers.
    """
    events = []
    for token in spec.split():
        if ":" in token:
            head, value = token.split(":")
            attrs = {attr: int(value)}
        else:
            head, attrs = token, {}
        index = 0
        while index < len(head) and not head[index].isdigit():
            index += 1
        events.append(Event(head[:index], int(head[index:]), attrs))
    return events


def engine_vs_oracle(
    pattern: Pattern,
    arrival: List[Event],
    k: Optional[int] = None,
    **engine_kwargs,
) -> OutOfOrderEngine:
    """Run the OOO engine on *arrival* and assert it matches the oracle."""
    truth = OfflineOracle(pattern).evaluate_set(arrival)
    engine = OutOfOrderEngine(pattern, k=k, **engine_kwargs)
    engine.run(arrival)
    assert engine.result_set() == truth, (
        f"engine {sorted(engine.result_set())} != oracle {sorted(truth)}"
    )
    return engine


def bounded_shuffle(events: List[Event], k: int, seed: int = 0) -> List[Event]:
    """An arrival permutation guaranteed to respect disorder bound *k*.

    Sorts by ``ts + uniform(0, k)``: an event's delay past the max-ts
    prefix is at most k, so an engine with bound k never sees a late
    event.
    """
    rng = random.Random(seed)
    keyed = [(e.ts + rng.randint(0, k), i, e) for i, e in enumerate(events)]
    keyed.sort()
    return [e for __, __, e in keyed]
