"""Event sources (repro.streams.source)."""

import pytest

from repro import ConfigurationError, Event
from repro.streams import PoissonSource, ScriptedSource, SyntheticSource


class TestSyntheticSource:
    def test_count_and_order(self):
        source = SyntheticSource(["A", "B"], count=100, seed=1)
        events = list(source.events())
        assert len(events) == 100
        timestamps = [e.ts for e in events]
        assert timestamps == sorted(timestamps)

    def test_deterministic_under_seed(self):
        first = [
            (e.etype, e.ts, e.attrs)
            for e in SyntheticSource(["A", "B"], 50, seed=7).events()
        ]
        second = [
            (e.etype, e.ts, e.attrs)
            for e in SyntheticSource(["A", "B"], 50, seed=7).events()
        ]
        assert first == second

    def test_different_seeds_differ(self):
        first = [e.etype for e in SyntheticSource(list("ABCD"), 50, seed=1).events()]
        second = [e.etype for e in SyntheticSource(list("ABCD"), 50, seed=2).events()]
        assert first != second

    def test_types_restricted_to_alphabet(self):
        events = SyntheticSource(["A", "B"], 200, seed=3).take(200)
        assert {e.etype for e in events} == {"A", "B"}

    def test_interval_spacing(self):
        events = SyntheticSource(["A"], 10, seed=1, interval=5).take(10)
        gaps = [b.ts - a.ts for a, b in zip(events, events[1:])]
        assert all(gap == 5 for gap in gaps)

    def test_jitter_allows_ties(self):
        events = SyntheticSource(["A"], 300, seed=1, interval=1, jitter=1).take(300)
        gaps = [b.ts - a.ts for a, b in zip(events, events[1:])]
        assert 0 in gaps  # ties exercised
        assert all(0 <= gap <= 2 for gap in gaps)

    def test_weights_bias_selection(self):
        events = SyntheticSource(
            ["A", "B"], 1000, seed=1, weights=[0.9, 0.1]
        ).take(1000)
        a_count = sum(1 for e in events if e.etype == "A")
        assert a_count > 700

    def test_custom_attr_maker(self):
        source = SyntheticSource(
            ["A"], 5, seed=1, attr_maker=lambda rng, ts: {"double": ts * 2}
        )
        for event in source.events():
            assert event["double"] == event.ts * 2

    def test_take_limits(self):
        assert len(SyntheticSource(["A"], 100, seed=1).take(7)) == 7

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"types": [], "count": 5},
            {"types": ["A"], "count": -1},
            {"types": ["A"], "count": 5, "interval": -1},
            {"types": ["A"], "count": 5, "weights": [0.5, 0.5]},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SyntheticSource(**kwargs)


class TestScriptedSource:
    def test_accepts_tuples_and_events(self):
        source = ScriptedSource([("A", 1), ("B", 2, {"x": 1}), Event("C", 3)])
        events = list(source.events())
        assert [e.etype for e in events] == ["A", "B", "C"]
        assert events[1]["x"] == 1

    def test_rejects_out_of_order_script(self):
        with pytest.raises(ConfigurationError):
            ScriptedSource([("A", 5), ("B", 3)])

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            ScriptedSource(["A1"])

    def test_len(self):
        assert len(ScriptedSource([("A", 1), ("B", 2)])) == 2


class TestPoissonSource:
    def test_order_and_count(self):
        events = PoissonSource(["A", "B"], 200, rate=0.5, seed=2).take(200)
        assert len(events) == 200
        timestamps = [e.ts for e in events]
        assert timestamps == sorted(timestamps)

    def test_rate_controls_density(self):
        sparse = PoissonSource(["A"], 500, rate=0.1, seed=1).take(500)
        dense = PoissonSource(["A"], 500, rate=2.0, seed=1).take(500)
        assert sparse[-1].ts > dense[-1].ts

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonSource(["A"], 10, rate=0)
        with pytest.raises(ConfigurationError):
            PoissonSource([], 10, rate=1)
