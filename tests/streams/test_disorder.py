"""Disorder models (repro.streams.disorder)."""

import pytest

from repro import ConfigurationError, Event
from repro.streams import (
    BurstDropoutModel,
    NoDisorder,
    RandomDelayModel,
    SwapModel,
    SyntheticSource,
    measure_disorder,
    required_k,
)


@pytest.fixture
def ordered_events():
    return SyntheticSource(["A", "B", "C"], 500, seed=5).take(500)


class TestMeasurement:
    def test_ordered_stream_has_zero_disorder(self, ordered_events):
        stats = measure_disorder(ordered_events)
        assert stats.rate == 0.0
        assert stats.max_delay == 0

    def test_single_inversion_measured(self):
        events = [Event("A", 1), Event("A", 10), Event("A", 4)]
        stats = measure_disorder(events)
        assert stats.displaced == 1
        assert stats.max_delay == 6

    def test_rate_fraction(self):
        events = [Event("A", 2), Event("A", 1), Event("A", 3), Event("A", 4)]
        assert measure_disorder(events).rate == 0.25

    def test_ties_not_displaced(self):
        events = [Event("A", 1), Event("A", 1), Event("A", 2)]
        assert measure_disorder(events).displaced == 0

    def test_empty_stream(self):
        stats = measure_disorder([])
        assert stats.total == 0 and stats.rate == 0.0

    def test_required_k_equals_max_delay(self):
        events = [Event("A", 10), Event("A", 3), Event("A", 12), Event("A", 5)]
        assert required_k(events) == 7


class TestModelInvariants:
    """Every model must preserve the event multiset exactly."""

    @pytest.mark.parametrize(
        "model",
        [
            NoDisorder(),
            RandomDelayModel(0.3, 20, seed=1),
            RandomDelayModel(1.0, 5, seed=2),
            BurstDropoutModel(0.02, 25, seed=3),
            SwapModel(10, seed=4),
        ],
    )
    def test_permutation_only(self, ordered_events, model):
        arrival = model.apply(ordered_events)
        assert sorted(e.eid for e in arrival) == sorted(e.eid for e in ordered_events)
        assert len(arrival) == len(ordered_events)

    @pytest.mark.parametrize(
        "model",
        [RandomDelayModel(0.3, 20, seed=1), BurstDropoutModel(0.02, 25, seed=3), SwapModel(8, seed=2)],
    )
    def test_deterministic(self, ordered_events, model):
        first = [e.eid for e in model.apply(ordered_events)]
        second = [e.eid for e in model.apply(ordered_events)]
        assert first == second


class TestRandomDelayModel:
    def test_zero_rate_is_identity(self, ordered_events):
        arrival = RandomDelayModel(0.0, 50, seed=1).apply(ordered_events)
        assert [e.eid for e in arrival] == [e.eid for e in ordered_events]

    def test_delay_bounded_by_max_delay(self, ordered_events):
        model = RandomDelayModel(0.5, 15, seed=2)
        arrival = model.apply(ordered_events)
        assert required_k(arrival) <= 15

    def test_higher_rate_more_disorder(self, ordered_events):
        low = measure_disorder(RandomDelayModel(0.1, 20, seed=3).apply(ordered_events))
        high = measure_disorder(RandomDelayModel(0.6, 20, seed=3).apply(ordered_events))
        assert high.rate > low.rate

    def test_arrange_reports_stats(self, ordered_events):
        arrival, stats = RandomDelayModel(0.3, 10, seed=4).arrange(ordered_events)
        assert stats.total == len(arrival)
        assert stats.rate > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomDelayModel(1.5, 10)
        with pytest.raises(ConfigurationError):
            RandomDelayModel(0.5, -1)


class TestBurstDropoutModel:
    def test_produces_bursty_disorder(self, ordered_events):
        model = BurstDropoutModel(0.05, 30, seed=5)
        arrival, stats = model.arrange(ordered_events)
        assert stats.displaced > 0

    def test_zero_fail_rate_is_identity(self, ordered_events):
        arrival = BurstDropoutModel(0.0, 30, seed=1).apply(ordered_events)
        assert [e.eid for e in arrival] == [e.eid for e in ordered_events]

    def test_outage_length_bounds_burst_delay(self, ordered_events):
        # One event per unit: displacement bounded by outage span.
        arrival = BurstDropoutModel(0.05, 10, affected=1.0, seed=6).apply(ordered_events)
        # affected=1.0 buffers everything during outage -> order preserved
        assert measure_disorder(arrival).displaced == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstDropoutModel(2.0, 10)
        with pytest.raises(ConfigurationError):
            BurstDropoutModel(0.1, 0)
        with pytest.raises(ConfigurationError):
            BurstDropoutModel(0.1, 10, affected=-0.5)


class TestSwapModel:
    def test_block_one_is_identity(self, ordered_events):
        arrival = SwapModel(1, seed=1).apply(ordered_events)
        assert [e.eid for e in arrival] == [e.eid for e in ordered_events]

    def test_disorder_confined_to_blocks(self, ordered_events):
        model = SwapModel(5, seed=2)
        arrival = model.apply(ordered_events)
        # Max displacement bounded by max ts-span within any 5-block.
        spans = []
        for start in range(0, len(ordered_events), 5):
            chunk = ordered_events[start : start + 5]
            spans.append(chunk[-1].ts - chunk[0].ts)
        assert required_k(arrival) <= max(spans)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SwapModel(0)
