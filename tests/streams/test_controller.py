"""Quality-driven adaptive-K controller (repro.streams.controller).

The soundness contract under test: K changes *only* at punctuation
boundaries (never mid-epoch), the engine's horizon stays monotone
across re-freezes in both directions, and the decision policy follows
the documented rules — grow immediately, decay damped, never shrink
past the quality floor, speculation hysteresis on the retraction rate.
"""

import random

import pytest

from repro import ConfigurationError, Event, OutOfOrderEngine, Punctuation, parse
from repro.core.stats import EngineStats
from repro.streams import AdaptiveKController, ControllerDecision
from helpers import bounded_shuffle

PLAIN = parse("PATTERN SEQ(A a, B b) WITHIN 10")
NEG = parse(
    "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 20"
)


def _stats(events=100, late=0, speculated=0, retracted=0):
    stats = EngineStats()
    stats.events_in = events
    stats.late_dropped = late
    stats.speculative_emitted = speculated
    stats.retractions_issued = retracted
    return stats


def _controller(**overrides):
    config = dict(quality_target=0.9, window=8, min_epoch_events=1)
    config.update(overrides)
    return AdaptiveKController(**config)


def _observe_delays(controller, delays, start=1000):
    controller.observe(Event("A", start))
    for delay in delays:
        controller.observe(Event("A", start - delay))


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            AdaptiveKController(min_k=-1)
        with pytest.raises(ConfigurationError):
            AdaptiveKController(min_k=10, max_k=5)
        with pytest.raises(ConfigurationError):
            AdaptiveKController(retraction_budget=1.5)
        with pytest.raises(ConfigurationError):
            AdaptiveKController(min_epoch_events=0)
        with pytest.raises(ConfigurationError):
            AdaptiveKController(quality_target=0.0)  # via QuantileK

    def test_engine_rejects_non_controller(self):
        with pytest.raises(ConfigurationError):
            OutOfOrderEngine(PLAIN, k=5, controller=object())


class TestPolicy:
    def test_grow_is_immediate(self):
        controller = _controller()
        _observe_delays(controller, [40] * 8)
        decision = controller.refreeze(10, 5, _stats())
        assert decision.reason == "grow"
        assert decision.k == controller.recommended_k() > 5

    def test_decay_is_damped_to_half(self):
        controller = _controller()
        _observe_delays(controller, [0] * 8)  # estimator says ~0
        decision = controller.refreeze(10, 100, _stats())
        assert decision.reason == "decay"
        assert decision.k == 50  # at most halves per epoch

    def test_decay_stops_at_estimate(self):
        controller = _controller(margin=0)
        _observe_delays(controller, [30] * 8)
        decision = controller.refreeze(10, 40, _stats())
        assert decision.reason == "decay"
        assert decision.k == 30  # target above half, so damping is moot

    def test_hold_when_at_target(self):
        controller = _controller(margin=0)
        _observe_delays(controller, [30] * 8)
        decision = controller.refreeze(10, 30, _stats())
        assert decision.reason == "hold"
        assert decision.k == 30

    def test_quality_floor_blocks_shrink(self):
        controller = _controller()  # allowance: 10% late
        _observe_delays(controller, [0] * 8)
        decision = controller.refreeze(10, 100, _stats(events=100, late=20))
        assert decision.reason == "quality-floor"
        assert decision.k == 100

    def test_quality_floor_does_not_block_growth(self):
        controller = _controller()
        _observe_delays(controller, [200] * 8)
        decision = controller.refreeze(10, 5, _stats(events=100, late=20))
        assert decision.reason == "grow"
        assert decision.k > 5

    def test_min_max_clamp(self):
        controller = _controller(min_k=10, max_k=20)
        assert controller.recommended_k() == 10
        _observe_delays(controller, [500] * 8)
        assert controller.recommended_k() == 20

    def test_small_epoch_skipped_without_rebasing(self):
        controller = _controller(min_epoch_events=50)
        assert controller.refreeze(5, 10, _stats(events=30)) is None
        assert controller.history == []
        # The skipped epoch merges into the next: deltas still span both.
        decision = controller.refreeze(10, 10, _stats(events=60, late=12))
        assert decision is not None
        assert decision.reason == "quality-floor"  # 12/60 > 10% allowance

    def test_retraction_hysteresis(self):
        controller = _controller(retraction_budget=0.2)
        _observe_delays(controller, [5] * 8)
        decision = controller.refreeze(5, 5, _stats(speculated=100, retracted=30))
        assert decision.speculate is False  # 30% > budget
        # Between budget/2 and budget: mode sticks (no flapping).
        decision = controller.refreeze(
            10, 5, _stats(events=200, speculated=200, retracted=45)
        )
        assert decision.speculate is False  # epoch rate 15% in (10%, 20%]
        decision = controller.refreeze(
            15, 5, _stats(events=300, speculated=400, retracted=55)
        )
        assert decision.speculate is True  # epoch rate 5% <= budget/2

    def test_history_is_recorded_and_bounded(self):
        from repro.streams.controller import HISTORY_LIMIT

        controller = _controller()
        _observe_delays(controller, [5] * 8)
        events = 0
        for boundary in range(HISTORY_LIMIT + 10):
            events += 10
            controller.refreeze(boundary, 5, _stats(events=events))
        assert len(controller.history) == HISTORY_LIMIT
        assert isinstance(controller.history[-1], ControllerDecision)


class TestIdentity:
    def test_clone_copies_config_not_state(self):
        controller = _controller(min_k=3, max_k=99, retraction_budget=0.25)
        _observe_delays(controller, [50] * 8)
        controller.refreeze(5, 5, _stats())
        clone = controller.clone()
        assert clone.fingerprint() == controller.fingerprint()
        assert clone.history == [] and clone.adjustments == 0
        assert clone.recommended_k() == clone.min_k  # fresh estimator

    def test_engine_clones_controller_at_attachment(self):
        controller = _controller()
        engine = OutOfOrderEngine(PLAIN, k=5, controller=controller)
        assert engine._controller is not controller
        assert engine._controller.fingerprint() == controller.fingerprint()

    def test_snapshot_roundtrip(self):
        controller = _controller(retraction_budget=0.2)
        _observe_delays(controller, [7, 3, 12])
        controller.refreeze(5, 5, _stats(speculated=10, retracted=9))
        state = controller.snapshot_state()
        restored = controller.clone()
        restored.restore_state(state)
        assert restored.recommended_k() == controller.recommended_k()
        assert restored.speculate == controller.speculate is False
        assert restored.history == controller.history
        assert restored.adjustments == controller.adjustments
        # Baselines survive, so the next epoch's deltas are unchanged.
        a = restored.refreeze(9, 5, _stats(events=200))
        b = controller.refreeze(9, 5, _stats(events=200))
        assert a == b


class TestEngineIntegration:
    def _trace(self, n=400, k=12, seed=3):
        rng = random.Random(seed)
        events = [
            Event(rng.choice("ABCD"), ts, {"x": rng.randint(0, 2)})
            for ts in range(1, n + 1)
        ]
        arrival = bounded_shuffle(events, k=k, seed=seed + 1)
        elements = []
        for index, event in enumerate(arrival):
            elements.append(event)
            if (index + 1) % 64 == 0:
                remaining = arrival[index + 1 :]
                horizon = min((e.ts for e in remaining), default=event.ts + 1) - 1
                if horizon >= 0:
                    elements.append(Punctuation(horizon))
        return elements

    def test_k_changes_only_at_punctuation_boundaries(self):
        controller = AdaptiveKController(
            quality_target=0.9, window=64, initial_k=40, min_epoch_events=16
        )
        engine = OutOfOrderEngine(NEG, k=40, controller=controller)
        changes = []
        previous = engine.clock.k
        for element in self._trace():
            engine.feed(element)
            if engine.clock.k != previous:
                changes.append((type(element).__name__, previous, engine.clock.k))
                previous = engine.clock.k
        engine.close()
        assert changes, "controller never moved K"
        assert all(kind == "Punctuation" for kind, __, __ in changes)
        assert engine._controller.adjustments == len(changes)

    def test_horizon_monotone_across_refreezes(self):
        controller = AdaptiveKController(
            quality_target=0.5, window=32, initial_k=60, min_epoch_events=8
        )
        engine = OutOfOrderEngine(NEG, k=60, controller=controller)
        horizons = []
        for element in self._trace(seed=7):
            engine.feed(element)
            horizons.append(engine.clock.horizon())
        assert all(b >= a for a, b in zip(horizons, horizons[1:]))
        # The aggressive quantile actually shrank the bound en route.
        assert any(d.reason == "decay" for d in engine._controller.history)

    def test_controller_without_k_introduces_bound(self):
        controller = AdaptiveKController(initial_k=15)
        engine = OutOfOrderEngine(PLAIN, controller=controller)
        assert engine.clock.k == 15

    def test_controller_toggles_speculation_flag(self):
        controller = AdaptiveKController(
            quality_target=0.9, retraction_budget=0.0, min_epoch_events=1
        )
        engine = OutOfOrderEngine(NEG, k=6, speculative=True, controller=controller)
        engine.feed(Event("A", 10, {"x": 1}))
        engine.feed(Event("C", 12, {"x": 1}))  # speculates
        engine.feed(Event("B", 11, {"x": 1}))
        engine.feed(Punctuation(12))  # seals (and retracts), then refreezes
        assert engine.stats.retractions_issued == 1
        # Any retraction exceeds a zero budget: mode flipped pessimistic.
        assert engine.speculation.enabled is False
        engine.close()

    def test_snapshot_roundtrip_with_controller(self):
        def build():
            return OutOfOrderEngine(
                NEG,
                k=40,
                speculative=True,
                controller=AdaptiveKController(
                    quality_target=0.9, window=64, initial_k=40, min_epoch_events=16
                ),
            )

        stream = self._trace(seed=11)
        straight = build()
        for element in stream:
            straight.feed(element)
        straight.close()

        interrupted = build()
        cut = len(stream) // 2
        for element in stream[:cut]:
            interrupted.feed(element)
        blob = interrupted.snapshot()
        resumed = build()
        resumed.restore(blob)
        assert resumed.clock.k == interrupted.clock.k
        for element in stream[cut:]:
            resumed.feed(element)
        resumed.close()

        assert [m.key() for m in resumed.results] == [
            m.key() for m in straight.results
        ]
        assert resumed.clock.k == straight.clock.k
        assert resumed._controller.history == straight._controller.history
        assert resumed.stats.as_dict() == straight.stats.as_dict()

    def test_snapshot_refuses_controller_mismatch(self):
        from repro import SnapshotError

        with_controller = OutOfOrderEngine(
            PLAIN, k=5, controller=AdaptiveKController()
        )
        with_controller.feed(Event("A", 1))
        blob = with_controller.snapshot()
        plain = OutOfOrderEngine(PLAIN, k=5)
        with pytest.raises(SnapshotError):
            plain.restore(blob)
