"""Spill-to-disk reorder buffering (repro.streams.spill)."""

import random

import pytest

from repro import ConfigurationError, Event, OfflineOracle, ReorderingEngine, StreamError, parse
from repro.streams import BurstDropoutModel, SyntheticSource
from repro.streams.spill import SpillingReorderBuffer
from repro.faultinject import corrupt_event
from helpers import bounded_shuffle


@pytest.fixture
def events():
    return SyntheticSource(["A", "B"], 500, seed=1).take(500)


class TestBufferContract:
    def test_release_returns_sorted_ripe_events(self, events):
        buffer = SpillingReorderBuffer(memory_limit=50, spill_batch=20)
        arrival = bounded_shuffle(events, k=30, seed=2)
        for event in arrival:
            buffer.push(event)
        released = buffer.release(horizon=250)
        timestamps = [e.ts for e in released]
        assert timestamps == sorted(timestamps)
        assert all(ts <= 250 for ts in timestamps)
        buffer.close()

    def test_nothing_lost_across_spill_boundary(self, events):
        buffer = SpillingReorderBuffer(memory_limit=10, spill_batch=5)
        for event in events:
            buffer.push(event)
        assert len(buffer) == 500
        assert buffer.disk_size() > 0  # definitely spilled
        drained = buffer.drain()
        assert sorted(e.eid for e in drained) == sorted(e.eid for e in events)
        buffer.close()

    def test_matches_plain_heap_semantics(self, events):
        arrival = bounded_shuffle(events, k=40, seed=3)
        spilling = SpillingReorderBuffer(memory_limit=20, spill_batch=10)
        plain: list = []
        import heapq

        spilled_out, plain_out = [], []
        for event in arrival:
            spilling.push(event)
            heapq.heappush(plain, (event.ts, event.eid, event))
            horizon = event.ts - 45
            spilled_out.extend(spilling.release(horizon))
            while plain and plain[0][0] <= horizon:
                plain_out.append(heapq.heappop(plain)[2])
        spilled_out.extend(spilling.drain())
        while plain:
            plain_out.append(heapq.heappop(plain)[2])
        assert [e.eid for e in spilled_out] == [e.eid for e in plain_out]
        spilling.close()

    def test_segments_deleted_after_consumption(self, events, tmp_path):
        buffer = SpillingReorderBuffer(
            memory_limit=10, spill_batch=10, directory=tmp_path
        )
        for event in events[:200]:
            buffer.push(event)
        assert list(tmp_path.glob("run-*.jsonl"))
        buffer.drain()
        assert not list(tmp_path.glob("run-*.jsonl"))
        buffer.close()

    def test_spill_stats(self, events):
        buffer = SpillingReorderBuffer(memory_limit=10, spill_batch=10)
        for event in events[:100]:
            buffer.push(event)
        assert buffer.spilled_events >= 80
        assert buffer.spill_segments == buffer.spilled_events // 10
        buffer.close()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpillingReorderBuffer(memory_limit=0)
        with pytest.raises(ConfigurationError):
            SpillingReorderBuffer(spill_batch=0)

    def test_pending_unflushed_batch_still_releasable(self):
        buffer = SpillingReorderBuffer(memory_limit=2, spill_batch=1000)
        for ts in (5, 6, 1, 2):  # 1 and 2 land in the pending batch
            buffer.push(Event("A", ts))
        released = buffer.release(horizon=3)
        assert [e.ts for e in released] == [1, 2]
        buffer.close()


class TestEngineIntegration:
    def test_spilling_reorder_engine_is_exact(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 20")
        events = SyntheticSource(["A", "B", "C"], 800, seed=4).take(800)
        arrival = BurstDropoutModel(0.02, 60, seed=5).apply(events)
        from repro.streams import required_k

        k = required_k(arrival)
        truth = OfflineOracle(pattern).evaluate_set(events)
        engine = ReorderingEngine(pattern, k=k, memory_limit=30)
        engine.run(arrival)
        assert engine.result_set() == truth
        assert engine.buffer_memory_size() == 0

    def test_memory_tier_respects_limit(self):
        pattern = parse("PATTERN SEQ(A a, B b) WITHIN 10")
        engine = ReorderingEngine(pattern, k=10_000, memory_limit=25)
        for ts in range(1, 500):
            engine.feed(Event("Z", ts))
        # Everything buffered (huge K), but memory tier stays bounded by
        # limit + one unflushed spill batch.
        assert engine.buffer_size() > 400
        assert engine.buffer_memory_size() <= 25 + 1000

    def test_plain_engine_unaffected_by_default(self):
        pattern = parse("PATTERN SEQ(A a, B b) WITHIN 10")
        engine = ReorderingEngine(pattern, k=5)
        assert engine._spill is None


class TestLifecycle:
    def test_context_manager_cleans_up(self, events, tmp_path):
        with SpillingReorderBuffer(
            memory_limit=10, spill_batch=10, directory=tmp_path
        ) as buffer:
            for event in events[:200]:
                buffer.push(event)
            assert list(tmp_path.glob("run-*.jsonl"))
        assert not list(tmp_path.glob("run-*.jsonl"))

    def test_no_files_leak_when_body_raises(self, events, tmp_path):
        with pytest.raises(RuntimeError):
            with SpillingReorderBuffer(
                memory_limit=10, spill_batch=10, directory=tmp_path
            ) as buffer:
                for event in events[:200]:
                    buffer.push(event)
                raise RuntimeError("consumer died mid-stream")
        assert not list(tmp_path.glob("run-*.jsonl"))

    def test_owned_tempdir_removed_on_exit(self, events):
        with SpillingReorderBuffer(memory_limit=10, spill_batch=10) as buffer:
            for event in events[:100]:
                buffer.push(event)
            directory = buffer.directory
            assert directory.exists()
        assert not directory.exists()

    def test_close_idempotent(self, events, tmp_path):
        buffer = SpillingReorderBuffer(
            memory_limit=10, spill_batch=10, directory=tmp_path
        )
        for event in events[:100]:
            buffer.push(event)
        buffer.close()
        buffer.close()  # second close is a no-op, not an error
        assert not list(tmp_path.glob("run-*.jsonl"))

    def test_malformed_push_rejected(self):
        with SpillingReorderBuffer(memory_limit=5) as buffer:
            with pytest.raises(StreamError):
                buffer.push(corrupt_event(Event("A", 5), "nan_ts"))
            assert len(buffer) == 0


class TestDiskBound:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpillingReorderBuffer(max_disk_events=0)

    def test_oldest_segments_shed_at_bound(self, tmp_path):
        with SpillingReorderBuffer(
            memory_limit=5, spill_batch=10, max_disk_events=25, directory=tmp_path
        ) as buffer:
            for ts in range(1, 76):  # 5 in memory, 70 spill-bound
                buffer.push(Event("A", ts))
            # 7 runs of 10 were flushed; the bound keeps only the newest 2.
            assert buffer.disk_size() <= 25
            assert buffer.shed_events == 50
            # Survivors are the *youngest* spilled events.
            survivors = {e.ts for e in buffer.drain()}
            assert all(ts > 50 for ts in survivors if ts > 5)

    def test_unbounded_by_default(self, events):
        with SpillingReorderBuffer(memory_limit=5, spill_batch=10) as buffer:
            for event in events:
                buffer.push(event)
            assert buffer.shed_events == 0
            assert len(buffer) == len(events)


class TestSnapshotRestore:
    def test_round_trip_preserves_both_tiers(self, events, tmp_path):
        arrival = bounded_shuffle(events[:300], k=40, seed=7)
        original = SpillingReorderBuffer(
            memory_limit=20, spill_batch=10, directory=tmp_path / "a"
        )
        for event in arrival:
            original.push(event)
        state = original.snapshot_state()

        clone = SpillingReorderBuffer(
            memory_limit=20, spill_batch=10, directory=tmp_path / "b"
        )
        clone.restore_state(state)
        assert len(clone) == len(original)
        assert clone.disk_size() == original.disk_size()
        assert [e.eid for e in clone.drain()] == [e.eid for e in original.drain()]
        original.close()
        clone.close()

    def test_snapshot_never_perturbs_live_buffer(self, events, tmp_path):
        buffer = SpillingReorderBuffer(
            memory_limit=10, spill_batch=10, directory=tmp_path
        )
        for event in events[:150]:
            buffer.push(event)
            buffer.snapshot_state()
        assert len(buffer) == 150
        expected = [e.eid for e in sorted(events[:150], key=lambda e: (e.ts, e.eid))]
        assert [e.eid for e in buffer.drain()] == expected
        buffer.close()

    def test_restore_rewrites_runs_locally(self, events, tmp_path):
        donor = SpillingReorderBuffer(
            memory_limit=10, spill_batch=10, directory=tmp_path / "donor"
        )
        for event in events[:100]:
            donor.push(event)
        state = donor.snapshot_state()
        donor.close()  # crashed process: its files are gone
        clone = SpillingReorderBuffer(
            memory_limit=10, spill_batch=10, directory=tmp_path / "clone"
        )
        clone.restore_state(state)
        assert clone.disk_size() > 0
        assert list((tmp_path / "clone").glob("run-*.jsonl"))
        assert len(clone.drain()) == 100
        clone.close()
