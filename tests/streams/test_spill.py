"""Spill-to-disk reorder buffering (repro.streams.spill)."""

import random

import pytest

from repro import ConfigurationError, Event, OfflineOracle, ReorderingEngine, parse
from repro.streams import BurstDropoutModel, SyntheticSource
from repro.streams.spill import SpillingReorderBuffer
from helpers import bounded_shuffle


@pytest.fixture
def events():
    return SyntheticSource(["A", "B"], 500, seed=1).take(500)


class TestBufferContract:
    def test_release_returns_sorted_ripe_events(self, events):
        buffer = SpillingReorderBuffer(memory_limit=50, spill_batch=20)
        arrival = bounded_shuffle(events, k=30, seed=2)
        for event in arrival:
            buffer.push(event)
        released = buffer.release(horizon=250)
        timestamps = [e.ts for e in released]
        assert timestamps == sorted(timestamps)
        assert all(ts <= 250 for ts in timestamps)
        buffer.close()

    def test_nothing_lost_across_spill_boundary(self, events):
        buffer = SpillingReorderBuffer(memory_limit=10, spill_batch=5)
        for event in events:
            buffer.push(event)
        assert len(buffer) == 500
        assert buffer.disk_size() > 0  # definitely spilled
        drained = buffer.drain()
        assert sorted(e.eid for e in drained) == sorted(e.eid for e in events)
        buffer.close()

    def test_matches_plain_heap_semantics(self, events):
        arrival = bounded_shuffle(events, k=40, seed=3)
        spilling = SpillingReorderBuffer(memory_limit=20, spill_batch=10)
        plain: list = []
        import heapq

        spilled_out, plain_out = [], []
        for event in arrival:
            spilling.push(event)
            heapq.heappush(plain, (event.ts, event.eid, event))
            horizon = event.ts - 45
            spilled_out.extend(spilling.release(horizon))
            while plain and plain[0][0] <= horizon:
                plain_out.append(heapq.heappop(plain)[2])
        spilled_out.extend(spilling.drain())
        while plain:
            plain_out.append(heapq.heappop(plain)[2])
        assert [e.eid for e in spilled_out] == [e.eid for e in plain_out]
        spilling.close()

    def test_segments_deleted_after_consumption(self, events, tmp_path):
        buffer = SpillingReorderBuffer(
            memory_limit=10, spill_batch=10, directory=tmp_path
        )
        for event in events[:200]:
            buffer.push(event)
        assert list(tmp_path.glob("run-*.jsonl"))
        buffer.drain()
        assert not list(tmp_path.glob("run-*.jsonl"))
        buffer.close()

    def test_spill_stats(self, events):
        buffer = SpillingReorderBuffer(memory_limit=10, spill_batch=10)
        for event in events[:100]:
            buffer.push(event)
        assert buffer.spilled_events >= 80
        assert buffer.spill_segments == buffer.spilled_events // 10
        buffer.close()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpillingReorderBuffer(memory_limit=0)
        with pytest.raises(ConfigurationError):
            SpillingReorderBuffer(spill_batch=0)

    def test_pending_unflushed_batch_still_releasable(self):
        buffer = SpillingReorderBuffer(memory_limit=2, spill_batch=1000)
        for ts in (5, 6, 1, 2):  # 1 and 2 land in the pending batch
            buffer.push(Event("A", ts))
        released = buffer.release(horizon=3)
        assert [e.ts for e in released] == [1, 2]
        buffer.close()


class TestEngineIntegration:
    def test_spilling_reorder_engine_is_exact(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 20")
        events = SyntheticSource(["A", "B", "C"], 800, seed=4).take(800)
        arrival = BurstDropoutModel(0.02, 60, seed=5).apply(events)
        from repro.streams import required_k

        k = required_k(arrival)
        truth = OfflineOracle(pattern).evaluate_set(events)
        engine = ReorderingEngine(pattern, k=k, memory_limit=30)
        engine.run(arrival)
        assert engine.result_set() == truth
        assert engine.buffer_memory_size() == 0

    def test_memory_tier_respects_limit(self):
        pattern = parse("PATTERN SEQ(A a, B b) WITHIN 10")
        engine = ReorderingEngine(pattern, k=10_000, memory_limit=25)
        for ts in range(1, 500):
            engine.feed(Event("Z", ts))
        # Everything buffered (huge K), but memory tier stays bounded by
        # limit + one unflushed spill batch.
        assert engine.buffer_size() > 400
        assert engine.buffer_memory_size() <= 25 + 1000

    def test_plain_engine_unaffected_by_default(self):
        pattern = parse("PATTERN SEQ(A a, B b) WITHIN 10")
        engine = ReorderingEngine(pattern, k=5)
        assert engine._spill is None
