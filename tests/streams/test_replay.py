"""Trace record/replay (repro.streams.replay)."""

import json

import pytest

from repro import Event, Punctuation, StreamError, OutOfOrderEngine, parse
from repro.streams import (
    RandomDelayModel,
    SyntheticSource,
    dump_trace,
    load_trace,
    roundtrip_equal,
)


@pytest.fixture
def trace(tmp_path):
    return tmp_path / "trace.jsonl"


@pytest.fixture
def elements():
    events = SyntheticSource(["A", "B"], 50, seed=1).take(50)
    arrival = RandomDelayModel(0.3, 10, seed=2).apply(events)
    arrival.insert(10, Punctuation(5))
    return arrival


class TestRoundtrip:
    def test_dump_returns_count(self, elements, trace):
        assert dump_trace(elements, trace) == len(elements)

    def test_roundtrip_preserves_everything(self, elements, trace):
        assert roundtrip_equal(elements, trace)

    def test_loaded_events_keep_identity(self, elements, trace):
        dump_trace(elements, trace)
        loaded = load_trace(trace)
        originals = [e for e in elements if isinstance(e, Event)]
        restored = [e for e in loaded if isinstance(e, Event)]
        assert [e.key() for e in restored] == [e.key() for e in originals]
        assert [e.attrs for e in restored] == [e.attrs for e in originals]

    def test_punctuation_preserved(self, elements, trace):
        dump_trace(elements, trace)
        loaded = load_trace(trace)
        assert Punctuation(5) in loaded

    def test_replay_reproduces_engine_results(self, elements, trace):
        pattern = parse("PATTERN SEQ(A a, B b) WITHIN 10")
        original = OutOfOrderEngine(pattern, k=15)
        original.run(list(elements))
        dump_trace(elements, trace)
        replayed = OutOfOrderEngine(pattern, k=15)
        replayed.run(load_trace(trace))
        assert replayed.result_set() == original.result_set()
        assert replayed.stats.as_dict() == original.stats.as_dict()


class TestFormatErrors:
    def test_missing_header(self, trace):
        trace.write_text("not json\n")
        with pytest.raises(StreamError):
            load_trace(trace)

    def test_wrong_format_tag(self, trace):
        trace.write_text(json.dumps({"format": "other"}) + "\n")
        with pytest.raises(StreamError, match="unsupported"):
            load_trace(trace)

    def test_bad_record_json(self, trace):
        trace.write_text(json.dumps({"format": "repro-trace-v1"}) + "\n{bad\n")
        with pytest.raises(StreamError, match="bad JSON"):
            load_trace(trace)

    def test_unknown_kind(self, trace):
        trace.write_text(
            json.dumps({"format": "repro-trace-v1"})
            + "\n"
            + json.dumps({"kind": "mystery"})
            + "\n"
        )
        with pytest.raises(StreamError, match="unknown record kind"):
            load_trace(trace)

    def test_bad_event_record(self, trace):
        trace.write_text(
            json.dumps({"format": "repro-trace-v1"})
            + "\n"
            + json.dumps({"kind": "event", "etype": "A"})
            + "\n"
        )
        with pytest.raises(StreamError, match="bad event record"):
            load_trace(trace)

    def test_blank_lines_skipped(self, trace, elements):
        dump_trace(elements, trace)
        content = trace.read_text().replace("\n", "\n\n")
        trace.write_text(content)
        assert len(load_trace(trace)) == len(elements)
