"""Punctuation injectors (repro.streams.punctuation)."""

import pytest

from repro import ConfigurationError, Event, Punctuation
from repro.streams import (
    HeartbeatPunctuator,
    PeriodicPunctuator,
    RandomDelayModel,
    SyntheticSource,
    strip_punctuation,
    validate_punctuation,
)


@pytest.fixture
def events():
    return SyntheticSource(["A", "B"], 200, seed=1).take(200)


class TestPeriodicPunctuator:
    def test_inserts_every_period(self, events):
        elements = list(PeriodicPunctuator(period=10).apply(events))
        punctuations = [e for e in elements if isinstance(e, Punctuation)]
        assert len(punctuations) == 20

    def test_events_preserved_in_order(self, events):
        elements = list(PeriodicPunctuator(period=7).apply(events))
        assert strip_punctuation(elements) == events

    def test_assertions_valid_on_ordered_stream(self, events):
        elements = list(PeriodicPunctuator(period=10).apply(events))
        assert validate_punctuation(elements)

    def test_assertions_valid_with_slack_on_disordered_stream(self, events):
        arrival = RandomDelayModel(0.4, 15, seed=2).apply(events)
        elements = list(PeriodicPunctuator(period=10, slack=15).apply(arrival))
        assert validate_punctuation(elements)

    def test_no_slack_on_disordered_stream_invalid(self, events):
        arrival = RandomDelayModel(0.6, 25, seed=3).apply(events)
        elements = list(PeriodicPunctuator(period=5, slack=0).apply(arrival))
        assert not validate_punctuation(elements)

    def test_monotone_assertions(self, events):
        elements = list(PeriodicPunctuator(period=3).apply(events))
        asserted = [e.ts for e in elements if isinstance(e, Punctuation)]
        assert asserted == sorted(asserted)
        assert len(set(asserted)) == len(asserted)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicPunctuator(period=0)
        with pytest.raises(ConfigurationError):
            PeriodicPunctuator(period=5, slack=-1)


class TestHeartbeatPunctuator:
    def test_beats_follow_time_advance(self, events):
        elements = list(HeartbeatPunctuator(interval=20).apply(events))
        punctuations = [e for e in elements if isinstance(e, Punctuation)]
        assert punctuations
        assert validate_punctuation(elements)

    def test_slack_respected(self, events):
        arrival = RandomDelayModel(0.4, 10, seed=4).apply(events)
        elements = list(HeartbeatPunctuator(interval=15, slack=10).apply(arrival))
        assert validate_punctuation(elements)

    def test_quiet_stream_no_beats(self):
        events = [Event("A", 1), Event("A", 2)]
        elements = list(HeartbeatPunctuator(interval=100).apply(events))
        assert strip_punctuation(elements) == events
        assert len(elements) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HeartbeatPunctuator(interval=0)


class TestEngineIntegration:
    def test_punctuated_stream_lets_unbounded_engine_purge(self, events):
        from repro import OutOfOrderEngine, parse

        pattern = parse("PATTERN SEQ(A a, B b) WITHIN 10")
        with_punct = OutOfOrderEngine(pattern)  # no K promise
        with_punct.feed_many(PeriodicPunctuator(period=10, slack=0).apply(events))
        without = OutOfOrderEngine(pattern)
        without.feed_many(events)
        assert with_punct.stats.peak_state_size < without.stats.peak_state_size
        with_punct.close()
        without.close()
        assert with_punct.result_set() == without.result_set()

    def test_validate_helper(self):
        good = [Event("A", 5), Punctuation(5), Event("A", 6)]
        bad = [Event("A", 5), Punctuation(5), Event("A", 5)]
        assert validate_punctuation(good)
        assert not validate_punctuation(bad)
