"""Punctuation injectors (repro.streams.punctuation)."""

import pytest

from repro import ConfigurationError, Event, Punctuation
from repro.streams import (
    EpochLedger,
    HeartbeatPunctuator,
    PeriodicPunctuator,
    RandomDelayModel,
    SyntheticSource,
    strip_punctuation,
    validate_punctuation,
)


@pytest.fixture
def events():
    return SyntheticSource(["A", "B"], 200, seed=1).take(200)


class TestPeriodicPunctuator:
    def test_inserts_every_period(self, events):
        elements = list(PeriodicPunctuator(period=10).apply(events))
        punctuations = [e for e in elements if isinstance(e, Punctuation)]
        assert len(punctuations) == 20

    def test_events_preserved_in_order(self, events):
        elements = list(PeriodicPunctuator(period=7).apply(events))
        assert strip_punctuation(elements) == events

    def test_assertions_valid_on_ordered_stream(self, events):
        elements = list(PeriodicPunctuator(period=10).apply(events))
        assert validate_punctuation(elements)

    def test_assertions_valid_with_slack_on_disordered_stream(self, events):
        arrival = RandomDelayModel(0.4, 15, seed=2).apply(events)
        elements = list(PeriodicPunctuator(period=10, slack=15).apply(arrival))
        assert validate_punctuation(elements)

    def test_no_slack_on_disordered_stream_invalid(self, events):
        arrival = RandomDelayModel(0.6, 25, seed=3).apply(events)
        elements = list(PeriodicPunctuator(period=5, slack=0).apply(arrival))
        assert not validate_punctuation(elements)

    def test_monotone_assertions(self, events):
        elements = list(PeriodicPunctuator(period=3).apply(events))
        asserted = [e.ts for e in elements if isinstance(e, Punctuation)]
        assert asserted == sorted(asserted)
        assert len(set(asserted)) == len(asserted)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicPunctuator(period=0)
        with pytest.raises(ConfigurationError):
            PeriodicPunctuator(period=5, slack=-1)


class TestHeartbeatPunctuator:
    def test_beats_follow_time_advance(self, events):
        elements = list(HeartbeatPunctuator(interval=20).apply(events))
        punctuations = [e for e in elements if isinstance(e, Punctuation)]
        assert punctuations
        assert validate_punctuation(elements)

    def test_slack_respected(self, events):
        arrival = RandomDelayModel(0.4, 10, seed=4).apply(events)
        elements = list(HeartbeatPunctuator(interval=15, slack=10).apply(arrival))
        assert validate_punctuation(elements)

    def test_quiet_stream_no_beats(self):
        events = [Event("A", 1), Event("A", 2)]
        elements = list(HeartbeatPunctuator(interval=100).apply(events))
        assert strip_punctuation(elements) == events
        assert len(elements) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HeartbeatPunctuator(interval=0)


class TestEngineIntegration:
    def test_punctuated_stream_lets_unbounded_engine_purge(self, events):
        from repro import OutOfOrderEngine, parse

        pattern = parse("PATTERN SEQ(A a, B b) WITHIN 10")
        with_punct = OutOfOrderEngine(pattern)  # no K promise
        with_punct.feed_many(PeriodicPunctuator(period=10, slack=0).apply(events))
        without = OutOfOrderEngine(pattern)
        without.feed_many(events)
        assert with_punct.stats.peak_state_size < without.stats.peak_state_size
        with_punct.close()
        without.close()
        assert with_punct.result_set() == without.result_set()

    def test_validate_helper(self):
        good = [Event("A", 5), Punctuation(5), Event("A", 6)]
        bad = [Event("A", 5), Punctuation(5), Event("A", 5)]
        assert validate_punctuation(good)
        assert not validate_punctuation(bad)


class TestEpochLedger:
    def test_seals_number_epochs_densely(self):
        ledger = EpochLedger()
        assert [ledger.seal(ts) for ts in (3, 3, 9)] == [0, 1, 2]
        assert ledger.count == 3
        assert ledger.last_ts == 9
        assert ledger.recent() == [(0, 3), (1, 3), (2, 9)]
        assert ledger.ts_of(1) == 3
        assert ledger.ts_of(99) is None

    def test_rejects_regressing_seal(self):
        ledger = EpochLedger()
        ledger.seal(10)
        with pytest.raises(ConfigurationError, match="regressed"):
            ledger.seal(9)

    def test_tail_is_bounded(self):
        ledger = EpochLedger(capacity=4)
        for ts in range(10):
            ledger.seal(ts)
        assert ledger.count == 10
        assert ledger.recent() == [(6, 6), (7, 7), (8, 8), (9, 9)]
        assert ledger.ts_of(2) is None  # rolled off the tail

    def test_snapshot_round_trip(self):
        ledger = EpochLedger(capacity=8)
        for ts in (1, 4, 4, 7):
            ledger.seal(ts)
        restored = EpochLedger(capacity=8)
        restored.restore_state(ledger.snapshot_state())
        assert restored.count == ledger.count
        assert restored.recent() == ledger.recent()
        restored.seal(7)  # monotone continuation works after restore
        assert restored.count == 5

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            EpochLedger(capacity=0)
