"""K estimation (repro.streams.kslack)."""

import pytest

from repro import ConfigurationError, Event, OutOfOrderEngine, OfflineOracle
from repro.streams import (
    AdaptiveEngineFeeder,
    FixedK,
    MaxObservedK,
    QuantileK,
    RandomDelayModel,
    SyntheticSource,
    required_k,
)


@pytest.fixture
def disordered():
    events = SyntheticSource(["A", "B", "C"], 800, seed=3).take(800)
    return RandomDelayModel(0.3, 25, seed=4).apply(events)


class TestFixedK:
    def test_constant(self):
        estimator = FixedK(7)
        estimator.observe(Event("A", 100))
        assert estimator.current() == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedK(-1)


class TestMaxObservedK:
    def test_tracks_running_max_delay(self, disordered):
        estimator = MaxObservedK()
        for event in disordered:
            estimator.observe(event)
        assert estimator.current() == required_k(disordered)

    def test_never_shrinks(self, disordered):
        estimator = MaxObservedK()
        seen = []
        for event in disordered:
            estimator.observe(event)
            seen.append(estimator.current())
        assert all(b >= a for a, b in zip(seen, seen[1:]))

    def test_margin_scales_up(self, disordered):
        plain = MaxObservedK()
        padded = MaxObservedK(margin=0.5)
        for event in disordered:
            plain.observe(event)
            padded.observe(event)
        assert padded.current() >= int(plain.current() * 1.5)

    def test_initial_floor(self):
        assert MaxObservedK(initial=10).current() == 10

    def test_fractional_margin_rounds_up(self):
        # Regression: int(10 * 1.25) == 12 truncated the safety margin
        # into a late-drop budget; the margin demands ceil(12.5) == 13.
        estimator = MaxObservedK(margin=0.25, initial=10)
        assert estimator.current() == 13

    def test_margin_uses_intended_decimal_not_float_artifact(self):
        # Regression: Fraction(0.001) is slightly *above* 1/1000, so a
        # naive exact ceiling over the raw float returned 1002 where the
        # margin the caller wrote demands ceil(1000 * 1.001) == 1001.
        estimator = MaxObservedK(margin=0.001, initial=1000)
        assert estimator.current() == 1001

    def test_integer_margin_is_exact(self):
        assert MaxObservedK(margin=1.0, initial=7).current() == 14

    def test_ordered_stream_yields_zero(self):
        estimator = MaxObservedK()
        for ts in range(50):
            estimator.observe(Event("A", ts))
        assert estimator.current() == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MaxObservedK(margin=-0.1)
        with pytest.raises(ConfigurationError):
            MaxObservedK(initial=-1)


class TestQuantileK:
    def test_quantile_one_close_to_max(self, disordered):
        estimator = QuantileK(quantile=1.0, window=len(disordered))
        for event in disordered:
            estimator.observe(event)
        assert estimator.current() == required_k(disordered)

    def test_lower_quantile_smaller_k(self, disordered):
        full = QuantileK(quantile=1.0, window=4000)
        partial = QuantileK(quantile=0.9, window=4000)
        for event in disordered:
            full.observe(event)
            partial.observe(event)
        assert partial.current() <= full.current()

    def test_sliding_window_forgets(self):
        estimator = QuantileK(quantile=1.0, window=10)
        estimator.observe(Event("A", 100))
        estimator.observe(Event("A", 1))  # delay 99
        assert estimator.current() == 99
        for ts in range(101, 120):
            estimator.observe(Event("A", ts))
        assert estimator.current() == 0  # the straggler aged out

    def test_margin_added(self):
        estimator = QuantileK(quantile=1.0, window=10, margin=5)
        estimator.observe(Event("A", 10))
        assert estimator.current() == 5

    def test_empty_returns_margin(self):
        assert QuantileK(margin=3).current() == 3

    def test_initial_floor_covers_cold_start(self):
        # With zero observations the floor alone holds the line — a
        # controller re-freezing during warm-up must not lock in K=0.
        assert QuantileK(initial=20).current() == 20

    def test_initial_floor_holds_until_window_fills(self):
        estimator = QuantileK(quantile=1.0, window=4, initial=50)
        for ts in range(1, 4):  # 3 in-order arrivals: delays all zero
            estimator.observe(Event("A", ts))
        assert estimator.current() == 50  # window not yet full

    def test_initial_floor_lifts_once_window_full(self):
        estimator = QuantileK(quantile=1.0, window=4, initial=50)
        for ts in range(1, 6):
            estimator.observe(Event("A", ts))
        assert estimator.current() == 0  # observed quantile takes over

    def test_initial_validation(self):
        with pytest.raises(ConfigurationError):
            QuantileK(initial=-1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuantileK(quantile=0.0)
        with pytest.raises(ConfigurationError):
            QuantileK(quantile=1.5)
        with pytest.raises(ConfigurationError):
            QuantileK(window=0)
        with pytest.raises(ConfigurationError):
            QuantileK(margin=-1)

    def test_single_sample_any_quantile(self):
        # n=1: every quantile must land on the only delay in the window.
        for quantile in (0.01, 0.5, 1.0):
            estimator = QuantileK(quantile=quantile, window=1)
            estimator.observe(Event("A", 100))  # delay 0, then aged out
            estimator.observe(Event("A", 1))    # delay 99, the sole sample
            assert estimator.current() == 99

    def test_two_samples_median_is_lower_delay(self):
        # Regression: the floor rank int(q*n) returned the *max* for
        # q=0.5 over two delays, silently inflating K.  ceil(q*n)-1
        # picks the lower-median.
        estimator = QuantileK(quantile=0.5, window=2)
        estimator.observe(Event("A", 100))  # delay 0
        estimator.observe(Event("A", 1))    # delay 99
        assert estimator.current() == 0

    def test_two_samples_full_quantile_is_max(self):
        estimator = QuantileK(quantile=1.0, window=2)
        estimator.observe(Event("A", 100))  # delay 0
        estimator.observe(Event("A", 1))    # delay 99
        assert estimator.current() == 99


class TestAdaptiveEngineFeeder:
    def test_trains_then_runs(self, disordered, abc_pattern):
        feeder = AdaptiveEngineFeeder(MaxObservedK(margin=0.2), training=400)
        engine = feeder.run(
            lambda k: OutOfOrderEngine(abc_pattern, k=k), disordered
        )
        assert feeder.chosen_k is not None
        assert feeder.chosen_k > 0
        assert engine.closed

    def test_max_estimator_with_full_training_is_exact(self, disordered, abc_pattern):
        # Training on the whole stream: chosen K dominates every delay.
        feeder = AdaptiveEngineFeeder(MaxObservedK(), training=len(disordered))
        engine = feeder.run(
            lambda k: OutOfOrderEngine(abc_pattern, k=k), disordered
        )
        truth = OfflineOracle(abc_pattern).evaluate_set(disordered)
        assert engine.result_set() == truth
        assert engine.stats.late_dropped == 0

    def test_quantile_estimator_trades_violations_for_small_k(
        self, disordered, abc_pattern
    ):
        aggressive_estimate = AdaptiveEngineFeeder(
            QuantileK(quantile=0.5, window=400), training=400
        )
        engine = aggressive_estimate.run(
            lambda k: OutOfOrderEngine(abc_pattern, k=k), disordered
        )
        conservative = AdaptiveEngineFeeder(MaxObservedK(), training=400)
        engine2 = conservative.run(
            lambda k: OutOfOrderEngine(abc_pattern, k=k), disordered
        )
        assert aggressive_estimate.chosen_k <= conservative.chosen_k
        assert engine.stats.late_dropped >= engine2.stats.late_dropped

    def test_raise_policy_survives_training_replay(self, abc_pattern):
        # Regression: a quantile-derived K expects a fraction of its own
        # training data to be late, so replaying the prefix into a
        # RAISE-policy engine used to crash the harness on the very data
        # the bound was fitted to.  The replay now runs under DROP and
        # surfaces the violations instead.
        from repro.core.engine import LatePolicy

        arrival = [Event("A", 0), Event("A", 10), Event("A", 1)]  # delay 9
        feeder = AdaptiveEngineFeeder(QuantileK(quantile=0.5, window=3), training=3)

        def factory(k):
            return OutOfOrderEngine(abc_pattern, k=k, late_policy=LatePolicy.RAISE)

        engine = feeder.run(factory, arrival)  # must not raise
        assert feeder.chosen_k == 0  # median delay of [0, 0, 9]
        assert feeder.violations == 1  # A@1 was late under K=0
        assert engine.late_policy is LatePolicy.RAISE  # restored after replay

    def test_report_surfaces_protocol_outcome(self, disordered, abc_pattern):
        feeder = AdaptiveEngineFeeder(QuantileK(quantile=0.5, window=400), training=400)
        assert feeder.report() == {"training": 400, "chosen_k": None, "violations": None}
        feeder.run(lambda k: OutOfOrderEngine(abc_pattern, k=k), disordered)
        report = feeder.report()
        assert report["chosen_k"] == feeder.chosen_k
        assert report["violations"] >= 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveEngineFeeder(FixedK(1), training=-1)

    def test_zero_training_freezes_cold_estimate(self, disordered, abc_pattern):
        # training=0: no prefix is observed, so the frozen K is the
        # estimator's cold-start value and the whole stream is "rest".
        feeder = AdaptiveEngineFeeder(MaxObservedK(initial=25), training=0)
        engine = feeder.run(lambda k: OutOfOrderEngine(abc_pattern, k=k), disordered)
        assert feeder.chosen_k == 25
        assert engine.closed
        assert engine.stats.events_in == len(disordered)

    def test_training_longer_than_stream(self, disordered, abc_pattern):
        # training >= len(arrival): the entire stream is the training
        # prefix, the remainder is empty, and nothing is lost — the
        # prefix replay feeds every event exactly once.
        feeder = AdaptiveEngineFeeder(MaxObservedK(), training=len(disordered) + 100)
        engine = feeder.run(lambda k: OutOfOrderEngine(abc_pattern, k=k), disordered)
        truth = OfflineOracle(abc_pattern).evaluate_set(disordered)
        assert engine.result_set() == truth
        assert engine.stats.late_dropped == 0
        assert engine.stats.events_in == len(disordered)
