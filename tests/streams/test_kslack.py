"""K estimation (repro.streams.kslack)."""

import pytest

from repro import ConfigurationError, Event, OutOfOrderEngine, OfflineOracle
from repro.streams import (
    AdaptiveEngineFeeder,
    FixedK,
    MaxObservedK,
    QuantileK,
    RandomDelayModel,
    SyntheticSource,
    required_k,
)


@pytest.fixture
def disordered():
    events = SyntheticSource(["A", "B", "C"], 800, seed=3).take(800)
    return RandomDelayModel(0.3, 25, seed=4).apply(events)


class TestFixedK:
    def test_constant(self):
        estimator = FixedK(7)
        estimator.observe(Event("A", 100))
        assert estimator.current() == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedK(-1)


class TestMaxObservedK:
    def test_tracks_running_max_delay(self, disordered):
        estimator = MaxObservedK()
        for event in disordered:
            estimator.observe(event)
        assert estimator.current() == required_k(disordered)

    def test_never_shrinks(self, disordered):
        estimator = MaxObservedK()
        seen = []
        for event in disordered:
            estimator.observe(event)
            seen.append(estimator.current())
        assert all(b >= a for a, b in zip(seen, seen[1:]))

    def test_margin_scales_up(self, disordered):
        plain = MaxObservedK()
        padded = MaxObservedK(margin=0.5)
        for event in disordered:
            plain.observe(event)
            padded.observe(event)
        assert padded.current() >= int(plain.current() * 1.5)

    def test_initial_floor(self):
        assert MaxObservedK(initial=10).current() == 10

    def test_ordered_stream_yields_zero(self):
        estimator = MaxObservedK()
        for ts in range(50):
            estimator.observe(Event("A", ts))
        assert estimator.current() == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MaxObservedK(margin=-0.1)
        with pytest.raises(ConfigurationError):
            MaxObservedK(initial=-1)


class TestQuantileK:
    def test_quantile_one_close_to_max(self, disordered):
        estimator = QuantileK(quantile=1.0, window=len(disordered))
        for event in disordered:
            estimator.observe(event)
        assert estimator.current() == required_k(disordered)

    def test_lower_quantile_smaller_k(self, disordered):
        full = QuantileK(quantile=1.0, window=4000)
        partial = QuantileK(quantile=0.9, window=4000)
        for event in disordered:
            full.observe(event)
            partial.observe(event)
        assert partial.current() <= full.current()

    def test_sliding_window_forgets(self):
        estimator = QuantileK(quantile=1.0, window=10)
        estimator.observe(Event("A", 100))
        estimator.observe(Event("A", 1))  # delay 99
        assert estimator.current() == 99
        for ts in range(101, 120):
            estimator.observe(Event("A", ts))
        assert estimator.current() == 0  # the straggler aged out

    def test_margin_added(self):
        estimator = QuantileK(quantile=1.0, window=10, margin=5)
        estimator.observe(Event("A", 10))
        assert estimator.current() == 5

    def test_empty_returns_margin(self):
        assert QuantileK(margin=3).current() == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuantileK(quantile=0.0)
        with pytest.raises(ConfigurationError):
            QuantileK(quantile=1.5)
        with pytest.raises(ConfigurationError):
            QuantileK(window=0)
        with pytest.raises(ConfigurationError):
            QuantileK(margin=-1)


class TestAdaptiveEngineFeeder:
    def test_trains_then_runs(self, disordered, abc_pattern):
        feeder = AdaptiveEngineFeeder(MaxObservedK(margin=0.2), training=400)
        engine = feeder.run(
            lambda k: OutOfOrderEngine(abc_pattern, k=k), disordered
        )
        assert feeder.chosen_k is not None
        assert feeder.chosen_k > 0
        assert engine.closed

    def test_max_estimator_with_full_training_is_exact(self, disordered, abc_pattern):
        # Training on the whole stream: chosen K dominates every delay.
        feeder = AdaptiveEngineFeeder(MaxObservedK(), training=len(disordered))
        engine = feeder.run(
            lambda k: OutOfOrderEngine(abc_pattern, k=k), disordered
        )
        truth = OfflineOracle(abc_pattern).evaluate_set(disordered)
        assert engine.result_set() == truth
        assert engine.stats.late_dropped == 0

    def test_quantile_estimator_trades_violations_for_small_k(
        self, disordered, abc_pattern
    ):
        aggressive_estimate = AdaptiveEngineFeeder(
            QuantileK(quantile=0.5, window=400), training=400
        )
        engine = aggressive_estimate.run(
            lambda k: OutOfOrderEngine(abc_pattern, k=k), disordered
        )
        conservative = AdaptiveEngineFeeder(MaxObservedK(), training=400)
        engine2 = conservative.run(
            lambda k: OutOfOrderEngine(abc_pattern, k=k), disordered
        )
        assert aggressive_estimate.chosen_k <= conservative.chosen_k
        assert engine.stats.late_dropped >= engine2.stats.late_dropped

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveEngineFeeder(FixedK(1), training=-1)
