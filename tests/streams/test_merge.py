"""Stream merging (repro.streams.merge)."""

import pytest

from repro import ConfigurationError, Event
from repro.streams import (
    OrderedMerge,
    SyntheticSource,
    interleave_by_arrival,
    measure_disorder,
    merge_ordered_streams,
)


def sources(n, count=100):
    return [SyntheticSource(["A", "B"], count, seed=i, interval=2).take(count) for i in range(n)]


class TestInterleave:
    def test_preserves_per_stream_order(self):
        streams = sources(3)
        merged = interleave_by_arrival(streams, seed=1)
        for stream in streams:
            positions = [merged.index(e) for e in stream]
            assert positions == sorted(positions)

    def test_preserves_multiset(self):
        streams = sources(3)
        merged = interleave_by_arrival(streams, seed=2)
        assert sorted(e.eid for e in merged) == sorted(
            e.eid for stream in streams for e in stream
        )

    def test_merge_creates_disorder(self):
        streams = sources(4)
        merged = interleave_by_arrival(streams, seed=3)
        assert measure_disorder(merged).displaced > 0

    def test_single_stream_stays_ordered(self):
        streams = sources(1)
        merged = interleave_by_arrival(streams, seed=4)
        assert measure_disorder(merged).displaced == 0

    def test_deterministic(self):
        streams = sources(3)
        assert [e.eid for e in interleave_by_arrival(streams, seed=5)] == [
            e.eid for e in interleave_by_arrival(streams, seed=5)
        ]

    def test_burstiness_validated(self):
        with pytest.raises(ConfigurationError):
            interleave_by_arrival(sources(2), burstiness=0)

    def test_bursty_interleave_valid_permutation(self):
        streams = sources(3)
        merged = interleave_by_arrival(streams, seed=6, burstiness=5)
        assert len(merged) == sum(len(s) for s in streams)


class TestOrderedMerge:
    def test_releases_in_global_order(self):
        merge = OrderedMerge(2)
        released = []
        released += merge.push(0, Event("A", 1))
        released += merge.push(1, Event("B", 2))
        released += merge.push(0, Event("A", 5))
        released += merge.push(1, Event("B", 6))
        timestamps = [e.ts for e in released]
        assert timestamps == sorted(timestamps)

    def test_blocks_on_idle_input(self):
        merge = OrderedMerge(2)
        assert merge.push(0, Event("A", 10)) == []  # input 1 silent: blocked
        assert merge.pending() == 1
        assert merge.blocked_pulls >= 1

    def test_close_unblocks(self):
        merge = OrderedMerge(2)
        merge.push(0, Event("A", 10))
        released = merge.close_input(1)
        assert [e.ts for e in released] == [10]

    def test_all_closed_releases_everything(self):
        merge = OrderedMerge(2)
        out = merge.push(0, Event("A", 10))
        out += merge.push(1, Event("B", 5))  # frontier 5 releases B immediately
        out += merge.close_input(0)
        out += merge.close_input(1)
        assert sorted(e.ts for e in out) == [5, 10]
        assert merge.pending() == 0

    def test_rejects_unordered_input(self):
        merge = OrderedMerge(1)
        merge.push(0, Event("A", 5))
        with pytest.raises(ConfigurationError):
            merge.push(0, Event("A", 3))

    def test_rejects_bad_index_and_closed_input(self):
        merge = OrderedMerge(1)
        with pytest.raises(ConfigurationError):
            merge.push(5, Event("A", 1))
        merge.close_input(0)
        with pytest.raises(ConfigurationError):
            merge.push(0, Event("A", 1))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OrderedMerge(0)

    def test_full_merge_is_sorted(self):
        streams = sources(3, count=50)
        merge = OrderedMerge(3)
        released = []
        iterators = [iter(s) for s in streams]
        exhausted = [False] * 3
        import itertools

        for index in itertools.cycle(range(3)):
            if all(exhausted):
                break
            if exhausted[index]:
                continue
            event = next(iterators[index], None)
            if event is None:
                exhausted[index] = True
                released += merge.close_input(index)
            else:
                released += merge.push(index, event)
        timestamps = [e.ts for e in released]
        assert timestamps == sorted(timestamps)
        assert len(released) == 150


class TestOfflineMerge:
    def test_merge_ordered_streams(self):
        streams = sources(4, count=30)
        merged = merge_ordered_streams(streams)
        timestamps = [e.ts for e in merged]
        assert timestamps == sorted(timestamps)
        assert len(merged) == 120
