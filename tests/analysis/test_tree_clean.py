"""The shipped tree must satisfy its own contracts.

This is the same gate CI runs; a failure here means an engine change
broke a contract (fix it) or introduced a justified exception (add a
``# repro: ignore[...]`` with a reason).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import run_analysis

SRC = Path(__file__).parents[2] / "src" / "repro"


def test_src_repro_is_clean():
    report = run_analysis([str(SRC)])
    assert report.parse_errors == []
    assert report.findings == [], "\n" + "\n".join(
        finding.render() for finding in report.findings
    )


def test_suppressions_are_exercised():
    """Every committed suppression still matches a real finding; stale
    opt-outs (the finding disappeared) should be deleted, not kept."""
    report = run_analysis([str(SRC)])
    assert report.suppressed == 6
