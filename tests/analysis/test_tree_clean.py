"""The shipped tree must satisfy its own contracts.

This is the same gate CI runs; a failure here means an engine change
broke a contract (fix it) or introduced a justified exception (add a
``# repro: ignore[...]`` with a reason).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import run_analysis

SRC = Path(__file__).parents[2] / "src" / "repro"


def test_src_repro_is_clean():
    report = run_analysis([str(SRC)])
    assert report.parse_errors == []
    assert report.findings == [], "\n" + "\n".join(
        finding.render() for finding in report.findings
    )


def test_suppressions_are_exercised():
    """Every committed suppression still matches a real finding; stale
    opt-outs (the finding disappeared) should be deleted, not kept."""
    report = run_analysis([str(SRC)])
    assert report.suppressed == 11


def test_no_dead_suppressions():
    """The burn-down gate: a ``# repro: ignore`` that matches no finding
    for any active rule is dead weight and must be removed, not kept
    around to mask future regressions."""
    report = run_analysis([str(SRC)])
    assert report.dead_suppressions == [], "\n" + "\n".join(
        f"{path}:{line}: {rule} suppression is dead"
        for path, line, rule in report.dead_suppressions
    )


def test_obs_subtree_is_clean_without_suppressions():
    """The observability layer passes every rule with ZERO opt-outs.

    Its hot-path hooks are reached only behind the engines' ``_obs is
    None`` guard, so they must not need purity/determinism exceptions;
    if a change makes one necessary, justify it here — don't just add
    the ignore.
    """
    report = run_analysis([str(SRC / "obs")])
    assert report.parse_errors == []
    assert report.findings == [], "\n" + "\n".join(
        finding.render() for finding in report.findings
    )
    assert report.suppressed == 0


def test_obs_sources_carry_no_ignore_comments():
    """Belt and braces for the above: no ``# repro: ignore`` markers at
    all in ``src/repro/obs`` — a suppression that no rule exercises
    would silently mask future regressions."""
    for path in sorted((SRC / "obs").glob("*.py")):
        for number, line in enumerate(path.read_text().splitlines(), start=1):
            assert "repro: ignore" not in line, (
                f"{path.name}:{number} carries a suppression; the obs "
                "layer is expected to pass all rules unaided"
            )


def test_speculation_modules_are_clean_without_suppressions():
    """The PR's new modules — the speculation log and the adaptive-K
    controller — pass every rule with ZERO opt-outs.

    Both are deterministic engine state (snapshot completeness and
    determinism rules apply in full), and the speculation log sits on
    the hot path behind the ``speculation is not None`` guard, so
    purity exceptions would be a design smell, not a necessity."""
    targets = [
        str(SRC / "core" / "speculate.py"),
        str(SRC / "streams" / "controller.py"),
    ]
    report = run_analysis(targets)
    assert report.parse_errors == []
    assert report.findings == [], "\n" + "\n".join(
        finding.render() for finding in report.findings
    )
    assert report.suppressed == 0
    for target in targets:
        text = Path(target).read_text()
        assert "repro: ignore" not in text


def test_ingest_subtree_is_clean_without_suppressions():
    """The ingestion gateway passes every rule with ZERO opt-outs.

    Admission, liveness and the transport are deterministic admission
    state (snapshot completeness and determinism rules apply in full),
    and none of them sit on the engine hot path — the gateway *feeds*
    engines, it does not run inside them — so purity exceptions would
    be a design smell, not a necessity.
    """
    report = run_analysis([str(SRC / "ingest")])
    assert report.parse_errors == []
    assert report.findings == [], "\n" + "\n".join(
        finding.render() for finding in report.findings
    )
    assert report.suppressed == 0
    for path in (SRC / "ingest").glob("*.py"):
        assert "repro: ignore" not in path.read_text()
