"""CLI behaviour: exit codes, formats, rule listing."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_clean_path_exits_zero(capsys):
    assert main([str(FIXTURES / "clean_engine.py")]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_findings_exit_one_text(capsys):
    assert main([str(FIXTURES / "bad_r004.py")]) == 1
    out = capsys.readouterr().out
    assert "R004" in out
    assert "HalfEngine" in out


def test_json_format_is_machine_readable(capsys):
    assert main(["--format", "json", str(FIXTURES / "bad_r001.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["checked_files"] == 1
    rules = [finding["rule"] for finding in payload["findings"]]
    assert "R001" in rules
    first = payload["findings"][0]
    assert set(first) == {"rule", "severity", "path", "line", "symbol", "message"}


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R001", "R002", "R003", "R004", "R005"):
        assert rule_id in out


def test_unparsable_file_exits_two(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    assert main([str(bad)]) == 2
    assert "parse error" in capsys.readouterr().err


def test_empty_directory_exits_two(tmp_path, capsys):
    assert main([str(tmp_path)]) == 2
    assert "no python files" in capsys.readouterr().err


# -- dead-suppression warnings ----------------------------------------------------------


BAD_PURGE = (
    "class Store:\n"
    "    def __init__(self):\n"
    "        self._events = []\n"
    "\n"
    "    def purge_through(self, horizon):\n"
    "        for event in self._events:\n"
    "            self._events.remove(event)\n"
)


def test_dead_suppression_warns_but_exits_zero(tmp_path, capsys):
    path = tmp_path / "mod.py"
    path.write_text("X = 1  # repro: ignore[R005] -- stale\n", encoding="utf-8")
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "dead comment" in out
    assert "1 dead suppression" in out


def test_dead_suppressions_in_json_payload(tmp_path, capsys):
    path = tmp_path / "mod.py"
    path.write_text("X = 1  # repro: ignore[R005] -- stale\n", encoding="utf-8")
    assert main(["--format", "json", str(path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    [entry] = payload["dead_suppressions"]
    assert entry["line"] == 1
    assert entry["rule"] == "R005"


def test_live_suppression_is_not_reported_dead(tmp_path, capsys):
    marked = BAD_PURGE.replace(
        "self._events.remove(event)",
        "self._events.remove(event)  # repro: ignore[R005] -- fixture",
    )
    (tmp_path / "mod.py").write_text(marked, encoding="utf-8")
    assert main([str(tmp_path / "mod.py")]) == 0
    out = capsys.readouterr().out
    assert "dead" not in out
    assert "1 suppressed" in out


# -- --changed-only ---------------------------------------------------------------------


def _git_repo(tmp_path):
    import subprocess

    def git(*args):
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
            cwd=tmp_path,
            check=True,
            capture_output=True,
        )

    git("init", "-q")
    return git


def test_changed_only_filters_unchanged_findings(tmp_path, monkeypatch, capsys):
    git = _git_repo(tmp_path)
    (tmp_path / "old.py").write_text(BAD_PURGE, encoding="utf-8")
    git("add", "old.py")
    git("commit", "-qm", "seed")
    (tmp_path / "new.py").write_text(BAD_PURGE, encoding="utf-8")  # untracked
    monkeypatch.chdir(tmp_path)
    assert main(["--changed-only", "HEAD", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "new.py" in out
    assert "old.py" not in out


def test_changed_only_exits_zero_when_changes_are_clean(tmp_path, monkeypatch, capsys):
    git = _git_repo(tmp_path)
    (tmp_path / "old.py").write_text(BAD_PURGE, encoding="utf-8")
    git("add", "old.py")
    git("commit", "-qm", "seed")
    (tmp_path / "new.py").write_text("X = 1\n", encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    assert main(["--changed-only", "HEAD", str(tmp_path)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_changed_only_bad_ref_exits_two(tmp_path, monkeypatch, capsys):
    _git_repo(tmp_path)
    (tmp_path / "mod.py").write_text("X = 1\n", encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    assert main(["--changed-only", "no-such-ref", str(tmp_path)]) == 2
    assert "--changed-only" in capsys.readouterr().err
