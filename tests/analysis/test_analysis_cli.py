"""CLI behaviour: exit codes, formats, rule listing."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_clean_path_exits_zero(capsys):
    assert main([str(FIXTURES / "clean_engine.py")]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_findings_exit_one_text(capsys):
    assert main([str(FIXTURES / "bad_r004.py")]) == 1
    out = capsys.readouterr().out
    assert "R004" in out
    assert "HalfEngine" in out


def test_json_format_is_machine_readable(capsys):
    assert main(["--format", "json", str(FIXTURES / "bad_r001.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["checked_files"] == 1
    rules = [finding["rule"] for finding in payload["findings"]]
    assert "R001" in rules
    first = payload["findings"][0]
    assert set(first) == {"rule", "severity", "path", "line", "symbol", "message"}


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R001", "R002", "R003", "R004", "R005"):
        assert rule_id in out


def test_unparsable_file_exits_two(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    assert main([str(bad)]) == 2
    assert "parse error" in capsys.readouterr().err


def test_empty_directory_exits_two(tmp_path, capsys):
    assert main([str(tmp_path)]) == 2
    assert "no python files" in capsys.readouterr().err
