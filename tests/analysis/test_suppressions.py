"""Suppression syntax: line, symbol-header, and file scopes."""

from __future__ import annotations

from repro.analysis import run_analysis
from repro.analysis.rules.purge_safety import PurgeSafety
from repro.analysis.rules.snapshot_completeness import SnapshotCompleteness
from repro.analysis.suppressions import parse_suppressions

BAD_PURGE = '''\
class Store:
    def __init__(self):
        self._events = []

    def purge_through(self, horizon):
        for event in self._events:
            self._events.remove(event){marker}
'''


def _write(tmp_path, text):
    path = tmp_path / "mod.py"
    path.write_text(text, encoding="utf-8")
    return str(path)


def test_parse_line_and_file_scopes():
    per_line, per_file, decls = parse_suppressions(
        "# repro: ignore-file[R002]\n"
        "x = 1  # repro: ignore[R001,R003] -- justification text\n"
    )
    assert per_file == {"R002"}
    assert per_line == {2: {"R001", "R003"}}
    assert [(d.line, d.scope, d.rules) for d in decls] == [
        (1, "file", frozenset({"R002"})),
        (2, "line", frozenset({"R001", "R003"})),
    ]


def test_unsuppressed_fixture_fires(tmp_path):
    path = _write(tmp_path, BAD_PURGE.format(marker=""))
    report = run_analysis([path], rules=[PurgeSafety()])
    assert len(report.findings) == 1
    assert report.suppressed == 0


def test_line_suppression_silences_finding(tmp_path):
    marker = "  # repro: ignore[R005] -- fixture"
    path = _write(tmp_path, BAD_PURGE.format(marker=marker))
    report = run_analysis([path], rules=[PurgeSafety()])
    assert report.findings == []
    assert report.suppressed == 1


def test_line_suppression_is_rule_specific(tmp_path):
    marker = "  # repro: ignore[R001] -- wrong rule id"
    path = _write(tmp_path, BAD_PURGE.format(marker=marker))
    report = run_analysis([path], rules=[PurgeSafety()])
    assert len(report.findings) == 1
    assert report.suppressed == 0


def test_file_suppression_silences_finding(tmp_path):
    text = "# repro: ignore-file[R005] -- fixture\n" + BAD_PURGE.format(marker="")
    path = _write(tmp_path, text)
    report = run_analysis([path], rules=[PurgeSafety()])
    assert report.findings == []
    assert report.suppressed == 1


def test_symbol_header_suppression_covers_body(tmp_path):
    text = (
        "class Engine:\n"
        "    def __init__(self):  # repro: ignore[R001] -- fixture\n"
        "        self._lost = 0\n"
        "\n"
        "    def _process_event(self, event):\n"
        "        self._lost += 1\n"
        "        return []\n"
        "\n"
        "    def _snapshot_state(self):\n"
        "        return {}\n"
        "\n"
        "    def _restore_state(self, state):\n"
        "        return None\n"
    )
    path = _write(tmp_path, text)
    report = run_analysis([path], rules=[SnapshotCompleteness()])
    assert report.findings == []
    assert report.suppressed == 1
