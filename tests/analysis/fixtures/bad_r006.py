"""R006 fixture: read-modify-write of shared state across an await."""

import asyncio


class BadCounter:
    def __init__(self):
        self.total = 0
        self.hits = 0
        self._lock = asyncio.Lock()

    async def bump(self, amount):
        seen = self.total  # line 13: basis read
        await asyncio.sleep(0)  # line 14: suspension point
        self.total = seen + amount  # line 15: the finding — stale write

    async def bump_inplace(self):
        self.hits += await self._cost()  # line 18: read + await + write

    async def _cost(self):
        await asyncio.sleep(0)
        return 1

    async def bump_guarded(self, amount):
        async with self._lock:  # lock held across read, await, write
            seen = self.total
            await asyncio.sleep(0)
            self.total = seen + amount  # clean: guarded region

    async def bump_revalidated(self, amount):
        seen = self.total
        await asyncio.sleep(0)
        seen = self.total  # re-read after the await refreshes
        self.total = seen + amount  # clean: basis is post-await

    async def bump_before_await(self, amount):
        self.total = self.total + amount  # RMW completes before suspending
        await asyncio.sleep(0)  # clean: nothing pending
