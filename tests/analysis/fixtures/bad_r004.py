"""R004 fixture: an engine with ``feed`` but no batch/snapshot surface."""


class HalfEngine:
    def __init__(self, pattern):
        self.pattern = pattern

    def _process_event(self, event):
        return []

    def feed(self, element):  # line 11: all three findings anchor here
        return self._process_event(element)
