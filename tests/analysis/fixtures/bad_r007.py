"""R007 fixture: blocking I/O on the event loop, direct and transitive."""

import time


class BadIngest:
    def __init__(self, path):
        self.path = path
        self.accepted = []

    def _append(self, line):
        # Sync helper: blocking open is fine on a worker thread, but this
        # helper is called from a coroutine, so it runs on the loop.
        with self.path.open("a") as handle:  # line 14: transitive finding
            handle.write(line)

    async def handle(self, line):
        time.sleep(0.01)  # line 18: direct finding
        self.accepted.append(line)
        self._append(line)
