"""R008 fixture: fire-and-forget task; writer closed without wait_closed."""

import asyncio


class BadLifecycle:
    async def start(self):
        asyncio.get_running_loop().create_task(self._tick())  # line 8: discarded

    async def _tick(self):
        await asyncio.sleep(1)

    async def farewell(self, writer: asyncio.StreamWriter):
        writer.write(b"bye\n")
        await writer.drain()
        writer.close()  # line 16: no wait_closed in this function
