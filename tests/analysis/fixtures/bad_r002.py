"""R002 fixture: wall-clock read and print on the feed path."""

import time


class ImpureEngine:
    def __init__(self):
        self._log = []

    def _process_event(self, event):
        return []

    def feed(self, element):
        started = time.time()  # line 14: wall-clock read
        self._log.append(started)
        return self._helper(element)

    def _helper(self, element):
        print(element)  # line 19: console I/O, one hop from feed
        return []
