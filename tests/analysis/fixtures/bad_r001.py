"""R001 fixture: ``_cursor`` mutates on the feed path, never snapshotted."""


class BadSnapshotEngine:
    def __init__(self, pattern):
        self.pattern = pattern
        self._buffer = []
        self._cursor = 0  # line 8: the finding anchors here

    def _process_event(self, event):
        self._buffer.append(event)
        self._cursor += 1
        return []

    def _snapshot_state(self):
        return {"buffer": list(self._buffer)}

    def _restore_state(self, state):
        self._buffer = list(state["buffer"])
