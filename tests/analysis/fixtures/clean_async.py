"""Negative fixture: asyncio lifecycle code every async rule accepts."""

import asyncio


class CleanAsync:
    def __init__(self):
        self.total = 0
        self._lock = asyncio.Lock()
        self._task = None

    async def start(self):
        # Task handle retained: cancellable on stop (R008-clean).
        self._task = asyncio.get_running_loop().create_task(self._tick())

    async def _tick(self):
        await asyncio.sleep(0.1)

    async def stop(self):
        # Swap-before-await: no shared handle is read before a suspension
        # and written after one (R006-clean).
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def bump(self, amount):
        # Lock held across the read/await/write section (R006-clean).
        async with self._lock:
            seen = self.total
            await asyncio.sleep(0)
            self.total = seen + amount

    async def farewell(self, writer: asyncio.StreamWriter):
        # Close is paired with wait_closed (R008-clean); StreamWriter
        # writes are sync-then-drain by design (not R007 vocabulary).
        writer.write(b"bye\n")
        await writer.drain()
        writer.close()
        await writer.wait_closed()
