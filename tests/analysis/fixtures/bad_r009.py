"""R009 fixture: R001-clean by name, broken by flow.

``_cursor`` is *mentioned* by both sides of the round trip — the
snapshot method reads it, the restore method assigns it — so R001 is
satisfied.  But the read value never reaches the returned state dict,
and the restore assignment is a constant reset, so a crash-recovery
round trip silently zeroes the cursor.
"""


class BadRoundTrip:
    def __init__(self):
        self._items = []
        self._cursor = 0

    def advance(self, item):
        self._items.append(item)
        self._cursor += 1

    def snapshot(self):
        cursor = self._cursor  # line 21: read… then dropped (finding)
        state = {"items": list(self._items)}
        del cursor
        return state

    def restore(self, state):
        self._items = list(state["items"])
        self._cursor = 0  # line 28: reset, not derived (finding)
