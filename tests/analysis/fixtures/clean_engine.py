"""Negative fixture: an engine every rule accepts."""


class CleanEngine:
    def __init__(self, pattern):
        self.pattern = pattern
        self._buffer = []

    def _process_event(self, event):
        self._buffer.append(event)
        return []

    def feed(self, element):
        return self._process_event(element)

    def feed_batch(self, elements):
        out = []
        for element in elements:
            out.extend(self.feed(element))
        return out

    def feed_colbatch(self, batch, marks=None):
        out = []
        for element in batch.to_events():
            out.extend(self.feed(element))
            if marks is not None:
                marks.append(len(out))
        return out

    def snapshot(self):
        return {"buffer": list(self._buffer)}

    def restore(self, state):
        self._buffer = list(state["buffer"])

    def purge_through(self, horizon):
        self._buffer = [event for event in self._buffer if event[0] > horizon]
