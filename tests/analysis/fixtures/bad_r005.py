"""R005 fixture: purge mutates the container it is iterating."""


class LeakyStore:
    def __init__(self):
        self._events = []

    def purge_through(self, horizon):
        for event in self._events:
            if event[0] <= horizon:
                self._events.remove(event)  # line 11: skips survivors
