"""R003 fixture: set iteration on an output-producing path."""


class NondetEngine:
    def __init__(self):
        self._pending = set()

    def _process_event(self, event):
        self._pending.add(event)
        return []

    def _flush(self):
        out = []
        for item in self._pending:  # line 14: nondeterministic order
            out.append(item)
        return out
