"""Each rule fires on its bad-engine fixture — exact IDs and lines.

The fixtures under ``fixtures/`` are not collected by pytest (no
``test_`` prefix); they exist to be *analyzed*.  Line numbers asserted
here are pinned by comments inside the fixtures.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.rules import all_rules
from repro.analysis.rules.await_atomicity import AwaitAtomicity
from repro.analysis.rules.batch_parity import BatchParity
from repro.analysis.rules.blocking_async import BlockingInCoroutine
from repro.analysis.rules.determinism import Determinism
from repro.analysis.rules.hot_path_purity import HotPathPurity
from repro.analysis.rules.purge_safety import PurgeSafety
from repro.analysis.rules.snapshot_completeness import SnapshotCompleteness
from repro.analysis.rules.snapshot_dataflow import SnapshotDataflow
from repro.analysis.rules.task_hygiene import TaskHygiene

FIXTURES = Path(__file__).parent / "fixtures"


def analyze(fixture: str, rule):
    report = run_analysis([str(FIXTURES / fixture)], rules=[rule])
    assert not report.parse_errors
    return report.findings


def test_rule_catalogue_is_complete():
    assert [rule.rule_id for rule in all_rules()] == [
        "R001",
        "R002",
        "R003",
        "R004",
        "R005",
        "R006",
        "R007",
        "R008",
        "R009",
    ]


def test_r001_flags_unsnapshotted_attribute():
    findings = analyze("bad_r001.py", SnapshotCompleteness())
    assert [(f.rule, f.line, f.symbol) for f in findings] == [
        ("R001", 8, "BadSnapshotEngine._cursor")
    ]
    assert "'_cursor'" in findings[0].message


def test_r002_flags_clock_and_print_on_feed_path():
    findings = analyze("bad_r002.py", HotPathPurity())
    flagged = sorted((f.rule, f.line) for f in findings)
    assert flagged == [("R002", 14), ("R002", 19)]
    by_line = {f.line: f.message for f in findings}
    assert "time.time" in by_line[14]
    assert "print" in by_line[19]
    # The transitive finding reports how the hot path reaches it.
    assert "feed" in by_line[19]


def test_r003_flags_set_iteration_on_output_path():
    findings = analyze("bad_r003.py", Determinism())
    assert [(f.rule, f.line) for f in findings] == [("R003", 14)]
    assert "sorted" in findings[0].message


def test_r004_flags_missing_protocol_methods():
    findings = analyze("bad_r004.py", BatchParity())
    assert sorted(f.symbol for f in findings) == [
        "HalfEngine.feed_batch",
        "HalfEngine.feed_colbatch",
        "HalfEngine.restore",
        "HalfEngine.snapshot",
    ]
    assert {(f.rule, f.line) for f in findings} == {("R004", 11)}


def test_r005_flags_mutation_while_iterating():
    findings = analyze("bad_r005.py", PurgeSafety())
    assert [(f.rule, f.line) for f in findings] == [("R005", 11)]
    assert findings[0].symbol.endswith("LeakyStore.purge_through")
    assert "_events" in findings[0].message


def test_r006_flags_stale_writes_across_awaits():
    findings = analyze("bad_r006.py", AwaitAtomicity())
    flagged = sorted((f.line, f.message) for f in findings)
    assert [line for line, _ in flagged] == [15, 18]
    assert "'self.total'" in flagged[0][1]
    assert "read on line 13" in flagged[0][1]
    assert "await on line 14" in flagged[0][1]
    assert "'self.hits'" in flagged[1][1]


def test_r007_flags_blocking_calls_direct_and_transitive():
    findings = analyze("bad_r007.py", BlockingInCoroutine())
    by_line = {f.line: f.message for f in findings}
    assert sorted(by_line) == [14, 18]
    assert ".open" in by_line[14]
    # Transitive finding explains how the coroutine reaches the helper.
    assert "via 1 call" in by_line[14]
    assert "time.sleep" in by_line[18]


def test_r008_flags_discarded_task_and_unawaited_close():
    findings = analyze("bad_r008.py", TaskHygiene())
    by_line = {f.line: f.message for f in findings}
    assert sorted(by_line) == [8, 16]
    assert "create_task" in by_line[8]
    assert "wait_closed" in by_line[16]


def test_r009_flags_flow_broken_round_trip():
    findings = analyze("bad_r009.py", SnapshotDataflow())
    by_line = {f.line: f.message for f in findings}
    assert sorted(by_line) == [21, 28]
    # Capture side: the read value never reaches the returned state.
    assert "'_cursor'" in by_line[21]
    # Restore side: the assignment is not derived from the state payload.
    assert "'_cursor'" in by_line[28]


def test_r009_is_silent_where_r001_already_fires():
    """A fully missing attribute is R001 territory; R009 must not
    double-report it."""
    findings = analyze("bad_r001.py", SnapshotDataflow())
    assert findings == []


@pytest.mark.parametrize("rule", all_rules(), ids=lambda r: r.rule_id)
def test_clean_engine_passes_every_rule(rule):
    assert analyze("clean_engine.py", rule) == []


@pytest.mark.parametrize("rule", all_rules(), ids=lambda r: r.rule_id)
def test_clean_async_passes_every_rule(rule):
    assert analyze("clean_async.py", rule) == []


def test_full_run_over_fixture_dir_counts_every_rule():
    report = run_analysis([str(FIXTURES)])
    rules_seen = {finding.rule for finding in report.findings}
    assert rules_seen == {
        "R001",
        "R002",
        "R003",
        "R004",
        "R005",
        "R006",
        "R007",
        "R008",
        "R009",
    }
    assert report.checked_files == 11


def test_r001_catches_field_dropped_from_real_engine(tmp_path):
    """The ISSUE acceptance check, as a regression test: removing one
    field from OutOfOrderEngine._snapshot_state must re-introduce an
    R001 finding that names the attribute."""
    engine_py = Path(__file__).parents[2] / "src" / "repro" / "core" / "engine.py"
    source = engine_py.read_text(encoding="utf-8")
    needle = '"clock": self.clock.snapshot_state(),'
    assert needle in source
    mutated = tmp_path / "engine.py"
    mutated.write_text(source.replace(needle, ""), encoding="utf-8")
    findings = run_analysis([str(mutated)], rules=[SnapshotCompleteness()]).findings
    assert any(
        f.rule == "R001" and "'clock'" in f.message for f in findings
    ), findings
