"""Each rule fires on its bad-engine fixture — exact IDs and lines.

The fixtures under ``fixtures/`` are not collected by pytest (no
``test_`` prefix); they exist to be *analyzed*.  Line numbers asserted
here are pinned by comments inside the fixtures.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.rules import all_rules
from repro.analysis.rules.batch_parity import BatchParity
from repro.analysis.rules.determinism import Determinism
from repro.analysis.rules.hot_path_purity import HotPathPurity
from repro.analysis.rules.purge_safety import PurgeSafety
from repro.analysis.rules.snapshot_completeness import SnapshotCompleteness

FIXTURES = Path(__file__).parent / "fixtures"


def analyze(fixture: str, rule):
    report = run_analysis([str(FIXTURES / fixture)], rules=[rule])
    assert not report.parse_errors
    return report.findings


def test_rule_catalogue_is_complete():
    assert [rule.rule_id for rule in all_rules()] == [
        "R001",
        "R002",
        "R003",
        "R004",
        "R005",
    ]


def test_r001_flags_unsnapshotted_attribute():
    findings = analyze("bad_r001.py", SnapshotCompleteness())
    assert [(f.rule, f.line, f.symbol) for f in findings] == [
        ("R001", 8, "BadSnapshotEngine._cursor")
    ]
    assert "'_cursor'" in findings[0].message


def test_r002_flags_clock_and_print_on_feed_path():
    findings = analyze("bad_r002.py", HotPathPurity())
    flagged = sorted((f.rule, f.line) for f in findings)
    assert flagged == [("R002", 14), ("R002", 19)]
    by_line = {f.line: f.message for f in findings}
    assert "time.time" in by_line[14]
    assert "print" in by_line[19]
    # The transitive finding reports how the hot path reaches it.
    assert "feed" in by_line[19]


def test_r003_flags_set_iteration_on_output_path():
    findings = analyze("bad_r003.py", Determinism())
    assert [(f.rule, f.line) for f in findings] == [("R003", 14)]
    assert "sorted" in findings[0].message


def test_r004_flags_missing_protocol_methods():
    findings = analyze("bad_r004.py", BatchParity())
    assert sorted(f.symbol for f in findings) == [
        "HalfEngine.feed_batch",
        "HalfEngine.restore",
        "HalfEngine.snapshot",
    ]
    assert {(f.rule, f.line) for f in findings} == {("R004", 11)}


def test_r005_flags_mutation_while_iterating():
    findings = analyze("bad_r005.py", PurgeSafety())
    assert [(f.rule, f.line) for f in findings] == [("R005", 11)]
    assert findings[0].symbol.endswith("LeakyStore.purge_through")
    assert "_events" in findings[0].message


@pytest.mark.parametrize("rule", all_rules(), ids=lambda r: r.rule_id)
def test_clean_engine_passes_every_rule(rule):
    assert analyze("clean_engine.py", rule) == []


def test_full_run_over_fixture_dir_counts_every_rule():
    report = run_analysis([str(FIXTURES)])
    rules_seen = {finding.rule for finding in report.findings}
    assert rules_seen == {"R001", "R002", "R003", "R004", "R005"}
    assert report.checked_files == 6


def test_r001_catches_field_dropped_from_real_engine(tmp_path):
    """The ISSUE acceptance check, as a regression test: removing one
    field from OutOfOrderEngine._snapshot_state must re-introduce an
    R001 finding that names the attribute."""
    engine_py = Path(__file__).parents[2] / "src" / "repro" / "core" / "engine.py"
    source = engine_py.read_text(encoding="utf-8")
    needle = '"clock": self.clock.snapshot_state(),'
    assert needle in source
    mutated = tmp_path / "engine.py"
    mutated.write_text(source.replace(needle, ""), encoding="utf-8")
    findings = run_analysis([str(mutated)], rules=[SnapshotCompleteness()]).findings
    assert any(
        f.rule == "R001" and "'clock'" in f.message for f in findings
    ), findings
