"""Unit tests for the intra-function dataflow engine.

These exercise :mod:`repro.analysis.dataflow` directly — CFG shape,
the R006 stale-write fixpoint, and the R009 def-use closures — on
small inline sources, independent of the rule layer.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.dataflow import (
    AWAIT,
    READ,
    WRITE,
    attr_reads_reaching_return,
    build_cfg,
    restore_derivations,
    stale_attr_writes,
    walk_scope,
)


def fn(source: str, name: str = None):
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if name is None or node.name == name:
                return node
    raise AssertionError(f"no function {name!r} in source")


def events(cfg, kind=None):
    out = []
    for block in cfg.blocks:
        for event in block.events:
            if kind is None or event.kind == kind:
                out.append(event)
    return out


# -- CFG construction -------------------------------------------------------------


def test_walk_scope_skips_nested_functions():
    node = fn(
        """
        def outer(self):
            x = self.a
            def inner():
                return self.b
            return x
        """,
        "outer",
    )
    attrs = {
        sub.attr
        for sub in walk_scope(node)
        if isinstance(sub, ast.Attribute)
    }
    assert "a" in attrs
    assert "b" not in attrs


def test_branch_produces_two_successors():
    cfg = build_cfg(
        fn(
            """
            async def f(self):
                if self.flag:
                    self.a = 1
                else:
                    self.b = 2
                self.c = 3
            """
        )
    )
    branching = [b for b in cfg.blocks if len(b.successors) >= 2]
    assert branching, "if/else should fork the CFG"
    # Both arms eventually reach the join writing self.c.
    writes = {e.attr for e in events(cfg, WRITE)}
    assert writes == {"a", "b", "c"}


def test_loop_has_back_edge():
    cfg = build_cfg(
        fn(
            """
            async def f(self):
                while self.more:
                    self.n = self.n + 1
            """
        )
    )
    assert any(
        succ <= block.index
        for block in cfg.blocks
        for succ in block.successors
    ), "while loop should produce a back edge"


def test_await_emits_suspension_event():
    cfg = build_cfg(
        fn(
            """
            async def f(self):
                await self.other()
            """
        )
    )
    assert len(events(cfg, AWAIT)) == 1


def test_async_with_lock_marks_events_guarded():
    cfg = build_cfg(
        fn(
            """
            async def f(self):
                async with self._lock:
                    seen = self.total
                    await self.pause()
                self.done = True
            """
        )
    )
    by_attr = {e.attr: e for e in events(cfg, READ) if e.attr == "total"}
    assert by_attr["total"].guarded
    done = [e for e in events(cfg, WRITE) if e.attr == "done"]
    assert not done[0].guarded


# -- R006: stale writes across awaits ----------------------------------------------


def stale(source: str, name: str = None):
    return stale_attr_writes(fn(source, name))


def test_read_await_write_fires():
    found = stale(
        """
        async def f(self):
            seen = self.total
            await self.pause()
            self.total = seen + 1
        """
    )
    # Line 1 is the leading blank of the triple-quoted source.
    assert [(v.attr, v.read_line, v.await_line, v.write_line) for v in found] == [
        ("total", 3, 4, 5)
    ]


def test_reread_after_await_is_clean():
    assert (
        stale(
            """
            async def f(self):
                seen = self.total
                await self.pause()
                seen = self.total
                self.total = seen + 1
            """
        )
        == []
    )


def test_write_before_await_is_clean():
    assert (
        stale(
            """
            async def f(self):
                self.total = self.total + 1
                await self.pause()
            """
        )
        == []
    )


def test_lock_guarded_section_is_clean():
    assert (
        stale(
            """
            async def f(self):
                async with self._lock:
                    seen = self.total
                    await self.pause()
                    self.total = seen + 1
            """
        )
        == []
    )


def test_await_on_only_one_branch_still_fires():
    found = stale(
        """
        async def f(self):
            seen = self.total
            if self.slow:
                await self.pause()
            self.total = seen + 1
        """
    )
    assert [v.attr for v in found] == ["total"]


def test_await_inside_loop_reaches_write_after_it():
    found = stale(
        """
        async def f(self):
            seen = self.total
            for item in self.items:
                await self.push(item)
            self.total = seen + 1
        """
    )
    assert [v.attr for v in found] == ["total"]


def test_write_in_finally_sees_await_in_try():
    found = stale(
        """
        async def f(self):
            seen = self.total
            try:
                await self.pause()
            finally:
                self.total = seen + 1
        """
    )
    assert [v.attr for v in found] == ["total"]


def test_augassign_with_await_operand_fires():
    found = stale(
        """
        async def f(self):
            self.hits += await self.cost()
        """
    )
    assert [v.attr for v in found] == ["hits"]


def test_mutation_of_stale_collection_fires():
    found = stale(
        """
        async def f(self, item):
            if item in self.pending:
                await self.pause()
                self.pending.remove(item)
        """
    )
    assert [v.attr for v in found] == ["pending"]


def test_nested_function_body_is_opaque():
    assert (
        stale(
            """
            async def f(self):
                def callback():
                    self.total = self.total + 1
                await self.pause()
            """,
            "f",
        )
        == []
    )


def test_swap_before_await_is_clean():
    # The shutdown idiom used throughout repro.ingest.server.stop().
    assert (
        stale(
            """
            async def f(self):
                task, self._task = self._task, None
                if task is not None:
                    task.cancel()
                    await task
            """
        )
        == []
    )


# -- R009 capture side: reads reaching the return ---------------------------------


def test_direct_return_read_is_captured():
    captured = attr_reads_reaching_return(
        fn(
            """
            def snapshot(self):
                return {"n": self.n}
            """
        )
    )
    assert "n" in captured


def test_read_into_dropped_local_is_not_captured():
    captured = attr_reads_reaching_return(
        fn(
            """
            def snapshot(self):
                cursor = self._cursor
                return {"items": list(self._items)}
            """
        )
    )
    assert "_items" in captured
    assert "_cursor" not in captured


def test_chained_locals_flow_to_return():
    captured = attr_reads_reaching_return(
        fn(
            """
            def snapshot(self):
                raw = self._buf
                state = {"buf": list(raw)}
                return state
            """
        )
    )
    assert "_buf" in captured


def test_store_into_parameter_escapes():
    captured = attr_reads_reaching_return(
        fn(
            """
            def fill(self, out):
                out["x"] = self._x
            """
        )
    )
    assert "_x" in captured


def test_loop_target_feeds_from_iterable():
    captured = attr_reads_reaching_return(
        fn(
            """
            def snapshot(self):
                state = {}
                for name, metric in self._metrics.items():
                    state[name] = metric.value
                return state
            """
        )
    )
    assert "_metrics" in captured


def test_accumulator_call_feeds_receiver():
    captured = attr_reads_reaching_return(
        fn(
            """
            def snapshot(self):
                state = {}
                state.update({"n": self.n})
                return state
            """
        )
    )
    assert "n" in captured


# -- R009 restore side: derivations from the payload ------------------------------


def test_subscript_store_is_derived():
    summary = restore_derivations(
        fn(
            """
            def restore(self, state):
                self._items = list(state["items"])
            """
        )
    )
    assert "_items" in summary.derived
    assert "_items" in summary.touched


def test_constant_reset_is_touched_not_derived():
    summary = restore_derivations(
        fn(
            """
            def restore(self, state):
                self._items = list(state["items"])
                self._cursor = 0
            """
        )
    )
    assert "_cursor" in summary.touched
    assert "_cursor" not in summary.derived


def test_rebuild_loop_is_derived():
    summary = restore_derivations(
        fn(
            """
            def restore(self, state):
                self._events = {}
                for key, value in state["events"]:
                    self._events[key] = value
            """
        )
    )
    assert "_events" in summary.derived


def test_derivation_propagates_through_restored_attr():
    # The derived-index idiom from repro.ingest.admission.
    summary = restore_derivations(
        fn(
            """
            def restore(self, state):
                self._order = deque(state["order"])
                self._ids = set(self._order)
            """
        )
    )
    assert summary.derived >= {"_order", "_ids"}


def test_component_handoff_is_derived():
    summary = restore_derivations(
        fn(
            """
            def restore(self, state):
                self.clock.restore_state(state["clock"])
            """
        )
    )
    assert "clock" in summary.derived


def test_local_receiver_handoff_derives_store():
    # The rebuilt-workers idiom from repro.streams.partition.
    summary = restore_derivations(
        fn(
            """
            def restore(self, state):
                rebuilt = []
                for payload in state["workers"]:
                    stats = EngineStats()
                    stats.restore_from(payload)
                    rebuilt.append(stats)
                self._worker_stats = rebuilt
            """
        )
    )
    assert "_worker_stats" in summary.derived
