"""Latency metrics (repro.metrics.latency)."""

import pytest

from repro import Event, OutOfOrderEngine, ReorderingEngine, seq
from repro.metrics import (
    LatencySummary,
    arrival_latencies,
    occurrence_latencies,
    summarize_arrival_latency,
    summarize_occurrence_latency,
)
from repro.metrics.latency import percentile_index
from helpers import make_events


class TestPercentileIndex:
    """ceil(q*n)-1 rank — the library-wide quantile convention."""

    def test_single_element(self):
        # n=1: every quantile must land on the only element.
        for q in (0.01, 0.5, 0.99, 1.0):
            assert percentile_index(1, q) == 0

    def test_two_elements_median_is_lower(self):
        # n=2, q=0.5: ceil(1)-1 = 0, the lower of the two.  The old
        # floor rank int(0.5*2)=1 picked the max instead.
        assert percentile_index(2, 0.5) == 0

    def test_two_elements_top_quantile_is_max(self):
        assert percentile_index(2, 1.0) == 1

    def test_full_quantile_is_last_index(self):
        for n in (1, 2, 3, 10, 100):
            assert percentile_index(n, 1.0) == n - 1

    def test_index_always_in_range(self):
        for n in range(1, 20):
            for q in (0.001, 0.25, 0.5, 0.9, 0.99, 1.0):
                assert 0 <= percentile_index(n, q) < n

    def test_monotone_in_quantile(self):
        for n in (2, 5, 17):
            ranks = [percentile_index(n, q) for q in (0.1, 0.5, 0.9, 1.0)]
            assert ranks == sorted(ranks)


class TestLatencySummary:
    def test_empty_sample(self):
        summary = LatencySummary([])
        assert summary.count == 0
        assert summary.mean == summary.p50 == summary.max == 0.0

    def test_single_value(self):
        summary = LatencySummary([7])
        assert summary.mean == 7
        assert summary.p50 == 7
        assert summary.p99 == 7
        assert summary.max == 7

    def test_percentiles_ordered(self):
        summary = LatencySummary(range(100))
        assert summary.p50 <= summary.p90 <= summary.p99 <= summary.max
        assert summary.p50 == 49
        assert summary.max == 99

    def test_as_dict(self):
        snapshot = LatencySummary([1, 2, 3]).as_dict()
        assert set(snapshot) == {"count", "mean", "p50", "p90", "p99", "max"}

    def test_unsorted_input_handled(self):
        assert LatencySummary([5, 1, 3]).max == 5


class TestArrivalLatency:
    def test_immediate_emission_is_zero(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        arrival = make_events("A1 B2")
        engine.run(arrival)
        assert arrival_latencies(engine.emissions, arrival) == [0]

    def test_reorder_buffer_adds_latency(self, plain_seq2):
        arrival = make_events("A1 B2") + [Event("Z", ts) for ts in range(3, 30)]
        engine = ReorderingEngine(plain_seq2, k=10)
        engine.run(arrival)
        latencies = arrival_latencies(engine.emissions, arrival)
        assert len(latencies) == 1
        assert latencies[0] > 0  # held until clock passed 2 + K

    def test_negation_hold_counted(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        arrival = make_events("A1 C5") + [Event("Z", ts) for ts in range(6, 30)]
        engine = OutOfOrderEngine(pattern, k=10)
        engine.run(arrival)
        latencies = arrival_latencies(engine.emissions, arrival)
        assert latencies and latencies[0] > 0

    def test_summary_wrapper(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        arrival = make_events("A1 B2 A3 B4")
        engine.run(arrival)
        summary = summarize_arrival_latency(engine.emissions, arrival)
        assert summary.count == len(engine.results)
        assert summary.mean == 0.0


class TestOccurrenceLatency:
    def test_zero_when_emitted_at_match_end(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(make_events("A1 B2"))
        assert occurrence_latencies(engine.emissions) == [0]

    def test_positive_when_clock_moved_on(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = OutOfOrderEngine(pattern, k=5)
        engine.run(make_events("A1 C5 Z40"))
        latencies = occurrence_latencies(engine.emissions)
        assert latencies and latencies[0] == 35  # emitted at clock 40, end_ts 5

    def test_summary_wrapper(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(make_events("A1 B2"))
        assert summarize_occurrence_latency(engine.emissions).count == 1
