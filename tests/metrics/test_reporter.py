"""Reporter rendering: render_series, render_table edge cases, histograms."""

from __future__ import annotations

from repro.metrics import render_histogram, render_series, render_table
from repro.obs.metrics import Histogram


class TestRenderSeries:
    def test_columns_are_x_label_plus_series_names(self):
        text = render_series(
            "fig 1", "k", [1, 2], {"ooo": [10, 20], "inorder": [30, 40]}
        )
        lines = text.splitlines()
        header = lines[3].split()
        assert header == ["k", "ooo", "inorder"]

    def test_rows_align_right_under_headers(self):
        text = render_series(
            "latency", "rate", [0.1, 0.25], {"p99": [5, 12345]}
        )
        lines = text.splitlines()
        first, second = lines[4], lines[5]
        # Cells are right-justified into equal-width columns, so both
        # rows render to the same length and values share a right edge.
        assert len(first) == len(second)
        assert first.startswith("0.100")
        assert second.startswith("0.250")
        assert first.endswith("     5")
        assert second.endswith("12,345")

    def test_empty_series_renders_header_only(self):
        text = render_series("empty", "x", [], {"y": []})
        lines = text.splitlines()
        assert lines[1] == "empty"
        assert lines[3].split() == ["x", "y"]
        # Nothing after the header row (just the trailing newline).
        assert lines[4:] == []
        assert text.endswith("\n")

    def test_note_line(self):
        text = render_series(
            "fig", "x", [1], {"y": [2]}, note="lower is better"
        )
        assert "note: lower is better" in text.splitlines()
        without = render_series("fig", "x", [1], {"y": [2]})
        assert not any(line.startswith("note:") for line in without.splitlines())


class TestRenderTableEdgeCases:
    def test_single_column(self):
        text = render_table("one", ["only"], [["a"], ["bb"], ["ccc"]])
        lines = text.splitlines()
        assert lines[3] == "only"
        # Single column: no separator padding, rows right-justified to width.
        assert lines[4:7] == ["   a", "  bb", " ccc"]

    def test_single_column_title_wider_than_data(self):
        text = render_table("a very long title indeed", ["c"], [[1]])
        lines = text.splitlines()
        assert lines[0] == "=" * len("a very long title indeed")
        assert lines[2] == "-" * len("a very long title indeed")

    def test_no_rows(self):
        text = render_table("t", ["a", "b"], [])
        lines = text.splitlines()
        assert lines[3].split() == ["a", "b"]
        assert lines[4:] == []


class TestRenderHistogram:
    def test_buckets_and_summary_note(self):
        histogram = Histogram("repro_lat", "latency", buckets=(1, 5))
        for value in (0, 3, 9):
            histogram.observe(value)
        text = render_histogram("latency (ts units)", histogram)
        assert "<= 1" in text
        assert "<= 5" in text
        assert "<= +Inf" in text
        note = [line for line in text.splitlines() if line.startswith("note:")][0]
        assert "count=3" in note
        assert "mean=4.00" in note
        assert "p50=5" in note

    def test_extra_note_is_appended(self):
        histogram = Histogram("h", buckets=(1,))
        histogram.observe(1)
        text = render_histogram("t", histogram, note="k=5")
        assert "k=5" in [line for line in text.splitlines() if line.startswith("note:")][0]
