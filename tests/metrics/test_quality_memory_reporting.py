"""Quality, memory, throughput and reporting metrics (repro.metrics)."""

import pytest

from repro import Event, OutOfOrderEngine, PurgePolicy, seq
from repro.core.pattern import Match
from repro.metrics import (
    QualityReport,
    RunTiming,
    StateProbe,
    compare,
    compare_keys,
    format_cell,
    render_series,
    render_table,
    repeat_timed,
    timed_run,
)
from helpers import make_events


class TestQualityReport:
    def test_perfect(self):
        truth = {("q", (1, 2)), ("q", (3, 4))}
        report = compare_keys(truth, truth)
        assert report.recall == 1.0
        assert report.precision == 1.0
        assert report.exact
        assert report.f1 == 1.0

    def test_missed(self):
        truth = {("q", (1,)), ("q", (2,))}
        report = compare_keys(truth, {("q", (1,))})
        assert report.recall == 0.5
        assert report.precision == 1.0
        assert report.missed == 1

    def test_spurious(self):
        truth = {("q", (1,))}
        report = compare_keys(truth, {("q", (1,)), ("q", (9,))})
        assert report.precision == 0.5
        assert report.spurious == 1

    def test_empty_truth_and_empty_produced(self):
        report = compare_keys(set(), set())
        assert report.recall == 1.0 and report.precision == 1.0

    def test_empty_produced_nonempty_truth(self):
        report = compare_keys({("q", (1,))}, set())
        assert report.recall == 0.0
        assert report.precision == 0.0

    def test_f1_zero_when_nothing_right(self):
        report = compare_keys({("q", (1,))}, {("q", (2,))})
        assert report.f1 == 0.0

    def test_compare_match_objects(self, plain_seq2):
        a, b = Event("A", 1), Event("B", 2)
        truth = [Match(plain_seq2, [a, b])]
        report = compare(truth, truth)
        assert report.exact


class TestStateProbe:
    def test_samples_every_stride(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0, purge=PurgePolicy.none())
        probe = StateProbe(engine, stride=10)
        probe.feed_many(Event("A", ts) for ts in range(1, 101))
        assert len(probe.samples) == 10
        probe.close()
        assert len(probe.samples) == 11

    def test_growth_visible_without_purge(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0, purge=PurgePolicy.none())
        probe = StateProbe(engine, stride=25)
        probe.feed_many(Event("A", ts) for ts in range(1, 501))
        sizes = [size for __, size in probe.samples]
        assert sizes == sorted(sizes)
        assert probe.peak == 500

    def test_mean_between_min_and_max(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        probe = StateProbe(engine, stride=5)
        probe.feed_many(Event("A", ts) for ts in range(1, 101))
        sizes = [s for __, s in probe.samples]
        assert min(sizes) <= probe.mean <= max(sizes)

    def test_stride_validated(self, plain_seq2):
        with pytest.raises(ValueError):
            StateProbe(OutOfOrderEngine(plain_seq2), stride=0)


class TestThroughput:
    def test_timed_run_counts(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        timing = timed_run(engine, make_events("A1 B2 A3 B4"))
        assert timing.events == 4
        assert timing.matches == 3
        assert timing.seconds > 0
        assert timing.events_per_second > 0

    def test_repeat_timed_uses_fresh_engines(self, plain_seq2):
        events = make_events("A1 B2")
        timing = repeat_timed(lambda: OutOfOrderEngine(plain_seq2, k=0), events, repeats=3)
        assert timing.matches == 1

    def test_runtiming_zero_seconds(self):
        timing = RunTiming(10, 0.0, 1)
        assert timing.events_per_second == float("inf")


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            "My Table", ["name", "value"], [["alpha", 1], ["b", 22222]]
        )
        assert "My Table" in text
        assert "alpha" in text and "22,222" in text  # large ints grouped
        lines = text.splitlines()
        assert len(lines) >= 6

    def test_render_table_note(self):
        text = render_table("T", ["a"], [[1]], note="hello")
        assert "note: hello" in text

    def test_render_series_columns(self):
        text = render_series(
            "Figure 1", "k", [1, 2], {"ooo": [10, 20], "reorder": [30, 40]}
        )
        assert "ooo" in text and "reorder" in text
        assert "Figure 1" in text

    def test_format_cell_variants(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(0.0) == "0"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(12.5) == "12.5"
        assert format_cell(123456.0) == "123,456"
        assert format_cell(1_000_000) == "1,000,000"
        assert format_cell("text") == "text"
        assert format_cell(7) == "7"
