"""Speculative emission with retraction (repro.core.speculate + engine mode).

The contract under test: speculation is a strictly additive side
channel.  The sealed ``results``/``emissions`` streams of a speculative
engine are byte-identical to a pessimistic run of the same stream, the
speculative stream is totally ordered by shared sequence ids, and
applying every retraction to it converges on exactly the sealed result
set (``SpeculationLog.net_keys() == engine.result_set()`` after close).
"""

import random

import pytest

from repro import (
    ConfigurationError,
    Event,
    OutOfOrderEngine,
    Punctuation,
    SnapshotError,
    parse,
    seq,
)
from repro.core.speculate import (
    RETRACT_EMPTY_KLEENE,
    RETRACT_NEGATION,
    RETRACT_REVISED,
    RETRACTION_CAUSES,
    SpeculationLog,
    positive_key,
)
from repro.core.pattern import Match
from helpers import bounded_shuffle

NEG = parse(
    "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 20"
)
KLEENE = parse("PATTERN SEQ(A a, B+ bs, C c) WITHIN 10")
PLAIN = parse("PATTERN SEQ(A a, B b) WITHIN 10")


def _match(pattern, *events, collections=None):
    return Match(pattern, events, collections=collections)


def neg_trace(n=300, seed=0, k=8):
    rng = random.Random(seed)
    events = [
        Event(rng.choice("ABCD"), ts, {"x": rng.randint(0, 2)})
        for ts in range(1, n + 1)
    ]
    return bounded_shuffle(events, k=k, seed=seed + 1)


class TestSpeculationLog:
    def test_speculate_then_confirming_seal(self):
        log = SpeculationLog()
        match = _match(PLAIN, Event("A", 1), Event("B", 2))
        record = log.speculate(match, arrival=5, clock=3)
        assert record.seq == 0 and record.epoch == 0
        assert log.open_count == 1 and log.is_open(match)
        outcome = log.seal(match, arrival=9, clock=12)
        assert outcome.record is record
        assert outcome.retraction is None and not outcome.fresh
        assert log.open_count == 0
        assert log.net_keys() == {match.key()}

    def test_seal_of_revised_binding_retracts_and_reemits(self):
        log = SpeculationLog()
        a, b1, b2, c = Event("A", 1), Event("B", 2), Event("B", 3), Event("C", 4)
        early = _match(KLEENE, a, c, collections={"bs": (b1,)})
        log.speculate(early, arrival=4, clock=4)
        sealed = _match(KLEENE, a, c, collections={"bs": (b1, b2)})
        assert positive_key(early) == positive_key(sealed)
        assert early.key() != sealed.key()
        outcome = log.seal(sealed, arrival=9, clock=9)
        assert outcome.fresh
        assert outcome.retraction is not None
        assert outcome.retraction.cause == RETRACT_REVISED
        assert outcome.retraction.ref_seq == 0
        # The stream stays totally ordered: emission, retraction, emission.
        assert [r.seq for r in log.emissions] == [0, 2]
        assert [r.seq for r in log.retractions] == [1]
        assert log.net_keys() == {sealed.key()}

    def test_seal_of_never_speculated_match_is_fresh(self):
        log = SpeculationLog()
        match = _match(PLAIN, Event("A", 1), Event("B", 2))
        outcome = log.seal(match, arrival=3, clock=3)
        assert outcome.fresh and outcome.retraction is None
        assert log.net_keys() == {match.key()}

    def test_retract_open_record(self):
        log = SpeculationLog()
        match = _match(PLAIN, Event("A", 1), Event("B", 2))
        log.speculate(match, arrival=2, clock=2)
        retraction = log.retract(match, RETRACT_NEGATION, arrival=7, clock=9)
        assert retraction is not None and retraction.cause == RETRACT_NEGATION
        assert retraction.ref_seq == 0 and retraction.seq == 1
        assert log.net_keys() == set()
        assert log.retraction_rate() == 1.0

    def test_retract_unknown_match_is_none(self):
        log = SpeculationLog()
        match = _match(PLAIN, Event("A", 1), Event("B", 2))
        assert log.retract(match, RETRACT_NEGATION, arrival=1, clock=1) is None
        assert log.retractions == []

    def test_causes_are_distinct(self):
        assert len(set(RETRACTION_CAUSES)) == 3
        assert RETRACT_EMPTY_KLEENE in RETRACTION_CAUSES

    def test_snapshot_roundtrip_preserves_open_records(self):
        from repro.core import snapshot as snapshots

        log = SpeculationLog()
        sealed = _match(PLAIN, Event("A", 1), Event("B", 2))
        still_open = _match(PLAIN, Event("A", 3), Event("B", 4))
        log.speculate(sealed, arrival=2, clock=2)
        log.seal(sealed, arrival=3, clock=5)
        log.speculate(still_open, arrival=4, clock=5)
        log.epoch = 2
        log.enabled = False
        state = log.snapshot_state(snapshots.encode_match)

        restored = SpeculationLog()
        restored.restore_state(
            state, lambda blob: snapshots.decode_match(PLAIN, blob)
        )
        assert restored.epoch == 2 and restored.enabled is False
        assert restored.open_count == 1
        assert restored.is_open(still_open)
        assert [r.seq for r in restored.emissions] == [r.seq for r in log.emissions]
        assert restored.net_keys() == log.net_keys()
        # The restored log keeps sequencing where the original left off.
        outcome = restored.seal(still_open, arrival=9, clock=9)
        assert not outcome.fresh
        assert restored._next_seq == log._next_seq


class TestSpeculativeEngine:
    def test_sealed_output_byte_identical_to_pessimistic(self):
        stream = neg_trace()
        plain = OutOfOrderEngine(NEG, k=8)
        spec = OutOfOrderEngine(NEG, k=8, speculative=True)
        for engine in (plain, spec):
            engine.feed_many(stream)
            engine.close()
        assert [(m.key(), m.detected_at) for m in spec.results] == [
            (m.key(), m.detected_at) for m in plain.results
        ]
        assert [(r.emitted_seq, r.emitted_clock) for r in spec.emissions] == [
            (r.emitted_seq, r.emitted_clock) for r in plain.emissions
        ]
        # The two speculative counters are additive; every pessimistic
        # counter — including predicate/store work — matches exactly.
        spec_stats = spec.stats.as_dict()
        plain_stats = plain.stats.as_dict()
        assert spec_stats["speculative_emitted"] > 0
        for counter in ("speculative_emitted", "retractions_issued"):
            spec_stats[counter] = plain_stats[counter]
        assert spec_stats == plain_stats

    def test_speculative_stream_converges_to_sealed_results(self):
        engine = OutOfOrderEngine(NEG, k=8, speculative=True)
        engine.feed_many(neg_trace(seed=5))
        engine.close()
        assert engine.speculation.open_count == 0
        assert engine.speculation.net_keys() == engine.result_set()

    def test_late_negative_triggers_retraction(self):
        engine = OutOfOrderEngine(NEG, k=6, speculative=True)
        a = Event("A", 10, {"x": 1})
        c = Event("C", 12, {"x": 1})
        b_late = Event("B", 11, {"x": 1})  # occurs inside the bracket
        engine.feed(a)
        engine.feed(c)  # match constructs, bracket unsealed -> speculates
        assert engine.stats.speculative_emitted == 1
        assert engine.speculation.open_count == 1
        engine.feed(b_late)  # arrives late but within K: violates at seal
        engine.close()
        assert engine.results == []
        assert engine.stats.retractions_issued == 1
        [retraction] = engine.speculation.retractions
        assert retraction.cause == RETRACT_NEGATION
        assert engine.speculation.net_keys() == set() == engine.result_set()

    def test_known_violated_bracket_suppresses_speculation(self):
        engine = OutOfOrderEngine(NEG, k=6, speculative=True)
        engine.feed(Event("A", 10, {"x": 1}))
        engine.feed(Event("B", 11, {"x": 1}))  # violation already stored
        engine.feed(Event("C", 12, {"x": 1}))
        engine.close()
        assert engine.stats.speculative_emitted == 0
        assert engine.stats.retractions_issued == 0
        assert engine.results == []

    def test_late_kleene_element_retracts_as_revised_binding(self):
        engine = OutOfOrderEngine(KLEENE, k=6, speculative=True)
        engine.feed(Event("A", 10))
        engine.feed(Event("B", 11))
        engine.feed(Event("C", 14))  # speculates with bs=(B@11,)
        assert engine.stats.speculative_emitted == 1
        engine.feed(Event("B", 12))  # late element revises the collection
        engine.close()
        [retraction] = engine.speculation.retractions
        assert retraction.cause == RETRACT_REVISED
        assert len(retraction.match.collections["bs"]) == 1
        assert len(engine.results) == 1
        assert len(engine.results[0].collections["bs"]) == 2
        assert engine.speculation.net_keys() == engine.result_set()

    def test_punctuation_advances_epoch(self):
        engine = OutOfOrderEngine(PLAIN, k=4, speculative=True)
        engine.feed(Event("A", 1))
        assert engine.speculation.epoch == 0
        engine.feed(Punctuation(1))
        assert engine.speculation.epoch == 1

    def test_snapshot_roundtrip_with_open_speculation(self):
        stream = neg_trace(seed=9)
        straight = OutOfOrderEngine(NEG, k=8, speculative=True)
        for element in stream:
            straight.feed(element)
        straight.close()

        interrupted = OutOfOrderEngine(NEG, k=8, speculative=True)
        cut = len(stream) // 2
        for element in stream[:cut]:
            interrupted.feed(element)
        blob = interrupted.snapshot()
        resumed = OutOfOrderEngine(NEG, k=8, speculative=True)
        resumed.restore(blob)
        for element in stream[cut:]:
            resumed.feed(element)
        resumed.close()

        assert [m.key() for m in resumed.results] == [
            m.key() for m in straight.results
        ]
        assert [
            (r.seq, r.epoch, r.match.key()) for r in resumed.speculation.emissions
        ] == [
            (r.seq, r.epoch, r.match.key()) for r in straight.speculation.emissions
        ]
        assert [
            (r.seq, r.ref_seq, r.cause) for r in resumed.speculation.retractions
        ] == [
            (r.seq, r.ref_seq, r.cause) for r in straight.speculation.retractions
        ]
        assert resumed.stats.as_dict() == straight.stats.as_dict()

    def test_snapshot_refuses_mode_mismatch(self):
        spec = OutOfOrderEngine(NEG, k=8, speculative=True)
        spec.feed(Event("A", 1, {"x": 0}))
        blob = spec.snapshot()
        plain = OutOfOrderEngine(NEG, k=8)
        with pytest.raises(SnapshotError):
            plain.restore(blob)

    def test_plain_engine_has_no_speculation_surface(self):
        engine = OutOfOrderEngine(NEG, k=8)
        assert engine.speculation is None
        engine.feed_many(neg_trace(seed=2))
        engine.close()
        assert engine.stats.speculative_emitted == 0
        assert engine.stats.retractions_issued == 0
