"""Unit tests for sequence construction (repro.core.construction)."""

import pytest

from repro import Attr, Const, Event, Eq, Gt, Pattern, Step, seq
from repro.core.construction import SequenceConstructor
from repro.core.stacks import Instance, StackSet
from repro.core.stats import EngineStats


def build(pattern, placements):
    """placements: list of (step, ts, arrival[, attrs]) -> StackSet + instances."""
    stacks = StackSet(pattern.length)
    instances = []
    for placement in placements:
        step, ts, arrival = placement[:3]
        attrs = placement[3] if len(placement) > 3 else None
        instance = Instance(Event(pattern.positive_steps[step].etype, ts, attrs), arrival)
        stacks[step].insert(instance)
        instances.append(instance)
    return stacks, instances


class TestBasicConstruction:
    def test_simple_completion_on_last_step(self):
        pattern = seq("A a", "B b", within=10)
        stacks, instances = build(pattern, [(0, 1, 1), (1, 3, 2)])
        constructor = SequenceConstructor(pattern)
        matches = constructor.construct(stacks, 1, instances[1])
        assert len(matches) == 1
        assert [e.ts for e in matches[0].events] == [1, 3]

    def test_all_combinations_enumerated(self):
        pattern = seq("A a", "B b", within=10)
        stacks, instances = build(
            pattern, [(0, 1, 1), (0, 2, 2), (1, 5, 3)]
        )
        constructor = SequenceConstructor(pattern)
        matches = constructor.construct(stacks, 1, instances[2])
        assert len(matches) == 2

    def test_window_respected(self):
        pattern = seq("A a", "B b", within=5)
        stacks, instances = build(pattern, [(0, 1, 1), (1, 7, 2)])
        constructor = SequenceConstructor(pattern)
        assert constructor.construct(stacks, 1, instances[1]) == []

    def test_window_boundary_inclusive(self):
        pattern = seq("A a", "B b", within=5)
        stacks, instances = build(pattern, [(0, 1, 1), (1, 6, 2)])
        constructor = SequenceConstructor(pattern)
        assert len(constructor.construct(stacks, 1, instances[1])) == 1

    def test_strict_timestamp_order_required(self):
        pattern = seq("A a", "B b", within=10)
        stacks, instances = build(pattern, [(0, 3, 1), (1, 3, 2)])
        constructor = SequenceConstructor(pattern)
        assert constructor.construct(stacks, 1, instances[1]) == []

    def test_single_step_pattern(self):
        pattern = seq("A a", within=10)
        stacks, instances = build(pattern, [(0, 1, 1)])
        constructor = SequenceConstructor(pattern)
        matches = constructor.construct(stacks, 0, instances[0])
        assert len(matches) == 1


class TestExactlyOnce:
    def test_only_earlier_arrivals_participate(self):
        pattern = seq("A a", "B b", within=10)
        # B arrived (arrival 1) BEFORE A (arrival 2): triggering on B
        # must not see A; triggering on A must see B.
        stacks, instances = build(pattern, [(1, 3, 1), (0, 1, 2)])
        constructor = SequenceConstructor(pattern)
        b_trigger = constructor.construct(stacks, 1, instances[0])
        a_trigger = constructor.construct(stacks, 0, instances[1])
        assert b_trigger == []
        assert len(a_trigger) == 1

    def test_no_duplicates_across_triggers(self):
        pattern = seq("A a", "B b", "C c", within=20)
        # Arrival order: C(1), A(2), B(3) — fully inverted.
        stacks, instances = build(
            pattern, [(2, 9, 1), (0, 1, 2), (1, 5, 3)]
        )
        constructor = SequenceConstructor(pattern)
        all_matches = []
        for step, instance in ((2, instances[0]), (0, instances[1]), (1, instances[2])):
            all_matches.extend(constructor.construct(stacks, step, instance))
        assert len(all_matches) == 1
        assert all_matches[0].detected_at == 3  # emitted by the last arrival

    def test_mid_step_trigger_completes_existing_frame(self):
        pattern = seq("A a", "B b", "C c", within=20)
        # A and C arrived; late B completes the match.
        stacks, instances = build(
            pattern, [(0, 1, 1), (2, 9, 2), (1, 5, 3)]
        )
        constructor = SequenceConstructor(pattern)
        matches = constructor.construct(stacks, 1, instances[2])
        assert len(matches) == 1
        assert [e.ts for e in matches[0].events] == [1, 5, 9]


class TestPredicates:
    def test_staged_predicates_filter(self):
        pattern = Pattern(
            [Step("A", "a"), Step("B", "b")],
            where=[Eq(Attr("a", "x"), Attr("b", "x"))],
            within=10,
        )
        stacks, instances = build(
            pattern,
            [(0, 1, 1, {"x": 1}), (0, 2, 2, {"x": 2}), (1, 5, 3, {"x": 1})],
        )
        constructor = SequenceConstructor(pattern)
        matches = constructor.construct(stacks, 1, instances[2])
        assert len(matches) == 1
        assert matches[0].events[0]["x"] == 1

    def test_predicate_stats_counted(self):
        pattern = Pattern(
            [Step("A", "a"), Step("B", "b")],
            where=[Eq(Attr("a", "x"), Attr("b", "x"))],
            within=10,
        )
        stacks, instances = build(
            pattern, [(0, 1, 1, {"x": 1}), (1, 5, 2, {"x": 1})]
        )
        constructor = SequenceConstructor(pattern)
        stats = EngineStats()
        constructor.construct(stacks, 1, instances[1], stats)
        assert stats.predicate_evaluations >= 1
        assert stats.construction_triggers == 1
        assert stats.partial_combinations >= 1

    def test_constant_predicate_on_middle_step(self):
        pattern = Pattern(
            [Step("A", "a"), Step("B", "b"), Step("C", "c")],
            where=[Gt(Attr("b", "x"), Const(5))],
            within=20,
        )
        stacks, instances = build(
            pattern,
            [(0, 1, 1), (1, 3, 2, {"x": 3}), (1, 4, 3, {"x": 9}), (2, 8, 4)],
        )
        constructor = SequenceConstructor(pattern)
        matches = constructor.construct(stacks, 2, instances[3])
        assert len(matches) == 1
        assert matches[0].events[1]["x"] == 9


class TestOptimizationEquivalence:
    def test_optimised_and_naive_agree(self):
        import random

        rng = random.Random(11)
        pattern = seq("A a", "B b", "C c", within=15)
        stacks = StackSet(3)
        instances = []
        for arrival in range(1, 120):
            step = rng.randint(0, 2)
            instance = Instance(
                Event(pattern.positive_steps[step].etype, rng.randint(0, 60)), arrival
            )
            stacks[step].insert(instance)
            instances.append((step, instance))
        fast = SequenceConstructor(pattern, optimize=True)
        slow = SequenceConstructor(pattern, optimize=False)
        for step, instance in instances:
            fast_matches = {m.key() for m in fast.construct(stacks, step, instance)}
            slow_matches = {m.key() for m in slow.construct(stacks, step, instance)}
            assert fast_matches == slow_matches

    def test_optimised_explores_fewer_partials(self):
        pattern = seq("A a", "B b", "C c", within=5)
        stacks = StackSet(3)
        trigger = None
        arrival = 0
        for ts in range(0, 200, 2):
            arrival += 1
            stacks[0].insert(Instance(Event("A", ts), arrival))
        for ts in range(1, 200, 2):
            arrival += 1
            stacks[1].insert(Instance(Event("B", ts), arrival))
        arrival += 1
        trigger = Instance(Event("C", 199), arrival)
        stacks[2].insert(trigger)
        fast_stats, slow_stats = EngineStats(), EngineStats()
        fast = SequenceConstructor(pattern, optimize=True)
        slow = SequenceConstructor(pattern, optimize=False)
        assert {m.key() for m in fast.construct(stacks, 2, trigger, fast_stats)} == {
            m.key() for m in slow.construct(stacks, 2, trigger, slow_stats)
        }
        assert fast_stats.partial_combinations < slow_stats.partial_combinations
