"""Index planning and compiled predicate pipelines (repro.core.indexplan)."""

import pytest

from repro import Attr, Const, Eq, Event, Gt, Ne, seq
from repro.core.construction import SequenceConstructor
from repro.core.indexplan import compile_predicate, compile_term
from repro.core.stacks import Instance, StackSet
from repro.core.stats import EngineStats


def _x(var):
    return Attr(var, "x")


CHAIN3 = seq(
    "A a", "B b", "C c",
    where=[Eq(_x("a"), _x("b")), Eq(_x("b"), _x("c"))],
    within=20,
    name="chain3",
)


def build(pattern, placements, constructor):
    stacks = StackSet(pattern.length, indexed_attrs=constructor.indexed_attrs)
    instances = []
    for step, ts, arrival, attrs in placements:
        instance = Instance(
            Event(pattern.positive_steps[step].etype, ts, attrs), arrival
        )
        stacks[step].insert(instance)
        instances.append(instance)
    return stacks, instances


class TestPlanShape:
    def test_fully_joined_chain_indexes_every_step(self):
        constructor = SequenceConstructor(CHAIN3)
        # Every step is the non-trigger side of some equality for some
        # trigger position, so every stack indexes "x".
        assert constructor.indexed_attrs == [("x",), ("x",), ("x",)]

    def test_no_equality_plans_nothing(self):
        constructor = SequenceConstructor(seq("A a", "B b", within=10))
        assert constructor.indexed_attrs is None

    def test_index_false_plans_nothing(self):
        assert SequenceConstructor(CHAIN3, index=False).indexed_attrs is None

    def test_unoptimised_plans_nothing(self):
        # The index refines the range scan; without range narrowing
        # (E6 ablation) there is nothing for it to refine.
        assert SequenceConstructor(CHAIN3, optimize=False).indexed_attrs is None

    def test_ts_equality_not_indexed(self):
        pattern = seq(
            "A a", "B b", within=10,
            where=[Eq(Attr("a", "ts"), Attr("b", "ts"))],
        )
        assert SequenceConstructor(pattern).indexed_attrs is None

    def test_constant_equality_not_indexed(self):
        pattern = seq("A a", "B b", within=10, where=[Eq(_x("b"), Const(5))])
        assert SequenceConstructor(pattern).indexed_attrs is None


class TestIndexedConstruction:
    def test_lookup_serves_equal_candidates_only(self):
        pattern = seq("A a", "B b", within=10, where=[Eq(_x("a"), _x("b"))])
        constructor = SequenceConstructor(pattern)
        stacks, instances = build(
            pattern,
            [
                (0, 1, 1, {"x": 1}),
                (0, 2, 2, {"x": 2}),
                (0, 3, 3, {"x": 1}),
                (1, 5, 4, {"x": 1}),
            ],
            constructor,
        )
        stats = EngineStats()
        matches = constructor.construct(stacks, 1, instances[3], stats)
        assert sorted(tuple(e.ts for e in m.events) for m in matches) == [
            (1, 5), (3, 5),
        ]
        assert stats.index_hits == 1
        # Only the two equal-valued candidates were even considered.
        assert stats.partial_combinations == 2

    def test_miss_counted_when_no_value_matches(self):
        pattern = seq("A a", "B b", within=10, where=[Eq(_x("a"), _x("b"))])
        constructor = SequenceConstructor(pattern)
        stacks, instances = build(
            pattern,
            [(0, 1, 1, {"x": 1}), (1, 5, 2, {"x": 9})],
            constructor,
        )
        stats = EngineStats()
        assert constructor.construct(stacks, 1, instances[1], stats) == []
        assert stats.index_misses == 1
        assert stats.index_hits == 0

    def test_residual_predicate_still_runs_on_indexed_path(self):
        pattern = seq(
            "A a", "B b", within=10,
            where=[Eq(_x("a"), _x("b")), Ne(Attr("a", "y"), Attr("b", "y"))],
        )
        constructor = SequenceConstructor(pattern)
        stacks, instances = build(
            pattern,
            [
                (0, 1, 1, {"x": 1, "y": 7}),  # equal x, equal y: rejected
                (0, 2, 2, {"x": 1, "y": 8}),  # equal x, distinct y: kept
                (1, 5, 3, {"x": 1, "y": 7}),
            ],
            constructor,
        )
        stats = EngineStats()
        matches = constructor.construct(stacks, 1, instances[2], stats)
        assert [tuple(e.ts for e in m.events) for m in matches] == [(2, 5)]
        # The equality was index-satisfied: only the residual Ne ran,
        # once per equal-x candidate.
        assert stats.predicate_evaluations == 2

    def test_plain_stackset_falls_back_to_range_scan(self):
        # An indexed plan probing unindexed stacks must degrade to the
        # range scan, not crash or miss matches.
        pattern = seq("A a", "B b", within=10, where=[Eq(_x("a"), _x("b"))])
        constructor = SequenceConstructor(pattern)
        stacks = StackSet(pattern.length)  # no indexed_attrs
        a = Instance(Event("A", 1, {"x": 1}), 1)
        b = Instance(Event("B", 5, {"x": 1}), 2)
        stacks[0].insert(a)
        stacks[1].insert(b)
        stats = EngineStats()
        matches = constructor.construct(stacks, 1, b, stats)
        assert len(matches) == 1
        assert stats.index_hits == 0
        assert stats.index_misses == 0

    def test_indexed_evaluates_fewer_predicates_same_matches(self):
        import random

        rng = random.Random(3)
        indexed = SequenceConstructor(CHAIN3)
        range_only = SequenceConstructor(CHAIN3, index=False)
        stacks_i = StackSet(CHAIN3.length, indexed_attrs=indexed.indexed_attrs)
        stacks_r = StackSet(CHAIN3.length)
        placements = []
        for arrival in range(1, 150):
            step = rng.randint(0, 2)
            event = Event(
                CHAIN3.positive_steps[step].etype,
                rng.randint(0, 80),
                {"x": rng.randint(0, 4)},
            )
            placements.append((step, Instance(event, arrival)))
        stats_i, stats_r = EngineStats(), EngineStats()
        for step, instance in placements:
            stacks_i[step].insert(instance)
            stacks_r[step].insert(Instance(instance.event, instance.arrival))
            got = {
                m.key() for m in indexed.construct(stacks_i, step, instance, stats_i)
            }
            want = {
                m.key() for m in range_only.construct(stacks_r, step, instance, stats_r)
            }
            assert got == want
        assert stats_i.partial_combinations < stats_r.partial_combinations
        assert stats_i.predicate_evaluations < stats_r.predicate_evaluations
        assert stats_i.index_hits > 0


class TestCompiledPieces:
    def test_ts_term_reads_timestamp(self):
        read = compile_term(Attr("a", "ts"))
        assert read({"a": Event("A", 42)}) == 42

    def test_const_term(self):
        assert compile_term(Const(7))({}) == 7

    def test_missing_attribute_raises_descriptive_error(self):
        read = compile_term(Attr("a", "nope"))
        with pytest.raises(KeyError):
            read({"a": Event("A", 1, {"x": 1})})

    def test_heterogeneous_comparison_is_false_not_raised(self):
        # Same contract as the interpreted path: TypeError -> False.
        check = compile_predicate(Gt(Attr("a", "x"), Const(5)))
        assert check({"a": Event("A", 1, {"x": "high"})}) is False
