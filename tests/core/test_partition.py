"""Partitioned evaluation (repro.core.partition)."""

import pytest

from repro import (
    ConfigurationError,
    Event,
    OfflineOracle,
    OutOfOrderEngine,
    PartitionedEngine,
    Punctuation,
    PurgePolicy,
    QueryError,
    detect_partition_key,
    parse,
    seq,
)
from repro.workloads import brute_force_query, exfiltration_query, shoplifting_query
from helpers import bounded_shuffle, make_events


@pytest.fixture
def keyed_pattern():
    return parse(
        "PATTERN SEQ(A a, B b, C c) WHERE a.x == b.x AND b.x == c.x WITHIN 30"
    )


@pytest.fixture
def keyed_trace():
    import random

    rng = random.Random(77)
    return [
        Event(rng.choice("ABCD"), ts, {"x": rng.randint(0, 15)})
        for ts in range(1, 1201)
    ]


class TestKeyDetection:
    def test_chain_equality_detected(self, keyed_pattern):
        assert detect_partition_key(keyed_pattern) == "x"

    def test_workload_queries_detected(self):
        assert detect_partition_key(shoplifting_query()) == "tag"
        assert detect_partition_key(brute_force_query()) == "src"
        assert detect_partition_key(exfiltration_query()) == "src"

    def test_single_step_trivially_partitionable(self):
        pattern = parse("PATTERN SEQ(A a, A a2) WHERE a.k == a2.k WITHIN 10")
        assert detect_partition_key(pattern) == "k"

    def test_disconnected_chain_rejected(self):
        pattern = parse(
            "PATTERN SEQ(A a, B b, C c) WHERE a.x == b.x WITHIN 30"
        )
        with pytest.raises(QueryError, match="no single equality attribute"):
            detect_partition_key(pattern)

    def test_no_predicates_rejected(self):
        with pytest.raises(QueryError):
            detect_partition_key(seq("A a", "B b", within=10))

    def test_mixed_attribute_names_rejected(self):
        pattern = parse(
            "PATTERN SEQ(A a, B b) WHERE a.x == b.y WITHIN 30"
        )
        with pytest.raises(QueryError):
            detect_partition_key(pattern)

    def test_unkeyed_negation_rejected(self):
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x WITHIN 30"
        )
        with pytest.raises(QueryError):
            detect_partition_key(pattern)

    def test_keyed_negation_accepted(self):
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 30"
        )
        assert detect_partition_key(pattern) == "x"


class TestCorrectnessParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_oracle_under_disorder(self, keyed_pattern, keyed_trace, seed):
        arrival = bounded_shuffle(keyed_trace, k=20, seed=seed)
        truth = OfflineOracle(keyed_pattern).evaluate_set(keyed_trace)
        engine = PartitionedEngine(keyed_pattern, k=20)
        engine.run(arrival)
        assert engine.result_set() == truth

    def test_matches_flat_engine_exactly(self, keyed_pattern, keyed_trace):
        arrival = bounded_shuffle(keyed_trace, k=15, seed=9)
        flat = OutOfOrderEngine(keyed_pattern, k=15)
        flat.run(arrival)
        partitioned = PartitionedEngine(keyed_pattern, k=15)
        partitioned.run(arrival)
        assert partitioned.result_set() == flat.result_set()

    def test_negation_parity(self, keyed_trace):
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 30"
        )
        arrival = bounded_shuffle(keyed_trace, k=15, seed=3)
        truth = OfflineOracle(pattern).evaluate_set(keyed_trace)
        engine = PartitionedEngine(pattern, k=15)
        engine.run(arrival)
        assert engine.result_set() == truth

    def test_explicit_key_override(self, keyed_pattern, keyed_trace):
        engine = PartitionedEngine(keyed_pattern, k=15, key="x")
        engine.run(keyed_trace)
        truth = OfflineOracle(keyed_pattern).evaluate_set(keyed_trace)
        assert engine.result_set() == truth

    def test_events_missing_key_ignored(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=10)
        engine.feed(Event("A", 1))  # no "x" attribute
        assert engine.stats.events_ignored == 1
        assert engine.partition_count() == 0


class TestPartitionMechanics:
    def test_partitions_created_per_key_value(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=10)
        engine.feed_many(make_events("A1:1 A2:2 A3:3 A4:1"))
        assert engine.partition_count() == 3

    def test_punctuation_broadcast_bounds_idle_partition_state(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=5, punctuate_every=8)
        # Partition 1 gets two events then goes idle while partition 2 streams.
        engine.feed_many(make_events("A1:1 B2:1"))
        for ts in range(3, 600):
            engine.feed(Event("A", ts, {"x": 2}))
        sub = engine._partitions[1]
        assert sub.state_size() == 0  # idle partition fully purged

    def test_negation_seals_via_broadcast(self):
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 10"
        )
        engine = PartitionedEngine(pattern, k=5, punctuate_every=4)
        engine.feed_many(make_events("A1:1 C5:1"))
        assert engine.results == []
        # Other-partition traffic advances the global clock; broadcasts seal.
        emitted = []
        for ts in range(6, 40):
            emitted.extend(engine.feed(Event("A", ts, {"x": 2})))
        assert len(emitted) == 1

    def test_external_punctuation_forwarded(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=None)
        engine.feed_many(make_events("A1:1 A2:2"))
        engine.feed(Punctuation(500))
        assert engine.state_size() == 0

    def test_late_events_dropped_globally(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=5)
        engine.feed(Event("A", 100, {"x": 1}))
        engine.feed(Event("A", 2, {"x": 2}))  # late by global clock
        assert engine.stats.late_dropped == 1
        assert engine.partition_count() == 1  # no partition spawned for it

    def test_purge_policy_propagated_fresh_per_partition(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=5, purge=PurgePolicy.lazy(16))
        engine.feed_many(make_events("A1:1 A2:2"))
        subs = list(engine._partitions.values())
        assert subs[0].purge_policy is not subs[1].purge_policy
        assert subs[0].purge_policy.interval == 16

    def test_punctuate_every_validated(self, keyed_pattern):
        with pytest.raises(ConfigurationError):
            PartitionedEngine(keyed_pattern, k=5, punctuate_every=0)

    def test_merged_substats(self, keyed_pattern, keyed_trace):
        engine = PartitionedEngine(keyed_pattern, k=10)
        engine.run(keyed_trace)
        merged = engine.merged_substats()
        assert merged.events_in == sum(
            sub.stats.events_in for sub in engine._partitions.values()
        )
        assert merged.matches_emitted == len(engine.results)


class TestPartitioningWins:
    def test_less_construction_work_at_high_cardinality(self, keyed_pattern, keyed_trace):
        arrival = bounded_shuffle(keyed_trace, k=15, seed=4)
        flat = OutOfOrderEngine(keyed_pattern, k=15)
        flat.run(arrival)
        partitioned = PartitionedEngine(keyed_pattern, k=15)
        partitioned.run(arrival)
        assert (
            partitioned.merged_substats().partial_combinations
            <= flat.stats.partial_combinations
        )
