"""Partitioned evaluation (repro.core.partition)."""

import pytest

from repro import (
    ConfigurationError,
    Event,
    OfflineOracle,
    OutOfOrderEngine,
    PartitionedEngine,
    Punctuation,
    PurgePolicy,
    QueryError,
    detect_partition_key,
    parse,
    seq,
)
from repro.workloads import brute_force_query, exfiltration_query, shoplifting_query
from helpers import bounded_shuffle, make_events


@pytest.fixture
def keyed_pattern():
    return parse(
        "PATTERN SEQ(A a, B b, C c) WHERE a.x == b.x AND b.x == c.x WITHIN 30"
    )


@pytest.fixture
def keyed_trace():
    import random

    rng = random.Random(77)
    return [
        Event(rng.choice("ABCD"), ts, {"x": rng.randint(0, 15)})
        for ts in range(1, 1201)
    ]


class TestKeyDetection:
    def test_chain_equality_detected(self, keyed_pattern):
        assert detect_partition_key(keyed_pattern) == "x"

    def test_workload_queries_detected(self):
        assert detect_partition_key(shoplifting_query()) == "tag"
        assert detect_partition_key(brute_force_query()) == "src"
        assert detect_partition_key(exfiltration_query()) == "src"

    def test_single_step_trivially_partitionable(self):
        pattern = parse("PATTERN SEQ(A a, A a2) WHERE a.k == a2.k WITHIN 10")
        assert detect_partition_key(pattern) == "k"

    def test_disconnected_chain_rejected(self):
        pattern = parse(
            "PATTERN SEQ(A a, B b, C c) WHERE a.x == b.x WITHIN 30"
        )
        with pytest.raises(QueryError, match="no single equality attribute"):
            detect_partition_key(pattern)

    def test_no_predicates_rejected(self):
        with pytest.raises(QueryError):
            detect_partition_key(seq("A a", "B b", within=10))

    def test_mixed_attribute_names_rejected(self):
        pattern = parse(
            "PATTERN SEQ(A a, B b) WHERE a.x == b.y WITHIN 30"
        )
        with pytest.raises(QueryError):
            detect_partition_key(pattern)

    def test_unkeyed_negation_rejected(self):
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x WITHIN 30"
        )
        with pytest.raises(QueryError):
            detect_partition_key(pattern)

    def test_keyed_negation_accepted(self):
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 30"
        )
        assert detect_partition_key(pattern) == "x"


class TestCorrectnessParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_oracle_under_disorder(self, keyed_pattern, keyed_trace, seed):
        arrival = bounded_shuffle(keyed_trace, k=20, seed=seed)
        truth = OfflineOracle(keyed_pattern).evaluate_set(keyed_trace)
        engine = PartitionedEngine(keyed_pattern, k=20)
        engine.run(arrival)
        assert engine.result_set() == truth

    def test_matches_flat_engine_exactly(self, keyed_pattern, keyed_trace):
        arrival = bounded_shuffle(keyed_trace, k=15, seed=9)
        flat = OutOfOrderEngine(keyed_pattern, k=15)
        flat.run(arrival)
        partitioned = PartitionedEngine(keyed_pattern, k=15)
        partitioned.run(arrival)
        assert partitioned.result_set() == flat.result_set()

    def test_negation_parity(self, keyed_trace):
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 30"
        )
        arrival = bounded_shuffle(keyed_trace, k=15, seed=3)
        truth = OfflineOracle(pattern).evaluate_set(keyed_trace)
        engine = PartitionedEngine(pattern, k=15)
        engine.run(arrival)
        assert engine.result_set() == truth

    def test_explicit_key_override(self, keyed_pattern, keyed_trace):
        engine = PartitionedEngine(keyed_pattern, k=15, key="x")
        engine.run(keyed_trace)
        truth = OfflineOracle(keyed_pattern).evaluate_set(keyed_trace)
        assert engine.result_set() == truth

    def test_events_missing_key_ignored(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=10)
        engine.feed(Event("A", 1))  # no "x" attribute
        assert engine.stats.events_ignored == 1
        assert engine.partition_count() == 0


class TestPartitionMechanics:
    def test_partitions_created_per_key_value(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=10)
        engine.feed_many(make_events("A1:1 A2:2 A3:3 A4:1"))
        assert engine.partition_count() == 3

    def test_punctuation_broadcast_bounds_idle_partition_state(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=5, punctuate_every=8)
        # Partition 1 gets two events then goes idle while partition 2 streams.
        engine.feed_many(make_events("A1:1 B2:1"))
        for ts in range(3, 600):
            engine.feed(Event("A", ts, {"x": 2}))
        sub = engine._partitions[1]
        assert sub.state_size() == 0  # idle partition fully purged

    def test_negation_seals_via_broadcast(self):
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 10"
        )
        engine = PartitionedEngine(pattern, k=5, punctuate_every=4)
        engine.feed_many(make_events("A1:1 C5:1"))
        assert engine.results == []
        # Other-partition traffic advances the global clock; broadcasts seal.
        emitted = []
        for ts in range(6, 40):
            emitted.extend(engine.feed(Event("A", ts, {"x": 2})))
        assert len(emitted) == 1

    def test_external_punctuation_forwarded(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=None)
        engine.feed_many(make_events("A1:1 A2:2"))
        engine.feed(Punctuation(500))
        assert engine.state_size() == 0

    def test_late_events_dropped_globally(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=5)
        engine.feed(Event("A", 100, {"x": 1}))
        engine.feed(Event("A", 2, {"x": 2}))  # late by global clock
        assert engine.stats.late_dropped == 1
        assert engine.partition_count() == 1  # no partition spawned for it

    def test_purge_policy_propagated_fresh_per_partition(self, keyed_pattern):
        engine = PartitionedEngine(keyed_pattern, k=5, purge=PurgePolicy.lazy(16))
        engine.feed_many(make_events("A1:1 A2:2"))
        subs = list(engine._partitions.values())
        assert subs[0].purge_policy is not subs[1].purge_policy
        assert subs[0].purge_policy.interval == 16

    def test_punctuate_every_validated(self, keyed_pattern):
        with pytest.raises(ConfigurationError):
            PartitionedEngine(keyed_pattern, k=5, punctuate_every=0)

    def test_merged_substats(self, keyed_pattern, keyed_trace):
        engine = PartitionedEngine(keyed_pattern, k=10)
        engine.run(keyed_trace)
        merged = engine.merged_substats()
        assert merged.events_in == sum(
            sub.stats.events_in for sub in engine._partitions.values()
        )
        assert merged.matches_emitted == len(engine.results)


class TestPartitioningWins:
    def test_less_construction_work_at_high_cardinality(self, keyed_pattern, keyed_trace):
        arrival = bounded_shuffle(keyed_trace, k=15, seed=4)
        flat = OutOfOrderEngine(keyed_pattern, k=15)
        flat.run(arrival)
        partitioned = PartitionedEngine(keyed_pattern, k=15)
        partitioned.run(arrival)
        assert (
            partitioned.merged_substats().partial_combinations
            <= flat.stats.partial_combinations
        )


class TestSpeculativePartitions:
    @pytest.fixture
    def neg_keyed(self):
        return parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x "
            "WITHIN 20"
        )

    def test_sealed_output_identical_to_pessimistic(self, keyed_pattern, keyed_trace):
        arrival = bounded_shuffle(keyed_trace, k=10, seed=5)
        plain = PartitionedEngine(keyed_pattern, k=10)
        spec = PartitionedEngine(keyed_pattern, k=10, speculative=True)
        for engine in (plain, spec):
            engine.feed_many(arrival)
            engine.close()
        assert [m.key() for m in spec.results] == [m.key() for m in plain.results]

    def test_speculation_summary_and_net_convergence(self, neg_keyed, keyed_trace):
        arrival = bounded_shuffle(keyed_trace, k=10, seed=6)
        engine = PartitionedEngine(neg_keyed, k=10, speculative=True)
        engine.feed_many(arrival)
        engine.close()
        summary = engine.speculation_summary()
        assert summary["open"] == 0
        assert summary["emitted"] >= len(engine.results)
        assert summary["retracted"] == len(engine.retraction_records())
        net = set()
        for sub in engine._partitions.values():
            net |= sub.speculation.net_keys()
        assert net == engine.result_set()

    def test_retraction_records_carry_partition_value(self, neg_keyed):
        engine = PartitionedEngine(neg_keyed, k=6, speculative=True)
        engine.feed(Event("A", 10, {"x": 7}))
        engine.feed(Event("C", 12, {"x": 7}))  # speculates in partition 7
        engine.feed(Event("B", 11, {"x": 7}))  # violates at seal
        engine.close()
        [(value, retraction)] = engine.retraction_records()
        assert value == 7
        assert retraction.cause == "negation-violated"

    def test_controller_cloned_per_partition(self, keyed_pattern, keyed_trace):
        from repro.streams import AdaptiveKController

        controller = AdaptiveKController(initial_k=12)
        engine = PartitionedEngine(keyed_pattern, controller=controller)
        engine.feed_many(keyed_trace[:200])
        assert len(engine._partitions) > 1
        clones = [sub._controller for sub in engine._partitions.values()]
        assert all(c is not controller for c in clones)
        assert len(set(map(id, clones))) == len(clones)
        assert all(sub.clock.k == 12 for sub in engine._partitions.values())
        engine.close()

    def test_parallel_workers_reject_speculation(self, keyed_pattern):
        from repro import ParallelPartitionedEngine
        from repro.streams import AdaptiveKController

        with pytest.raises(ConfigurationError):
            ParallelPartitionedEngine(
                keyed_pattern, k=5, workers=2, speculative=True
            )
        with pytest.raises(ConfigurationError):
            ParallelPartitionedEngine(
                keyed_pattern, k=5, workers=2,
                controller=AdaptiveKController(),
            )
        # Serial (workers=1) routing supports both.
        engine = ParallelPartitionedEngine(
            keyed_pattern, k=5, workers=1, speculative=True
        )
        assert engine.speculative
