"""Unit tests for the pattern AST and compilation (repro.core.pattern)."""

import pytest

from repro import (
    And,
    Attr,
    Const,
    Eq,
    Event,
    Gt,
    Match,
    Pattern,
    QueryError,
    Step,
    seq,
)


class TestStep:
    def test_positive_step(self):
        step = Step("A", "a")
        assert not step.negated
        assert step.etype == "A" and step.var == "a"

    def test_negated_step_repr(self):
        assert "!B" in repr(Step("B", "b", negated=True))

    def test_invalid_var(self):
        with pytest.raises(QueryError):
            Step("A", "not an identifier")
        with pytest.raises(QueryError):
            Step("A", "")

    def test_invalid_type(self):
        with pytest.raises(QueryError):
            Step("", "a")

    def test_equality(self):
        assert Step("A", "a") == Step("A", "a")
        assert Step("A", "a") != Step("A", "a", negated=True)


class TestPatternValidation:
    def test_needs_steps(self):
        with pytest.raises(QueryError):
            Pattern([], within=10)

    def test_needs_positive_step(self):
        with pytest.raises(QueryError):
            Pattern([Step("A", "a", negated=True)], within=10)

    def test_rejects_adjacent_negation(self):
        with pytest.raises(QueryError, match="adjacent"):
            Pattern(
                [
                    Step("A", "a"),
                    Step("B", "b", negated=True),
                    Step("C", "c", negated=True),
                    Step("D", "d"),
                ],
                within=10,
            )

    def test_rejects_duplicate_variables(self):
        with pytest.raises(QueryError, match="duplicate"):
            Pattern([Step("A", "a"), Step("B", "a")], within=10)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(QueryError):
            Pattern([Step("A", "a")], within=0)
        with pytest.raises(QueryError):
            Pattern([Step("A", "a")], within=-5)
        with pytest.raises(QueryError):
            Pattern([Step("A", "a")], within=True)

    def test_rejects_unknown_predicate_variable(self):
        with pytest.raises(QueryError, match="unknown"):
            Pattern(
                [Step("A", "a")],
                where=[Eq(Attr("zz", "x"), Const(1))],
                within=10,
            )

    def test_rejects_predicate_relating_two_negated_vars(self):
        with pytest.raises(QueryError, match="two negated"):
            Pattern(
                [
                    Step("A", "a"),
                    Step("B", "b", negated=True),
                    Step("C", "c"),
                    Step("D", "d", negated=True),
                    Step("E", "e"),
                ],
                where=[Eq(Attr("b", "x"), Attr("d", "x"))],
                within=10,
            )

    def test_rejects_non_predicate_where(self):
        with pytest.raises(QueryError):
            Pattern([Step("A", "a")], where=["a.x == 1"], within=10)


class TestPatternCompilation:
    def test_length_counts_positive_steps_only(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        assert pattern.length == 2
        assert pattern.has_negation

    def test_flattens_top_level_and(self):
        pattern = Pattern(
            [Step("A", "a"), Step("B", "b")],
            where=[And([Eq(Attr("a", "x"), Attr("b", "x")), Gt(Attr("a", "x"), Const(0))])],
            within=10,
        )
        assert len(pattern.where) == 2

    def test_negation_predicates_partitioned(self):
        pattern = Pattern(
            [Step("A", "a"), Step("B", "b", negated=True), Step("C", "c")],
            where=[
                Eq(Attr("a", "x"), Attr("c", "x")),
                Eq(Attr("b", "x"), Attr("a", "x")),
            ],
            within=10,
        )
        assert len(pattern.positive_predicates) == 1
        assert len(pattern.negations) == 1
        assert len(pattern.negations[0].predicates) == 1

    def test_negation_bracket_positions(self):
        pattern = seq("!N0 n0", "A a", "!N1 n1", "B b", "!N2 n2", within=10)
        brackets = {b.step.var: (b.lower, b.upper) for b in pattern.negations}
        assert brackets == {"n0": (None, 0), "n1": (0, 1), "n2": (1, None)}

    def test_types_indexed(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        assert pattern.positive_types == ("A", "C")
        assert pattern.negated_types == {"B"}
        assert pattern.relevant_types == {"A", "B", "C"}

    def test_repeated_type_at_multiple_steps(self):
        pattern = seq("A first", "A second", within=10)
        assert pattern.steps_of_type["A"] == [0, 1]

    def test_equality_pairs_extracted(self):
        pattern = Pattern(
            [Step("A", "a"), Step("B", "b")],
            where=[Eq(Attr("a", "x"), Attr("b", "x"))],
            within=10,
        )
        assert len(pattern.equality_pairs) == 1


class TestPatternSemanticsHelpers:
    def test_temporal_ok_strictly_increasing_within_window(self):
        pattern = seq("A a", "B b", within=10)
        assert pattern.temporal_ok([Event("A", 1), Event("B", 5)])
        assert not pattern.temporal_ok([Event("A", 5), Event("B", 5)])
        assert not pattern.temporal_ok([Event("A", 1), Event("B", 12)])
        assert pattern.temporal_ok([Event("A", 1), Event("B", 11)])  # exactly W

    def test_bindings_for_length_checked(self):
        pattern = seq("A a", "B b", within=10)
        with pytest.raises(QueryError):
            pattern.bindings_for([Event("A", 1)])

    def test_check_positive_predicates(self):
        pattern = Pattern(
            [Step("A", "a"), Step("B", "b")],
            where=[Eq(Attr("a", "x"), Attr("b", "x"))],
            within=10,
        )
        good = pattern.bindings_for([Event("A", 1, {"x": 1}), Event("B", 2, {"x": 1})])
        bad = pattern.bindings_for([Event("A", 1, {"x": 1}), Event("B", 2, {"x": 2})])
        assert pattern.check_positive_predicates(good)
        assert not pattern.check_positive_predicates(bad)

    def test_variables_in_declaration_order(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        assert pattern.variables() == ["a", "b", "c"]


class TestSeqBuilder:
    def test_builds_steps_from_strings(self):
        pattern = seq("A a", "!B b", "C c", within=5)
        assert [s.negated for s in pattern.steps] == [False, True, False]

    def test_rejects_bad_spec(self):
        with pytest.raises(QueryError):
            seq("A", within=5)
        with pytest.raises(QueryError):
            seq("A a extra", within=5)

    def test_strips_whitespace(self):
        pattern = seq("  A   a ", within=5)
        assert pattern.steps[0] == Step("A", "a")


class TestNegationBracketBounds:
    def test_inner_bracket_bounds_are_neighbour_timestamps(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        positives = [Event("A", 3), Event("C", 9)]
        lo, hi = pattern.negations[0].bounds(positives, pattern.within)
        assert (lo, hi) == (3, 9)

    def test_leading_bracket_bounded_by_window(self):
        pattern = seq("!B b", "A a", "C c", within=10)
        positives = [Event("A", 20), Event("C", 25)]
        lo, hi = pattern.negations[0].bounds(positives, pattern.within)
        assert hi == 20
        assert lo == 25 - 10 - 1  # last.ts - W - 1

    def test_trailing_bracket_bounded_by_window(self):
        pattern = seq("A a", "C c", "!B b", within=10)
        positives = [Event("A", 20), Event("C", 25)]
        lo, hi = pattern.negations[0].bounds(positives, pattern.within)
        assert lo == 25
        assert hi == 20 + 10 + 1  # first.ts + W + 1

    def test_admits_respects_interval_and_predicates(self):
        pattern = Pattern(
            [Step("A", "a"), Step("B", "b", negated=True), Step("C", "c")],
            where=[Eq(Attr("b", "x"), Attr("a", "x"))],
            within=10,
        )
        positives = [Event("A", 3, {"x": 1}), Event("C", 9, {"x": 1})]
        bracket = pattern.negations[0]
        assert bracket.admits(Event("B", 5, {"x": 1}), positives, 10)
        assert not bracket.admits(Event("B", 5, {"x": 2}), positives, 10)  # predicate
        assert not bracket.admits(Event("B", 3, {"x": 1}), positives, 10)  # boundary
        assert not bracket.admits(Event("B", 9, {"x": 1}), positives, 10)  # boundary
        assert not bracket.admits(Event("B", 11, {"x": 1}), positives, 10)  # outside


class TestMatch:
    def test_match_key_identity(self):
        pattern = seq("A a", "B b", within=10)
        a, b = Event("A", 1), Event("B", 2)
        assert Match(pattern, [a, b]) == Match(pattern, [a, b])
        assert hash(Match(pattern, [a, b])) == hash(Match(pattern, [a, b]))

    def test_match_differs_on_events(self):
        pattern = seq("A a", "B b", within=10)
        a, b, b2 = Event("A", 1), Event("B", 2), Event("B", 3)
        assert Match(pattern, [a, b]) != Match(pattern, [a, b2])

    def test_start_end_ts(self):
        pattern = seq("A a", "B b", within=10)
        match = Match(pattern, [Event("A", 1), Event("B", 7)])
        assert match.start_ts == 1 and match.end_ts == 7

    def test_bindings_roundtrip(self):
        pattern = seq("A a", "B b", within=10)
        a, b = Event("A", 1), Event("B", 2)
        match = Match(pattern, [a, b])
        assert match.bindings() == {"a": a, "b": b}
