"""Unit tests for predicate expressions (repro.core.predicates)."""

import pytest

from repro import (
    And,
    Attr,
    Comparison,
    Const,
    Eq,
    Event,
    FnPredicate,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    QueryError,
)
from repro.core.predicates import stage_predicates


@pytest.fixture
def bindings():
    return {
        "a": Event("A", 1, {"x": 5, "name": "foo"}),
        "b": Event("B", 2, {"x": 5, "name": "bar"}),
        "c": Event("C", 9, {"x": 7}),
    }


class TestTerms:
    def test_attr_evaluates_attribute(self, bindings):
        assert Attr("a", "x").evaluate(bindings) == 5

    def test_attr_ts_is_builtin(self, bindings):
        assert Attr("c", "ts").evaluate(bindings) == 9

    def test_attr_unbound_variable_raises(self, bindings):
        with pytest.raises(QueryError):
            Attr("zz", "x").evaluate(bindings)

    def test_attr_validation(self):
        with pytest.raises(QueryError):
            Attr("", "x")
        with pytest.raises(QueryError):
            Attr("a", "")

    def test_const_evaluates_to_value(self, bindings):
        assert Const(42).evaluate(bindings) == 42

    def test_const_has_no_variables(self):
        assert Const(1).variables() == frozenset()

    def test_attr_variables(self):
        assert Attr("a", "x").variables() == frozenset({"a"})


class TestComparison:
    @pytest.mark.parametrize(
        "op,expected",
        [("==", True), ("!=", False), ("<", False), ("<=", True), (">", False), (">=", True)],
    )
    def test_all_operators_on_equal_values(self, bindings, op, expected):
        predicate = Comparison(Attr("a", "x"), op, Attr("b", "x"))
        assert predicate.evaluate(bindings) is expected

    def test_constant_comparison(self, bindings):
        assert Gt(Attr("c", "x"), Const(6)).evaluate(bindings)
        assert not Gt(Attr("c", "x"), Const(7)).evaluate(bindings)

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison(Const(1), "~=", Const(2))

    def test_non_term_operand_rejected(self):
        with pytest.raises(QueryError):
            Comparison(1, "==", Const(2))

    def test_type_mismatch_evaluates_false(self, bindings):
        # str vs int comparisons do not raise, they just never match
        assert not Lt(Attr("a", "name"), Const(3)).evaluate(bindings)

    def test_variables_union(self):
        predicate = Eq(Attr("a", "x"), Attr("b", "x"))
        assert predicate.variables() == frozenset({"a", "b"})

    def test_equality_pairs_only_for_var_var_eq(self):
        assert Eq(Attr("a", "x"), Attr("b", "x")).equality_pairs()
        assert not Eq(Attr("a", "x"), Const(1)).equality_pairs()
        assert not Ne(Attr("a", "x"), Attr("b", "x")).equality_pairs()
        assert not Eq(Attr("a", "x"), Attr("a", "y")).equality_pairs()

    def test_shortcut_constructors(self, bindings):
        assert Ne(Attr("a", "x"), Attr("c", "x")).evaluate(bindings)
        assert Le(Attr("a", "x"), Attr("b", "x")).evaluate(bindings)
        assert Ge(Attr("c", "x"), Attr("a", "x")).evaluate(bindings)

    def test_hash_and_eq(self):
        assert Eq(Attr("a", "x"), Const(1)) == Eq(Attr("a", "x"), Const(1))
        assert hash(Eq(Attr("a", "x"), Const(1))) == hash(Eq(Attr("a", "x"), Const(1)))
        assert Eq(Attr("a", "x"), Const(1)) != Eq(Attr("a", "x"), Const(2))


class TestBooleanCombinators:
    def test_and_requires_all(self, bindings):
        predicate = And([Eq(Attr("a", "x"), Attr("b", "x")), Gt(Attr("c", "x"), Const(6))])
        assert predicate.evaluate(bindings)

    def test_and_fails_when_any_fails(self, bindings):
        predicate = And([Eq(Attr("a", "x"), Attr("b", "x")), Gt(Attr("c", "x"), Const(100))])
        assert not predicate.evaluate(bindings)

    def test_and_flattens_nested(self):
        inner = And([Eq(Attr("a", "x"), Const(1)), Eq(Attr("b", "x"), Const(2))])
        outer = And([inner, Eq(Attr("c", "x"), Const(3))])
        assert len(outer.children) == 3

    def test_and_empty_rejected(self):
        with pytest.raises(QueryError):
            And([])

    def test_or_any_suffices(self, bindings):
        predicate = Or([Eq(Attr("a", "x"), Const(999)), Eq(Attr("b", "x"), Const(5))])
        assert predicate.evaluate(bindings)

    def test_or_all_fail(self, bindings):
        predicate = Or([Eq(Attr("a", "x"), Const(999)), Eq(Attr("b", "x"), Const(999))])
        assert not predicate.evaluate(bindings)

    def test_not_inverts(self, bindings):
        assert Not(Eq(Attr("a", "x"), Const(999))).evaluate(bindings)

    def test_dunder_and_builds_conjunction(self, bindings):
        combined = Eq(Attr("a", "x"), Const(5)) & Gt(Attr("c", "x"), Const(6))
        assert isinstance(combined, And)
        assert combined.evaluate(bindings)

    def test_variables_aggregate(self):
        predicate = Or([Eq(Attr("a", "x"), Const(1)), Eq(Attr("b", "x"), Const(1))])
        assert predicate.variables() == frozenset({"a", "b"})

    def test_and_collects_equality_pairs(self):
        predicate = And(
            [Eq(Attr("a", "x"), Attr("b", "x")), Eq(Attr("b", "y"), Attr("c", "y"))]
        )
        assert len(predicate.equality_pairs()) == 2


class TestFnPredicate:
    def test_evaluates_callable(self, bindings):
        predicate = FnPredicate(("a", "b"), lambda b: b["a"]["x"] + b["b"]["x"] == 10)
        assert predicate.evaluate(bindings)

    def test_requires_variables(self):
        with pytest.raises(QueryError):
            FnPredicate((), lambda b: True)

    def test_requires_callable(self):
        with pytest.raises(QueryError):
            FnPredicate(("a",), "not callable")

    def test_label_in_repr(self):
        predicate = FnPredicate(("a",), lambda b: True, label="mytest")
        assert "mytest" in repr(predicate)


class TestStaging:
    def test_predicates_staged_at_latest_variable(self):
        predicates = [
            Eq(Attr("a", "x"), Const(1)),
            Eq(Attr("a", "x"), Attr("b", "x")),
            Eq(Attr("b", "x"), Attr("c", "x")),
        ]
        staged = stage_predicates(predicates, ["a", "b", "c"])
        assert len(staged["a"]) == 1
        assert len(staged["b"]) == 1
        assert len(staged["c"]) == 1

    def test_unknown_variable_raises(self):
        with pytest.raises(QueryError, match="unknown"):
            stage_predicates([Eq(Attr("zz", "x"), Const(1))], ["a", "b"])

    def test_empty_stage_lists_for_unmentioned_vars(self):
        staged = stage_predicates([Eq(Attr("a", "x"), Const(1))], ["a", "b"])
        assert staged["b"] == []
