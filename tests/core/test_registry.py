"""Multi-query registry (repro.core.registry)."""

import pytest

from repro import (
    ConfigurationError,
    Event,
    OfflineOracle,
    OutOfOrderEngine,
    Punctuation,
    parse,
    seq,
)
from repro.core.registry import HeartbeatDriver, QueryRegistry
from helpers import bounded_shuffle, make_events


def build_registry(k=10):
    registry = QueryRegistry()
    registry.register(OutOfOrderEngine(seq("A a", "B b", within=10, name="ab"), k=k))
    registry.register(OutOfOrderEngine(seq("B b", "C c", within=10, name="bc"), k=k))
    registry.register(
        OutOfOrderEngine(seq("D d", "!E e", "F f", within=10, name="dnf"), k=k)
    )
    return registry


class TestRegistration:
    def test_register_and_lookup(self):
        registry = build_registry()
        assert len(registry) == 3
        assert registry.names() == ["ab", "bc", "dnf"]
        assert registry.engine("ab").pattern.name == "ab"

    def test_duplicate_name_rejected(self):
        registry = build_registry()
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(OutOfOrderEngine(seq("X x", within=5, name="ab")))

    def test_unregister(self):
        registry = build_registry()
        engine = registry.unregister("ab")
        assert engine.pattern.name == "ab"
        assert len(registry) == 2
        # its types no longer route to it
        registry.feed(Event("A", 1))
        assert engine.stats.events_in == 0

    def test_unknown_names(self):
        registry = build_registry()
        with pytest.raises(ConfigurationError):
            registry.engine("zzz")
        with pytest.raises(ConfigurationError):
            registry.unregister("zzz")


class TestRouting:
    def test_events_reach_only_interested_engines(self):
        registry = build_registry()
        registry.feed(Event("A", 1))
        assert registry.engine("ab").stats.events_in == 1
        assert registry.engine("bc").stats.events_in == 0

    def test_shared_types_fan_out(self):
        registry = build_registry()
        registry.feed(Event("B", 1))
        assert registry.engine("ab").stats.events_in == 1
        assert registry.engine("bc").stats.events_in == 1

    def test_unknown_types_skipped_entirely(self):
        registry = build_registry()
        registry.feed(Event("ZZZ", 1))
        assert registry.events_skipped == 1
        assert all(
            registry.engine(name).stats.events_in == 0 for name in registry.names()
        )

    def test_routing_ratio(self):
        registry = build_registry()
        registry.feed_many(make_events("A1 ZZZ2 B3 ZZZ4"))
        assert registry.routing_ratio() == 0.5

    def test_emissions_tagged_with_query_name(self):
        registry = build_registry()
        emitted = registry.feed_many(make_events("A1 B2 C3"))
        names = [name for name, __ in emitted]
        assert names == ["ab", "bc"]

    def test_punctuation_broadcast_to_all(self):
        registry = build_registry(k=None)
        registry.feed_many(make_events("D1 F5"))
        assert registry.results("dnf") == []
        emitted = registry.feed(Punctuation(20))
        assert [name for name, __ in emitted] == ["dnf"]

    def test_results_accessors(self):
        registry = build_registry()
        registry.run(make_events("A1 B2 C3"))
        assert len(registry.results("ab")) == 1
        everything = registry.results()
        assert set(everything) == {"ab", "bc", "dnf"}

    def test_close_flushes_members(self):
        registry = build_registry(k=None)
        registry.feed_many(make_events("D1 F5"))
        emitted = registry.close()
        assert len(emitted) == 1

    def test_state_size_sums(self):
        registry = build_registry(k=1000)
        registry.feed_many(make_events("A1 B2 C3"))
        assert registry.state_size() >= 3


class TestCorrectnessThroughRegistry:
    def test_each_query_matches_oracle_under_disorder(self, random_trace):
        arrival = bounded_shuffle(random_trace, k=12, seed=3)
        queries = [
            parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 15", name="q1"),
            parse("PATTERN SEQ(B b, !C c, D d) WITHIN 15", name="q2"),
            parse("PATTERN SEQ(A a, C+ cs, D d) WITHIN 20", name="q3"),
        ]
        registry = QueryRegistry()
        for query in queries:
            registry.register(OutOfOrderEngine(query, k=12))
        registry.run(arrival)
        for query in queries:
            truth = OfflineOracle(query).evaluate_set(random_trace)
            assert registry.engine(query.name).result_set() == truth, query.name

    def test_registry_equals_naive_broadcast(self, random_trace):
        arrival = bounded_shuffle(random_trace, k=12, seed=4)
        queries = [
            seq("A a", "B b", within=15, name="r1"),
            seq("C c", "D d", within=15, name="r2"),
        ]
        registry = QueryRegistry()
        naive = []
        for query in queries:
            registry.register(OutOfOrderEngine(query, k=12))
            naive.append(OutOfOrderEngine(query, k=12))
        registry.run(list(arrival))
        for engine in naive:
            engine.run(list(arrival))
        for query, engine in zip(queries, naive):
            assert registry.engine(query.name).result_set() == engine.result_set()


class TestHeartbeatDriver:
    def test_heartbeats_seal_unbounded_engines(self):
        registry = build_registry(k=None)
        driver = HeartbeatDriver(registry, interval=2, slack=0)
        emitted = driver.feed_many(
            make_events("D1 F5") + [Event("ZZZ", ts) for ts in range(6, 30)]
        )
        assert any(name == "dnf" for name, __ in emitted)

    def test_validation(self):
        registry = build_registry()
        with pytest.raises(ConfigurationError):
            HeartbeatDriver(registry, interval=0)
        with pytest.raises(ConfigurationError):
            HeartbeatDriver(registry, slack=-1)
