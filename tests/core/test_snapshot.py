"""Engine checkpointing: snapshot() / restore() across all families.

The contract: a snapshot captures an engine's *full deterministic
state*, so restoring it into a freshly constructed engine (same
pattern, same configuration) and continuing the stream is observably
identical to never having stopped — same matches, same emission order,
same counters, same residual state.  Configuration is verified, never
restored: a blob only loads into an engine built the same way.
"""

import pickle
import random

import pytest

from repro import (
    AggressiveEngine,
    Attr,
    Eq,
    Event,
    InOrderEngine,
    OutOfOrderEngine,
    ParallelPartitionedEngine,
    PartitionedEngine,
    Punctuation,
    PurgePolicy,
    ReorderingEngine,
    SnapshotError,
    seq,
)
from repro.core.errors import EngineStateError
from helpers import bounded_shuffle

K = 8

PATTERN = seq(
    "A a",
    "!B b",
    "C c",
    within=20,
    where=[Eq(Attr("a", "x"), Attr("c", "x")), Eq(Attr("b", "x"), Attr("a", "x"))],
    name="snap",
)

ENGINE_KINDS = ["ooo", "inorder", "aggressive", "reorder", "partitioned", "parallel"]


def build(kind, pattern=PATTERN, **overrides):
    if kind == "ooo":
        return OutOfOrderEngine(pattern, k=overrides.get("k", K))
    if kind == "inorder":
        return InOrderEngine(pattern)
    if kind == "aggressive":
        return AggressiveEngine(pattern, k=overrides.get("k", K))
    if kind == "reorder":
        return ReorderingEngine(pattern, k=overrides.get("k", K))
    if kind == "partitioned":
        return PartitionedEngine(pattern, k=overrides.get("k", K), key="x")
    if kind == "parallel":
        return ParallelPartitionedEngine(
            pattern, k=overrides.get("k", K), key="x", workers=2
        )
    raise AssertionError(kind)


def trace(n=260, seed=0, with_punctuation=True):
    rng = random.Random(seed)
    events = [
        Event(rng.choice("ABC"), ts, {"x": rng.randint(0, 2)})
        for ts in range(1, n + 1)
    ]
    arrival = bounded_shuffle(events, k=K, seed=seed + 1)
    if with_punctuation:
        arrival.insert(len(arrival) // 3, Punctuation(events[len(events) // 4].ts))
    return arrival


def stream_for(kind, with_punctuation=True):
    arrival = trace(with_punctuation=with_punctuation)
    if kind == "inorder":
        return sorted(
            [e for e in arrival if isinstance(e, Event)], key=lambda e: e.ts
        )
    return arrival


@pytest.mark.parametrize("kind", ENGINE_KINDS)
class TestRoundTrip:
    def test_mid_stream_restore_continues_identically(self, kind):
        stream = stream_for(kind)
        straight = build(kind)
        for element in stream:
            straight.feed(element)
        final = straight.close()

        interrupted = build(kind)
        cut = len(stream) // 2
        for element in stream[:cut]:
            interrupted.feed(element)
        blob = interrupted.snapshot()
        resumed = build(kind)
        resumed.restore(blob)
        for element in stream[cut:]:
            resumed.feed(element)
        resumed.close()

        assert [m.key() for m in resumed.results] == [
            m.key() for m in straight.results
        ]
        assert resumed.stats.as_dict() == straight.stats.as_dict()
        assert [(r.emitted_seq, r.emitted_clock) for r in resumed.emissions] == [
            (r.emitted_seq, r.emitted_clock) for r in straight.emissions
        ]
        assert final is not None  # close() on the straight run succeeded

    def test_snapshot_is_nondestructive(self, kind):
        stream = stream_for(kind)
        snapped = build(kind)
        plain = build(kind)
        for element in stream:
            snapped.feed(element)
            snapped.snapshot()  # every element: snapshotting never perturbs
            plain.feed(element)
        snapped.close()
        plain.close()
        assert [m.key() for m in snapped.results] == [m.key() for m in plain.results]
        assert snapped.stats.as_dict() == plain.stats.as_dict()

    def test_restored_closed_engine_stays_closed(self, kind):
        stream = stream_for(kind)
        engine = build(kind)
        for element in stream:
            engine.feed(element)
        engine.close()
        resumed = build(kind)
        resumed.restore(engine.snapshot())
        with pytest.raises(EngineStateError):
            resumed.feed(Event("A", 10_000, {"x": 0}))


class TestBlobSafety:
    def test_garbage_blob_rejected(self):
        engine = build("ooo")
        with pytest.raises(SnapshotError):
            engine.restore(b"not a snapshot")

    def test_config_mismatch_rejected(self):
        donor = build("ooo")
        donor.feed(Event("A", 5, {"x": 0}))
        blob = donor.snapshot()
        different_k = build("ooo", k=K + 1)
        with pytest.raises(SnapshotError):
            different_k.restore(blob)

    def test_index_flag_mismatch_rejected(self):
        # The equality-index ablation changes the construction plan, so
        # an indexed blob must not load into a range-only engine (or
        # vice versa) — config is verified, never restored.
        donor = OutOfOrderEngine(PATTERN, k=K, index=True)
        donor.feed(Event("A", 5, {"x": 0}))
        blob = donor.snapshot()
        range_only = OutOfOrderEngine(PATTERN, k=K, index=False)
        with pytest.raises(SnapshotError):
            range_only.restore(blob)

    def test_index_flag_match_restores(self):
        donor = OutOfOrderEngine(PATTERN, k=K, index=False)
        donor.feed(Event("A", 5, {"x": 0}))
        resumed = OutOfOrderEngine(PATTERN, k=K, index=False)
        resumed.restore(donor.snapshot())
        assert resumed.stats.as_dict() == donor.stats.as_dict()

    def test_partitioned_index_flag_mismatch_rejected(self):
        donor = PartitionedEngine(PATTERN, k=K, key="x", index=True)
        donor.feed(Event("A", 5, {"x": 0}))
        blob = donor.snapshot()
        range_only = PartitionedEngine(PATTERN, k=K, key="x", index=False)
        with pytest.raises(SnapshotError):
            range_only.restore(blob)

    def test_pattern_mismatch_rejected(self):
        donor = build("ooo")
        blob = donor.snapshot()
        other = OutOfOrderEngine(seq("A a", "B b", within=20, name="other"), k=K)
        with pytest.raises(SnapshotError):
            other.restore(blob)

    def test_engine_class_mismatch_rejected(self):
        donor = build("ooo")
        blob = donor.snapshot()
        with pytest.raises(SnapshotError):
            build("aggressive").restore(blob)

    def test_format_version_checked(self):
        engine = build("ooo")
        payload = pickle.loads(engine.snapshot())
        payload["format"] = 999
        with pytest.raises(SnapshotError):
            engine.restore(pickle.dumps(payload))

    def test_pattern_never_pickled(self):
        # FnPredicate closures make Pattern unpicklable in general; the
        # snapshot must therefore carry a fingerprint, not the object.
        engine = OutOfOrderEngine(
            seq(
                "A a",
                "B b",
                within=20,
                where=[Eq(Attr("a", "x"), Attr("b", "x"))],
                name="fp",
            ),
            k=K,
        )
        engine.feed(Event("A", 1, {"x": 0}))
        payload = pickle.loads(engine.snapshot())
        assert payload["config"]["pattern"]["name"] == "fp"
        assert "within" in payload["config"]["pattern"]


class TestFamilySpecificState:
    def test_aggressive_revocation_state_survives(self):
        stream = stream_for("aggressive")
        straight = AggressiveEngine(PATTERN, k=K)
        straight.run(stream)

        cut = len(stream) // 2
        first = AggressiveEngine(PATTERN, k=K)
        for element in stream[:cut]:
            first.feed(element)
        second = AggressiveEngine(PATTERN, k=K)
        second.restore(first.snapshot())
        for element in stream[cut:]:
            second.feed(element)
        second.close()

        assert second.net_result_set() == straight.net_result_set()
        assert [r.match.key() for r in second.revocations] == [
            r.match.key() for r in straight.revocations
        ]

    def test_reorder_buffer_contents_survive(self):
        engine = ReorderingEngine(PATTERN, k=50)
        for ts in (100, 90, 110, 95):
            engine.feed(Event("A", ts, {"x": 0}))
        assert engine.buffer_size() == 4  # nothing released yet
        clone = ReorderingEngine(PATTERN, k=50)
        clone.restore(engine.snapshot())
        assert clone.buffer_size() == 4
        assert clone.state_size() == engine.state_size()

    def test_spilling_reorder_round_trip(self, tmp_path):
        engine = ReorderingEngine(PATTERN, k=500, memory_limit=4)
        events = [Event("A", 1000 + i, {"x": 0}) for i in range(40)]
        for event in events:
            engine.feed(event)
        assert engine.buffer_memory_size() <= 4 + 40  # pending batch counts
        clone = ReorderingEngine(PATTERN, k=500, memory_limit=4)
        clone.restore(engine.snapshot())
        assert clone.buffer_size() == engine.buffer_size()
        # Both drain to the same event set on close.
        engine.close()
        clone.close()
        assert clone.stats.as_dict() == engine.stats.as_dict()

    def test_partitioned_preserves_partition_order(self):
        engine = PartitionedEngine(PATTERN, k=K, key="x")
        for ts, x in [(1, 2), (2, 0), (3, 1)]:
            engine.feed(Event("A", ts, {"x": x}))
        clone = PartitionedEngine(PATTERN, k=K, key="x")
        clone.restore(engine.snapshot())
        assert list(clone._partitions) == list(engine._partitions)

    def test_purge_schedule_survives(self):
        engine = OutOfOrderEngine(PATTERN, k=K, purge=PurgePolicy.lazy(7))
        for element in stream_for("ooo"):
            engine.feed(element)
        clone = OutOfOrderEngine(PATTERN, k=K, purge=PurgePolicy.lazy(7))
        clone.restore(engine.snapshot())
        assert (
            clone.purge_policy.snapshot_state()
            == engine.purge_policy.snapshot_state()
        )
