"""Unit tests for the offline oracle (repro.core.oracle)."""

import itertools
import random

import pytest

from repro import Event, OfflineOracle, oracle_matches, parse, seq
from helpers import make_events


class TestBasicSemantics:
    def test_simple_sequence(self):
        pattern = seq("A a", "B b", within=10)
        matches = oracle_matches(pattern, make_events("A1 B3"))
        assert len(matches) == 1

    def test_order_matters(self):
        pattern = seq("A a", "B b", within=10)
        assert oracle_matches(pattern, make_events("B1 A3")) == []

    def test_strictly_increasing_timestamps(self):
        pattern = seq("A a", "B b", within=10)
        assert oracle_matches(pattern, make_events("A5 B5")) == []

    def test_window_boundary(self):
        pattern = seq("A a", "B b", within=4)
        assert len(oracle_matches(pattern, make_events("A1 B5"))) == 1
        assert oracle_matches(pattern, make_events("A1 B6")) == []

    def test_skip_till_any_match_enumerates_all(self):
        pattern = seq("A a", "B b", within=100)
        matches = oracle_matches(pattern, make_events("A1 A2 B3 B4"))
        assert len(matches) == 4

    def test_input_order_irrelevant(self):
        pattern = seq("A a", "B b", "C c", within=100)
        events = make_events("A1 B2 C3 A4 B5 C6")
        baseline = OfflineOracle(pattern).evaluate_set(events)
        for permutation in itertools.permutations(events):
            assert OfflineOracle(pattern).evaluate_set(permutation) == baseline

    def test_no_candidates_of_some_type(self):
        pattern = seq("A a", "B b", within=10)
        assert oracle_matches(pattern, make_events("A1 A2")) == []

    def test_empty_input(self):
        pattern = seq("A a", within=10)
        assert oracle_matches(pattern, []) == []


class TestPredicateSemantics:
    def test_where_filters(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 10")
        events = [
            Event("A", 1, {"x": 1}),
            Event("B", 2, {"x": 1}),
            Event("B", 3, {"x": 2}),
        ]
        matches = oracle_matches(pattern, events)
        assert len(matches) == 1
        assert matches[0].events[1]["x"] == 1

    def test_constant_predicates(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE b.x > 5 WITHIN 10")
        events = [Event("A", 1), Event("B", 2, {"x": 3}), Event("B", 3, {"x": 7})]
        assert len(oracle_matches(pattern, events)) == 1


class TestNegationSemantics:
    def test_inner_negation_blocks(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        assert oracle_matches(pattern, make_events("A1 B3 C5")) == []

    def test_inner_negation_boundaries_open(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        # B exactly at A's or C's timestamp does not block.
        assert len(oracle_matches(pattern, make_events("A1 B1 C5"))) == 1
        assert len(oracle_matches(pattern, make_events("A1 B5 C5"))) == 1

    def test_negation_predicate_must_hold_to_block(self):
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE b.x == a.x WITHIN 10"
        )
        events = [
            Event("A", 1, {"x": 1}),
            Event("B", 3, {"x": 2}),  # different partition: doesn't block
            Event("C", 5, {"x": 9}),
        ]
        assert len(oracle_matches(pattern, events)) == 1

    def test_leading_negation_blocks_within_window_prefix(self):
        pattern = seq("!B b", "A a", "C c", within=10)
        # B@12 with A@20, C@25: window floor is 25-10=15, so B@12 is too old.
        assert len(oracle_matches(pattern, make_events("B12 A20 C25"))) == 1
        # B@16 is inside [15, 20): blocks.
        assert oracle_matches(pattern, make_events("B16 A20 C25")) == []

    def test_trailing_negation_blocks_within_window_suffix(self):
        pattern = seq("A a", "C c", "!B b", within=10)
        # Window roof is 20+10=30; B@28 blocks, B@31 does not.
        assert oracle_matches(pattern, make_events("A20 C25 B28")) == []
        assert len(oracle_matches(pattern, make_events("A20 C25 B31"))) == 1

    def test_multiple_negations(self):
        pattern = seq("A a", "!B b", "C c", "!D d", "E e", within=50)
        assert len(oracle_matches(pattern, make_events("A1 C5 E9"))) == 1
        assert oracle_matches(pattern, make_events("A1 B3 C5 E9")) == []
        assert oracle_matches(pattern, make_events("A1 C5 D7 E9")) == []


class TestOracleAgainstBruteForce:
    """Cross-check the oracle against a literal itertools enumeration."""

    def _brute(self, pattern, events):
        by_type = {}
        for event in sorted(events, key=lambda e: (e.ts, e.eid)):
            by_type.setdefault(event.etype, []).append(event)
        pools = [by_type.get(s.etype, []) for s in pattern.positive_steps]
        result = set()
        for combo in itertools.product(*pools):
            if not pattern.temporal_ok(list(combo)):
                continue
            if not pattern.check_positive_predicates(pattern.bindings_for(list(combo))):
                continue
            blocked = False
            for bracket in pattern.negations:
                lo, hi = bracket.bounds(list(combo), pattern.within)
                for candidate in by_type.get(bracket.step.etype, []):
                    if bracket.admits(candidate, list(combo), pattern.within):
                        blocked = True
                        break
                if blocked:
                    break
            if not blocked:
                result.add((pattern.name, tuple(e.eid for e in combo), ()))
        return result

    @pytest.mark.parametrize("seed", range(5))
    def test_random_traces_agree(self, seed):
        rng = random.Random(seed)
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 12"
        )
        events = [
            Event(rng.choice("ABCX"), rng.randint(0, 40), {"x": rng.randint(0, 2)})
            for __ in range(40)
        ]
        assert OfflineOracle(pattern).evaluate_set(events) == self._brute(pattern, events)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_traces_agree_no_negation(self, seed):
        rng = random.Random(100 + seed)
        pattern = parse("PATTERN SEQ(A a, B b, C c) WHERE a.x == b.x WITHIN 15")
        events = [
            Event(rng.choice("ABC"), rng.randint(0, 50), {"x": rng.randint(0, 2)})
            for __ in range(45)
        ]
        assert OfflineOracle(pattern).evaluate_set(events) == self._brute(pattern, events)
