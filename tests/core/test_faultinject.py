"""FaultInjector mechanics: crash points, forged events, stream faults.

The injector's contract is determinism — the same schedule produces
the same faults at the same positions — and one-shot firing, so a
single injector shared across runner incarnations scripts an entire
multi-crash scenario.
"""

import math

import pytest

from repro import (
    AggressiveEngine,
    CrashError,
    Event,
    FaultInjector,
    InOrderEngine,
    OutOfOrderEngine,
    PartitionedEngine,
    Punctuation,
    ReorderingEngine,
    seq,
)
from repro.core.errors import ReproError
from repro.core.event import malformed_reason
from repro.faultinject import CORRUPT_SHAPES, corrupt_event, forge_event

PATTERN = seq("A a", "B b", within=10, name="fi")


class TestCrashPoints:
    def test_crash_at_fires_once(self):
        fault = FaultInjector(crash_at=[5])
        for index in range(5):
            fault.on_logged(index)
        with pytest.raises(CrashError):
            fault.on_logged(5)
        fault.on_logged(5)  # second pass: already fired
        assert fault.crashes_fired == [5]

    def test_multiple_crash_points_fire_in_schedule_order(self):
        fault = FaultInjector(crash_at=[2, 7])
        fired = []
        for index in range(10):
            try:
                fault.on_logged(index)
            except CrashError:
                fired.append(index)
        assert fired == [2, 7]
        assert fault.crashes_fired == [2, 7]

    def test_from_outages_builds_crash_schedule(self):
        fault = FaultInjector.from_outages([3, 9])
        with pytest.raises(CrashError):
            fault.on_logged(3)
        with pytest.raises(CrashError):
            fault.on_logged(9)

    def test_crash_on_purge_validated(self):
        with pytest.raises(ReproError):
            FaultInjector(crash_on_purge=0)

    def test_unknown_shape_rejected(self):
        with pytest.raises(ReproError):
            FaultInjector(corrupt_shape="time_travel")


class TestArm:
    def test_ooo_purge_crash_fires_mid_feed(self):
        fault = FaultInjector(crash_on_purge=3)
        engine = fault.arm(OutOfOrderEngine(PATTERN, k=3))
        with pytest.raises(CrashError):
            for ts in range(1, 20):
                engine.feed(Event("A", ts, {}))
        assert fault.crashes_fired == [-1]
        # One-shot: a fresh engine armed with the same injector survives.
        fresh = fault.arm(OutOfOrderEngine(PATTERN, k=3))
        for ts in range(1, 20):
            fresh.feed(Event("A", ts, {}))

    def test_inorder_purge_crash_fires(self):
        fault = FaultInjector(crash_on_purge=2)
        engine = fault.arm(InOrderEngine(PATTERN))
        with pytest.raises(CrashError):
            for ts in range(1, 20):
                engine.feed(Event("A", ts, {}))

    def test_reordering_engine_arms_inner(self):
        fault = FaultInjector(crash_on_purge=1)
        engine = fault.arm(ReorderingEngine(PATTERN, k=2))
        with pytest.raises(CrashError):
            for ts in range(1, 30):
                engine.feed(Event("A", ts, {}))

    def test_partitioned_arms_future_sub_engines(self):
        fault = FaultInjector(crash_on_purge=4)
        engine = fault.arm(PartitionedEngine(PATTERN, k=3, key="x"))
        with pytest.raises(CrashError):
            for ts in range(1, 40):
                engine.feed(Event("A", ts, {"x": ts % 3}))

    def test_aggressive_engine_armable(self):
        # AggressiveEngine subclasses OutOfOrderEngine: same purger hook.
        fault = FaultInjector(crash_on_purge=2)
        engine = fault.arm(AggressiveEngine(PATTERN, k=3))
        with pytest.raises(CrashError):
            for ts in range(1, 20):
                engine.feed(Event("A", ts, {}))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ReproError):
            FaultInjector().arm(object())

    def test_armed_purger_still_delegates(self):
        fault = FaultInjector()  # no purge crash scheduled
        engine = fault.arm(OutOfOrderEngine(PATTERN, k=3))
        plain = OutOfOrderEngine(PATTERN, k=3)
        events = [Event("AB"[ts % 2], ts, {}) for ts in range(1, 60)]
        out = [m for e in events for m in engine.feed(e)] + engine.close()
        ref = [m for e in events for m in plain.feed(e)] + plain.close()
        assert [m.key() for m in out] == [m.key() for m in ref]
        assert engine.stats.as_dict() == plain.stats.as_dict()


class TestForgery:
    def test_forge_event_bypasses_validation(self):
        event = forge_event("A", math.nan, attrs={"x": 1})
        assert isinstance(event, Event)
        assert math.isnan(event.ts)
        assert malformed_reason(event) is not None

    @pytest.mark.parametrize("shape", CORRUPT_SHAPES)
    def test_every_corrupt_shape_is_malformed(self, shape):
        assert malformed_reason(corrupt_event(Event("A", 5, {"x": 0}), shape))

    def test_corrupt_event_unknown_shape_rejected(self):
        with pytest.raises(ReproError):
            corrupt_event(Event("A", 5, {}), "time_travel")


class TestWrap:
    def test_corrupt_at_replaces_chosen_indices(self):
        events = [Event("A", ts, {}) for ts in range(1, 6)]
        fault = FaultInjector(corrupt_at=[1, 3], corrupt_shape="nan_ts")
        out = list(fault.wrap(events))
        assert len(out) == 5
        assert malformed_reason(out[1]) and malformed_reason(out[3])
        assert all(malformed_reason(out[i]) is None for i in (0, 2, 4))
        assert out[0] is events[0]

    def test_punctuation_passes_through_untouched(self):
        stream = [Event("A", 1, {}), Punctuation(1), Event("A", 3, {})]
        fault = FaultInjector(corrupt_at=[1], stuck_clock_at=0)
        out = list(fault.wrap(stream))
        assert out[1] is stream[1]

    def test_stuck_clock_clamps_later_timestamps(self):
        events = [Event("A", ts, {}) for ts in (1, 5, 9, 13)]
        fault = FaultInjector(stuck_clock_at=1)
        out = list(fault.wrap(events))
        assert [e.ts for e in out] == [1, 5, 5, 5]
        # Identity is preserved: same type and eid, only time is frozen.
        assert [e.eid for e in out] == [e.eid for e in events]

    def test_stuck_clock_leaves_early_events_alone(self):
        events = [Event("A", ts, {}) for ts in (10, 3, 7, 20)]
        fault = FaultInjector(stuck_clock_at=2)
        out = list(fault.wrap(events))
        # ts 3 and 7 are below the pre-fault max and pass unchanged.
        assert [e.ts for e in out] == [10, 3, 7, 10]

    def test_wrap_is_deterministic(self):
        events = [Event("A", ts, {}) for ts in range(1, 30)]

        def run():
            fault = FaultInjector(
                corrupt_at=[4, 11], corrupt_shape="float_ts", stuck_clock_at=20
            )
            return [(e.etype, e.ts) for e in fault.wrap(events)]

        assert run() == run()


class TestDuplicateAt:
    def test_chosen_indices_are_delivered_twice(self):
        events = [Event("A", ts, {}) for ts in range(1, 6)]
        fault = FaultInjector(duplicate_at=[1, 3])
        out = list(fault.wrap(events))
        assert [e.ts for e in out] == [1, 2, 2, 3, 4, 4, 5]

    def test_duplicate_copies_are_identical(self):
        events = [Event("A", ts, {"v": ts}) for ts in range(1, 5)]
        fault = FaultInjector(duplicate_at=[2])
        out = list(fault.wrap(events))
        assert out[2] == out[3] and out[2].eid == out[3].eid

    def test_punctuation_is_never_duplicated(self):
        elements = [Event("A", 1, {}), Punctuation(2), Event("A", 3, {})]
        fault = FaultInjector(duplicate_at=[1])  # index lands on the punctuation
        out = list(fault.wrap(elements))
        assert len(out) == 3

    def test_duplicate_after_clock_clamp_redelivers_the_clamped_copy(self):
        # An at-least-once transport resends what it sent, so the duplicate
        # must be the post-fault (clamped) event, not a fresh read.
        events = [Event("A", 10, {}), Event("A", 20, {})]
        fault = FaultInjector(stuck_clock_at=0, duplicate_at=[1])
        out = list(fault.wrap(events))
        assert [e.ts for e in out] == [10, 10, 10]
        assert out[1].eid == out[2].eid


class TestFromOutagesPerSource:
    @staticmethod
    def simulated():
        from repro.netsim import ConstantLatency, FailureSchedule, simulate_star

        streams = {
            "s0": [Event("A", ts, {}) for ts in range(0, 100, 2)],
            "s1": [Event("B", ts, {}) for ts in range(1, 100, 2)],
        }
        failures = FailureSchedule()
        failures.add_outage("s0", 20, 40)
        failures.add_outage("s1", 60, 70)
        result = simulate_star(streams, lambda i: ConstantLatency(1), failures=failures)
        return failures, result

    def test_node_form_targets_one_sources_outages(self):
        failures, result = self.simulated()
        fault = FaultInjector.from_outages(
            schedule=failures, result=result, node="s0"
        )
        expected = result.crash_indices(failures, "s0")
        assert expected  # the drill is real
        assert sorted(fault._crash_at) == expected

    def test_node_form_differs_per_node(self):
        failures, result = self.simulated()
        for_s0 = FaultInjector.from_outages(schedule=failures, result=result, node="s0")
        for_s1 = FaultInjector.from_outages(schedule=failures, result=result, node="s1")
        assert for_s0._crash_at != for_s1._crash_at

    def test_mixing_forms_is_rejected(self):
        failures, result = self.simulated()
        with pytest.raises(ReproError):
            FaultInjector.from_outages([1, 2], schedule=failures)
        with pytest.raises(ReproError):
            FaultInjector.from_outages(schedule=failures, result=result)  # no node

    def test_extra_faults_compose(self):
        failures, result = self.simulated()
        fault = FaultInjector.from_outages(
            schedule=failures, result=result, node="s0", duplicate_at=[5]
        )
        assert 5 in fault.duplicate_at
