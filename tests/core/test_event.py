"""Unit tests for the event model (repro.core.event)."""

import pytest

from repro import Event, Punctuation, StreamError, is_event, sort_by_occurrence
from repro.core.event import max_timestamp


class TestEventConstruction:
    def test_basic_fields(self):
        event = Event("A", 5, {"x": 1})
        assert event.etype == "A"
        assert event.ts == 5
        assert event["x"] == 1

    def test_auto_ids_are_unique_and_increasing(self):
        first = Event("A", 1)
        second = Event("A", 1)
        assert first.eid != second.eid
        assert second.eid > first.eid

    def test_explicit_eid_respected(self):
        event = Event("A", 1, eid=42)
        assert event.eid == 42

    def test_empty_type_rejected(self):
        with pytest.raises(StreamError):
            Event("", 1)

    def test_non_string_type_rejected(self):
        with pytest.raises(StreamError):
            Event(3, 1)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(StreamError):
            Event("A", -1)

    def test_non_int_timestamp_rejected(self):
        with pytest.raises(StreamError):
            Event("A", 1.5)

    def test_bool_timestamp_rejected(self):
        with pytest.raises(StreamError):
            Event("A", True)

    def test_zero_timestamp_allowed(self):
        assert Event("A", 0).ts == 0


class TestEventImmutability:
    def test_setattr_blocked(self):
        event = Event("A", 1)
        with pytest.raises(AttributeError):
            event.ts = 2

    def test_attrs_returns_copy(self):
        event = Event("A", 1, {"x": 1})
        snapshot = event.attrs
        snapshot["x"] = 99
        assert event["x"] == 1

    def test_source_mapping_not_aliased(self):
        source = {"x": 1}
        event = Event("A", 1, source)
        source["x"] = 99
        assert event["x"] == 1

    def test_with_attrs_creates_new_event(self):
        event = Event("A", 1, {"x": 1})
        updated = event.with_attrs(x=2, y=3)
        assert updated["x"] == 2 and updated["y"] == 3
        assert event["x"] == 1
        assert updated.eid != event.eid


class TestEventAccess:
    def test_missing_attribute_raises_keyerror_with_candidates(self):
        event = Event("A", 1, {"x": 1})
        with pytest.raises(KeyError, match="x"):
            event["nope"]

    def test_get_with_default(self):
        event = Event("A", 1, {"x": 1})
        assert event.get("nope", 7) == 7
        assert event.get("x") == 1

    def test_contains(self):
        event = Event("A", 1, {"x": 1})
        assert "x" in event
        assert "y" not in event


class TestEventEquality:
    def test_equality_by_identity_triple(self):
        event = Event("A", 1, {"x": 1}, eid=5)
        twin = Event("A", 1, {"x": 999}, eid=5)
        assert event == twin  # attributes are not part of identity

    def test_inequality_on_different_eids(self):
        assert Event("A", 1, eid=1) != Event("A", 1, eid=2)

    def test_hash_consistent_with_equality(self):
        event = Event("A", 1, eid=5)
        twin = Event("A", 1, eid=5)
        assert hash(event) == hash(twin)
        assert len({event, twin}) == 1

    def test_not_equal_to_other_types(self):
        assert Event("A", 1) != "A@1"

    def test_key_triple(self):
        event = Event("A", 3, eid=9)
        assert event.key() == ("A", 3, 9)


class TestPunctuation:
    def test_fields_and_equality(self):
        assert Punctuation(5) == Punctuation(5)
        assert Punctuation(5) != Punctuation(6)

    def test_immutable(self):
        punctuation = Punctuation(5)
        with pytest.raises(AttributeError):
            punctuation.ts = 6

    def test_negative_rejected(self):
        with pytest.raises(StreamError):
            Punctuation(-1)

    def test_is_event_distinguishes(self):
        assert is_event(Event("A", 1))
        assert not is_event(Punctuation(1))

    def test_hashable(self):
        assert len({Punctuation(1), Punctuation(1), Punctuation(2)}) == 2


class TestHelpers:
    def test_sort_by_occurrence_orders_by_ts_then_eid(self):
        a = Event("A", 5, eid=2)
        b = Event("B", 3, eid=9)
        c = Event("C", 5, eid=1)
        assert sort_by_occurrence([a, b, c]) == [b, c, a]

    def test_sort_is_deterministic_under_permutation(self):
        events = [Event("A", ts % 5, eid=ts) for ts in range(20)]
        import random

        shuffled = events[:]
        random.Random(3).shuffle(shuffled)
        assert sort_by_occurrence(shuffled) == sort_by_occurrence(events)

    def test_max_timestamp(self):
        assert max_timestamp([]) == -1
        assert max_timestamp([Event("A", 3), Event("B", 7), Event("C", 5)]) == 7

    def test_repr_contains_type_and_ts(self):
        text = repr(Event("A", 7, {"x": 1}))
        assert "A@7" in text and "x=1" in text
