"""Buffer-and-sort baseline (repro.core.reorder)."""

import pytest

from repro import (
    ConfigurationError,
    Event,
    OfflineOracle,
    Punctuation,
    ReorderingEngine,
    seq,
)
from repro.metrics import summarize_arrival_latency
from helpers import bounded_shuffle, make_events


class TestCorrectness:
    def test_exact_on_ordered_input(self, abc_pattern, random_trace):
        truth = OfflineOracle(abc_pattern).evaluate_set(random_trace)
        engine = ReorderingEngine(abc_pattern, k=10)
        engine.run(random_trace)
        assert engine.result_set() == truth

    @pytest.mark.parametrize("seed", range(5))
    def test_exact_under_bounded_disorder(self, abc_pattern, random_trace, seed):
        arrival = bounded_shuffle(random_trace, k=15, seed=seed)
        truth = OfflineOracle(abc_pattern).evaluate_set(random_trace)
        engine = ReorderingEngine(abc_pattern, k=15)
        engine.run(arrival)
        assert engine.result_set() == truth

    def test_exact_with_negation_under_disorder(self, neg_pattern, random_trace):
        arrival = bounded_shuffle(random_trace, k=12, seed=9)
        truth = OfflineOracle(neg_pattern).evaluate_set(random_trace)
        engine = ReorderingEngine(neg_pattern, k=12)
        engine.run(arrival)
        assert engine.result_set() == truth

    def test_close_flushes_buffer(self, plain_seq2):
        engine = ReorderingEngine(plain_seq2, k=100)
        engine.feed_many(make_events("A1 B3"))
        assert engine.results == []  # everything still buffered
        engine.close()
        assert len(engine.results) == 1

    def test_inner_engine_sees_sorted_stream(self, plain_seq2):
        engine = ReorderingEngine(plain_seq2, k=50)
        arrival = make_events("B9 A1 B3 A2 B30 A25 B60 A55 Z100")
        engine.run(arrival)
        assert engine.inner.stats.out_of_order_events == 0


class TestConfig:
    def test_requires_concrete_k(self, plain_seq2):
        with pytest.raises(ConfigurationError):
            ReorderingEngine(plain_seq2, k=None)
        with pytest.raises(ConfigurationError):
            ReorderingEngine(plain_seq2, k=-1)

    def test_k_zero_is_passthrough(self, plain_seq2, random_trace):
        engine = ReorderingEngine(plain_seq2, k=0)
        engine.run(random_trace)
        truth = OfflineOracle(plain_seq2).evaluate_set(random_trace)
        assert engine.result_set() == truth


class TestCosts:
    def test_buffer_holds_about_k_worth_of_events(self, plain_seq2):
        engine = ReorderingEngine(plain_seq2, k=100)
        engine.feed_many(Event("Z", ts) for ts in range(1, 1001))
        # one event per time unit: buffer ≈ K events (+/- release boundary)
        assert 90 <= engine.buffer_peak <= 110

    def test_latency_grows_with_k(self, plain_seq2, random_trace):
        def mean_latency(k):
            engine = ReorderingEngine(plain_seq2, k=k)
            engine.run(random_trace)
            return summarize_arrival_latency(engine.emissions, random_trace).mean

        assert mean_latency(0) <= mean_latency(50) <= mean_latency(200)
        assert mean_latency(200) > mean_latency(0)

    def test_late_events_dropped_not_crashed(self, plain_seq2):
        engine = ReorderingEngine(plain_seq2, k=5)
        engine.feed(Event("A", 100))
        engine.feed(Event("B", 2))  # violates K=5
        assert engine.stats.late_dropped == 1

    def test_state_size_includes_buffer(self, plain_seq2):
        engine = ReorderingEngine(plain_seq2, k=1000)
        engine.feed_many(make_events("A1 B2 A3"))
        assert engine.state_size() >= 3


class TestPunctuationFlush:
    def test_punctuation_releases_buffer(self, plain_seq2):
        engine = ReorderingEngine(plain_seq2, k=1000)
        engine.feed_many(make_events("A1 B3"))
        assert engine.results == []
        emitted = engine.feed(Punctuation(3))
        assert len(emitted) == 1
