"""Query plans and transformation (repro.core.plan / transformation)."""

import pytest

from repro import (
    CompositeEventFactory,
    ConfigurationError,
    Event,
    MultiQueryPlan,
    OutOfOrderEngine,
    QueryPlan,
    parse,
    seq,
)
from helpers import make_events


@pytest.fixture
def engine(plain_seq2):
    return OutOfOrderEngine(plain_seq2, k=0)


class TestCompositeEventFactory:
    def test_string_spec_extracts_binding_attr(self, plain_seq2):
        from repro.core.pattern import Match

        factory = CompositeEventFactory("OUT", {"left": "a.x"})
        match = Match(plain_seq2, [Event("A", 1, {"x": 7}), Event("B", 2)])
        composite = factory.build(match)
        assert composite.etype == "OUT"
        assert composite["left"] == 7

    def test_ts_spec(self, plain_seq2):
        from repro.core.pattern import Match

        factory = CompositeEventFactory("OUT", {"start": "a.ts"})
        match = Match(plain_seq2, [Event("A", 3), Event("B", 5)])
        assert factory.build(match)["start"] == 3

    def test_callable_spec(self, plain_seq2):
        from repro.core.pattern import Match

        factory = CompositeEventFactory("OUT", {"gap": lambda b: b["b"].ts - b["a"].ts})
        match = Match(plain_seq2, [Event("A", 3), Event("B", 10)])
        assert factory.build(match)["gap"] == 7

    def test_composite_ts_is_match_end(self, plain_seq2):
        from repro.core.pattern import Match

        factory = CompositeEventFactory("OUT")
        match = Match(plain_seq2, [Event("A", 3), Event("B", 10)])
        composite = factory.build(match)
        assert composite.ts == 10
        assert composite["span"] == 7

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeEventFactory("")
        with pytest.raises(ConfigurationError):
            CompositeEventFactory("OUT", {"bad": "nodot"})
        with pytest.raises(ConfigurationError):
            CompositeEventFactory("OUT", {"bad": 42})


class TestQueryPlan:
    def test_collects_matches_without_transformation(self, engine):
        plan = QueryPlan(engine)
        produced = plan.run(make_events("A1 B2"))
        assert produced == []
        assert len(plan.matches) == 1

    def test_transformation_produces_composites(self, engine):
        plan = QueryPlan(
            engine,
            transformation=CompositeEventFactory("PAIR", {"start": "a.ts"}),
        )
        produced = plan.run(make_events("A1 B2"))
        assert len(produced) == 1
        assert produced[0].etype == "PAIR"
        assert plan.composites == produced

    def test_selection_filters_matches(self, engine):
        plan = QueryPlan(engine, selection=lambda m: m.end_ts - m.start_ts > 2)
        plan.run(make_events("A1 B2 A5 B9"))
        # spans: (1,2)=1 filtered; (1,9)=8 kept; (5,9)=4 kept
        assert len(plan.matches) == 2

    def test_selection_must_be_callable(self, engine):
        with pytest.raises(ConfigurationError):
            QueryPlan(engine, selection="not callable")

    def test_close_flushes_engine(self, neg_pattern):
        engine = OutOfOrderEngine(neg_pattern, k=100)
        plan = QueryPlan(engine)
        plan.feed_many(
            [Event("A", 1, {"x": 1}), Event("C", 5, {"x": 1})]
        )
        assert plan.matches == []
        plan.close()
        assert len(plan.matches) == 1


class TestMultiQueryPlan:
    def test_broadcasts_to_all_plans(self):
        q1 = seq("A a", "B b", within=10, name="q1")
        q2 = seq("B b", "C c", within=10, name="q2")
        multi = MultiQueryPlan(
            [
                QueryPlan(OutOfOrderEngine(q1, k=0)),
                QueryPlan(OutOfOrderEngine(q2, k=0)),
            ]
        )
        multi.run(make_events("A1 B2 C3"))
        assert len(multi.plans[0].matches) == 1
        assert len(multi.plans[1].matches) == 1

    def test_composite_outputs_interleaved(self):
        q1 = seq("A a", "B b", within=10, name="q1")
        q2 = seq("B b", "C c", within=10, name="q2")
        multi = MultiQueryPlan(
            [
                QueryPlan(
                    OutOfOrderEngine(q1, k=0),
                    transformation=CompositeEventFactory("AB"),
                ),
                QueryPlan(
                    OutOfOrderEngine(q2, k=0),
                    transformation=CompositeEventFactory("BC"),
                ),
            ]
        )
        produced = multi.run(make_events("A1 B2 C3"))
        assert {e.etype for e in produced} == {"AB", "BC"}

    def test_empty_plan_list_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiQueryPlan([])

    def test_state_size_sums_members(self):
        q1 = seq("A a", "B b", within=10, name="q1")
        multi = MultiQueryPlan([QueryPlan(OutOfOrderEngine(q1, k=1000))])
        multi.feed_many(make_events("A1 A2"))
        assert multi.state_size() == 2


class TestCompositionChaining:
    def test_composites_feed_downstream_query(self):
        """CEP compositionality: composite events drive a second pattern."""
        inner = parse("PATTERN SEQ(A a, B b) WITHIN 10", name="inner")
        plan = QueryPlan(
            OutOfOrderEngine(inner, k=0),
            transformation=CompositeEventFactory("AB"),
        )
        composites = plan.run(make_events("A1 B2 A11 B13"))
        assert len(composites) == 2
        outer = parse("PATTERN SEQ(AB x, AB y) WITHIN 20", name="outer")
        downstream = OutOfOrderEngine(outer, k=0)
        downstream.run(composites)
        assert len(downstream.results) == 1
