"""Pipelined epoch-ordered parallelism (repro.core.pipeline).

The contract under test: ``PipelinedPartitionedEngine`` reproduces the
serial ``PartitionedEngine``'s flat emission sequence **exactly** — as
an ordered sequence, not a set — at every worker count, on both
backends, mid-run and at close, across snapshot/restore and through
the exactly-once recovery runner.
"""

import random

import pytest

from repro import (
    ConfigurationError,
    Event,
    FnPredicate,
    ParallelPartitionedEngine,
    PartitionedEngine,
    PipelinedPartitionedEngine,
    Punctuation,
    SnapshotError,
    parse,
)
from repro.bench import make_engine
from repro.core.recovery import DELIVERED_NAME, ResilientRunner
from repro.faultinject import CrashError, FaultInjector

QUERY = "PATTERN SEQ(A a, B b, C c) WHERE a.tag == b.tag AND b.tag == c.tag WITHIN 40"


@pytest.fixture
def pattern():
    return parse(QUERY)


def _trace(seed=11, n=1500, tags=6):
    rng = random.Random(seed)
    events = []
    for i in range(n):
        ts = max(0, i + rng.randrange(-8, 9))
        events.append(Event(rng.choice("ABC"), ts, {"tag": rng.randrange(tags)}))
    return events


def _run_keys(engine, elements):
    out = []
    for element in elements:
        out.extend(engine.feed(element))
    out.extend(engine.close())
    return [m.key() for m in out]


def _serial_keys(pattern, elements, **kwargs):
    return _run_keys(PartitionedEngine(pattern, k=10, **kwargs), elements)


class TestOrderedIdentity:
    def test_workers_1_is_the_serial_engine(self, pattern):
        events = _trace()
        serial = _serial_keys(pattern, events)
        pipe = PipelinedPartitionedEngine(pattern, k=10, workers=1)
        assert _run_keys(pipe, events) == serial

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("workers", [2, 3])
    def test_ordered_sequence_identical_to_serial(self, pattern, backend, workers):
        events = _trace()
        serial = _serial_keys(pattern, events)
        pipe = PipelinedPartitionedEngine(
            pattern, k=10, workers=workers, backend=backend
        )
        assert _run_keys(pipe, events) == serial

    def test_streams_sealed_matches_mid_run(self, pattern):
        events = _trace()
        engine = PipelinedPartitionedEngine(
            pattern, k=10, workers=2, backend="thread"
        )
        before_close = 0
        for event in events:
            before_close += len(engine.feed(event))
        closed = len(engine.close())
        assert before_close > 0, "no output until close — that's the barrier design"
        assert before_close > closed

    def test_explicit_punctuation_interleaved(self, pattern):
        events = _trace(seed=3, n=900)
        elements = []
        for i, event in enumerate(events):
            elements.append(event)
            if i % 150 == 149:
                elements.append(Punctuation(max(0, event.ts - 12)))
        serial = _run_keys(PartitionedEngine(pattern, k=10), elements)
        pipe = PipelinedPartitionedEngine(
            pattern, k=10, workers=2, backend="thread"
        )
        assert _run_keys(pipe, elements) == serial

    def test_epoch_ledger_records_seals(self, pattern):
        events = _trace(seed=3, n=600)
        engine = PipelinedPartitionedEngine(
            pattern, k=10, workers=2, backend="thread"
        )
        _run_keys(engine, events)
        ledger = engine.epoch_ledger
        assert ledger.count > 0
        recent = ledger.recent()
        assert [epoch for epoch, _ in recent] == sorted(
            epoch for epoch, _ in recent
        )
        last_epoch, last_ts = recent[-1]
        assert ledger.ts_of(last_epoch) == last_ts
        assert ledger.last_ts == last_ts


class TestConfiguration:
    def test_make_engine_pipeline(self, pattern):
        engine = make_engine("pipeline", pattern, k=10, workers=2)
        assert isinstance(engine, PipelinedPartitionedEngine)
        assert engine.backend == "process"
        assert make_engine("pipeline", pattern, k=10, workers=2,
                           backend="thread").backend == "thread"

    def test_rejects_bad_workers_and_backend(self, pattern):
        with pytest.raises(ConfigurationError):
            PipelinedPartitionedEngine(pattern, k=10, workers=0)
        with pytest.raises(ConfigurationError):
            PipelinedPartitionedEngine(pattern, k=10, workers=2, backend="mpi")
        with pytest.raises(ConfigurationError):
            PipelinedPartitionedEngine(
                pattern, k=10, workers=2, speculative=True
            )

    @pytest.mark.parametrize(
        "engine_cls", [ParallelPartitionedEngine, PipelinedPartitionedEngine]
    )
    def test_unpicklable_predicate_named_in_error(self, engine_cls):
        base = parse(QUERY)
        lambda_pred = FnPredicate(("a",), lambda b: True, label="inline-lambda")
        pattern = type(base)(
            base.steps, tuple(base.where) + (lambda_pred,), base.within, base.name
        )
        with pytest.raises(ConfigurationError, match="inline-lambda"):
            engine_cls(pattern, k=10, workers=2, backend="process")
        # the thread backend needs no pickling and accepts it
        engine_cls(pattern, k=10, workers=2, backend="thread")


class TestSnapshotRestore:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_mid_run_snapshot_resumes_identically(self, pattern, backend):
        events = _trace()
        serial = _serial_keys(pattern, events)
        first = PipelinedPartitionedEngine(
            pattern, k=10, workers=2, backend=backend
        )
        out = []
        for event in events[:800]:
            out.extend(first.feed(event))
        blob = first.snapshot()
        second = PipelinedPartitionedEngine(
            pattern, k=10, workers=2, backend=backend
        )
        second.restore(blob)
        for event in events[800:]:
            out.extend(second.feed(event))
        out.extend(second.close())
        assert [m.key() for m in out] == serial

    def test_worker_count_enters_the_fingerprint(self, pattern):
        events = _trace(n=400)
        engine = PipelinedPartitionedEngine(
            pattern, k=10, workers=2, backend="thread"
        )
        for event in events:
            engine.feed(event)
        blob = engine.snapshot()
        other = PipelinedPartitionedEngine(
            pattern, k=10, workers=3, backend="thread"
        )
        with pytest.raises(SnapshotError):
            other.restore(blob)


class TestExactlyOnce:
    def test_crash_replay_delivers_identically(self, pattern, tmp_path):
        events = _trace(seed=17, n=1000)

        def build():
            return PipelinedPartitionedEngine(
                pattern, k=10, workers=2, backend="thread"
            )

        plain_dir = tmp_path / "plain"
        plain = ResilientRunner(build(), plain_dir, checkpoint_every=200)
        for event in events:
            plain.feed(event)
        plain.close()

        crash_dir = tmp_path / "crash"
        injected = ResilientRunner(
            build(), crash_dir, checkpoint_every=200,
            fault=FaultInjector(crash_at=[777]),
        )
        with pytest.raises(CrashError):
            for event in events:
                injected.feed(event)

        recovered = ResilientRunner(build(), crash_dir, checkpoint_every=200)
        assert recovered.recovered
        recovered.run(events)
        recovered.close()
        assert (crash_dir / DELIVERED_NAME).read_bytes() == (
            plain_dir / DELIVERED_NAME
        ).read_bytes()
