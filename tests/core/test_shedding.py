"""Load shedding: bounded state under overload, degradation accounted for.

The shed policy trades recall for a hard state bound: when stored
events exceed ``max_state`` the engine drops stored elements
(oldest-first, optionally from sacrificial types first) instead of
growing without bound.  The loss is *visible* — ``events_shed`` counts
casualties and flows into :class:`repro.metrics.quality.QualityReport`
— and *deterministic* — the same stream sheds the same events.
"""

import pytest

from repro import (
    AggressiveEngine,
    ConfigurationError,
    Event,
    OfflineOracle,
    OutOfOrderEngine,
    PurgePolicy,
    ReorderingEngine,
    ShedMode,
    ShedPolicy,
    seq,
)
from repro.bench import make_engine
from repro.metrics import compare
from repro.metrics.quality import compare_keys

PATTERN = seq("A a", "B b", within=1000, name="shed")
NEG_PATTERN = seq("A a", "!B b", "C c", within=1000, name="shedneg")


class TestPolicyValidation:
    def test_max_state_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ShedPolicy.drop_oldest(0)
        with pytest.raises(ConfigurationError):
            ShedPolicy.drop_oldest(-5)

    def test_drop_by_type_requires_victims(self):
        with pytest.raises(ConfigurationError):
            ShedPolicy(10, ShedMode.DROP_BY_TYPE, ())

    def test_victims_must_be_nonempty_type_names(self):
        # Regression: an empty-string (or non-string) victim silently
        # never matched any store, making the policy a disguised
        # drop-oldest; it is now a configuration error.
        with pytest.raises(ConfigurationError):
            ShedPolicy.drop_by_type(10, ("A", ""))
        with pytest.raises(ConfigurationError):
            ShedPolicy.drop_by_type(10, ("A", None))

    def test_duplicate_victims_deduped_first_occurrence_order(self):
        policy = ShedPolicy.drop_by_type(10, ("B", "A", "B", "A"))
        assert policy.victims == ("B", "A")
        # Fingerprint of a duplicate-free spelling is byte-identical,
        # so snapshots taken under either spelling stay compatible.
        assert policy.fingerprint() == ShedPolicy.drop_by_type(10, ("B", "A")).fingerprint()

    def test_fingerprint_is_stable(self):
        policy = ShedPolicy.drop_by_type(10, ["B", "A"])
        assert policy.fingerprint() == ShedPolicy.drop_by_type(10, ["B", "A"]).fingerprint()

    def test_unmatched_victims_surface_typos(self):
        policy = ShedPolicy.drop_by_type(10, ("B", "TELEMETRY"))
        assert policy.unmatched_victims(PATTERN.relevant_types) == ("TELEMETRY",)
        assert policy.unmatched_victims({"A", "B", "TELEMETRY"}) == ()

    def test_register_metrics_publishes_bound_and_unmatched(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        policy = ShedPolicy.drop_by_type(123, ("B", "TYPO"))
        policy.register_metrics(registry, retained_types=PATTERN.relevant_types)
        assert registry.get("repro_shed_bound").value == 123
        assert registry.get("repro_shed_victims_unmatched").value == 1

    def test_register_metrics_without_types_skips_unmatched_gauge(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        ShedPolicy.drop_oldest(50).register_metrics(registry)
        assert registry.get("repro_shed_bound").value == 50
        assert registry.get("repro_shed_victims_unmatched") is None

    def test_make_engine_rejects_unsupported_strategies(self):
        with pytest.raises(ConfigurationError):
            make_engine("inorder", PATTERN, shed=ShedPolicy.drop_oldest(10))


class TestDropOldest:
    def test_state_bounded_throughout(self):
        engine = OutOfOrderEngine(
            PATTERN, k=2000, purge=PurgePolicy.none(),
            shed=ShedPolicy.drop_oldest(25),
        )
        for ts in range(1, 401):
            engine.feed(Event("A", ts, {}))
            assert engine.stacks.size() + engine.negatives.size() <= 25
        assert engine.stats.events_shed > 0

    def test_no_spurious_matches(self):
        # Shedding positive events can only *lose* matches for a
        # negation-free pattern, never invent them.
        events = [Event("AB"[ts % 2], ts, {}) for ts in range(1, 301)]
        truth = OfflineOracle(PATTERN).evaluate_set(events)
        engine = OutOfOrderEngine(
            PATTERN, k=2000, purge=PurgePolicy.none(),
            shed=ShedPolicy.drop_oldest(30),
        )
        engine.run(events)
        produced = engine.result_set()
        assert produced <= truth
        report = compare_keys(truth, produced, shed=engine.stats.events_shed)
        assert report.precision == 1.0
        assert report.degraded
        assert "shed" in repr(report)

    def test_deterministic(self):
        events = [Event("AB"[ts % 2], ts, {}) for ts in range(1, 201)]

        def run():
            engine = OutOfOrderEngine(
                PATTERN, k=2000, purge=PurgePolicy.none(),
                shed=ShedPolicy.drop_oldest(20),
            )
            engine.run(events)
            return [m.key() for m in engine.results], engine.stats.events_shed

        assert run() == run()

    def test_unstressed_engine_never_sheds(self):
        engine = OutOfOrderEngine(PATTERN, k=10, shed=ShedPolicy.drop_oldest(10_000))
        engine.run([Event("AB"[ts % 2], ts, {}) for ts in range(1, 101)])
        assert engine.stats.events_shed == 0

    def test_aggressive_engine_supports_shedding(self):
        engine = AggressiveEngine(
            NEG_PATTERN, k=2000, purge=PurgePolicy.none(),
            shed=ShedPolicy.drop_oldest(25),
        )
        for ts in range(1, 301):
            engine.feed(Event("AC"[ts % 2], ts, {}))
        assert engine.stats.events_shed > 0

    def test_batch_path_falls_back_to_reference_loop(self):
        events = [Event("AB"[ts % 2], ts, {}) for ts in range(1, 201)]
        batched = OutOfOrderEngine(
            PATTERN, k=2000, purge=PurgePolicy.none(),
            shed=ShedPolicy.drop_oldest(20),
        )
        single = OutOfOrderEngine(
            PATTERN, k=2000, purge=PurgePolicy.none(),
            shed=ShedPolicy.drop_oldest(20),
        )
        out_b = batched.feed_batch(events) + batched.close()
        out_s = [m for e in events for m in single.feed(e)] + single.close()
        assert [m.key() for m in out_b] == [m.key() for m in out_s]
        assert batched.stats.as_dict() == single.stats.as_dict()


class TestDropByType:
    def test_victim_types_shed_first(self):
        engine = OutOfOrderEngine(
            PATTERN, k=2000, purge=PurgePolicy.none(),
            shed=ShedPolicy.drop_by_type(20, ["A"]),
        )
        for ts in range(1, 31):
            engine.feed(Event("A", ts, {}))
        for ts in range(31, 41):
            engine.feed(Event("B", ts, {}))
        # All 10 B's retained; the A stack paid the whole bound.
        assert len(engine.stacks[1]) == 10  # step 1 = B
        assert len(engine.stacks[0]) == 10  # step 0 = A
        assert engine.stats.events_shed == 20

    def test_falls_back_to_global_drop_oldest(self):
        # Victims exhausted: the bound must still hold.
        engine = OutOfOrderEngine(
            PATTERN, k=2000, purge=PurgePolicy.none(),
            shed=ShedPolicy.drop_by_type(15, ["A"]),
        )
        for ts in range(1, 41):
            engine.feed(Event("B", ts, {}))
        assert engine.stacks.size() <= 15
        assert engine.stats.events_shed == 25


class TestSpillDiskBound:
    def test_reorder_max_spilled_requires_memory_limit(self):
        with pytest.raises(ConfigurationError):
            ReorderingEngine(PATTERN, k=10, max_spilled=100)

    def test_spill_tier_sheds_oldest_segments(self):
        engine = ReorderingEngine(
            PATTERN, k=10_000, memory_limit=5, max_spilled=500
        )
        for ts in range(1, 2501):
            engine.feed(Event("A", ts, {}))
        # Two flushed runs of 1000 exceeded the 500-event disk bound.
        assert engine.stats.events_shed == 2000
        engine.close()  # survivors drain without error

    def test_shed_counter_reaches_quality_report(self):
        engine = OutOfOrderEngine(
            PATTERN, k=2000, purge=PurgePolicy.none(),
            shed=ShedPolicy.drop_oldest(10),
        )
        events = [Event("AB"[ts % 2], ts, {}) for ts in range(1, 101)]
        engine.run(events)
        report = compare(
            OfflineOracle(PATTERN).evaluate(events),
            engine.results,
            shed=engine.stats.events_shed,
        )
        assert report.shed == engine.stats.events_shed > 0
