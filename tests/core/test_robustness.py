"""Robustness and failure injection: abuse the engines, observe the contract.

Production streams are hostile: schema drift, pathological timestamps,
degenerate queries, adversarial arrival orders.  These tests pin what
the library *guarantees* under abuse — clean errors where the input is
a bug, graceful handling where it is a data condition, and no silent
state corruption either way.
"""

import pytest

from repro import (
    Event,
    InOrderEngine,
    OfflineOracle,
    OutOfOrderEngine,
    PartitionedEngine,
    PurgePolicy,
    ReorderingEngine,
    StreamError,
    parse,
    seq,
)
from helpers import bounded_shuffle, make_events


class TestSchemaDrift:
    """Events missing the attributes the query reads."""

    def test_missing_attr_in_join_predicate_raises(self, plain_seq2):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 10")
        engine = OutOfOrderEngine(pattern, k=0)
        engine.feed(Event("A", 1, {"x": 1}))
        with pytest.raises(KeyError):
            engine.feed(Event("B", 2))  # schema bug: surfaced, not swallowed

    def test_engine_usable_after_predicate_error(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 10")
        engine = OutOfOrderEngine(pattern, k=0)
        engine.feed(Event("A", 1, {"x": 1}))
        with pytest.raises(KeyError):
            engine.feed(Event("B", 2))
        # The bad event was inserted before evaluation failed, but the
        # engine keeps processing subsequent events correctly.
        emitted = engine.feed(Event("B", 3, {"x": 1}))
        assert len(emitted) == 1

    def test_wrong_attr_type_is_a_data_condition_not_an_error(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x < b.x WITHIN 10")
        engine = OutOfOrderEngine(pattern, k=0)
        engine.feed(Event("A", 1, {"x": "not a number"}))
        emitted = engine.feed(Event("B", 2, {"x": 5}))
        assert emitted == []  # comparison across types never matches

    def test_partitioned_ignores_events_missing_the_key(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 10")
        engine = PartitionedEngine(pattern, k=0)
        engine.feed(Event("A", 1))  # no "x"
        engine.feed(Event("A", 2, {"x": 1}))
        assert engine.stats.events_ignored == 1
        assert engine.partition_count() == 1


class TestPathologicalTimestamps:
    def test_huge_timestamps(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=5)
        big = 10**15
        engine.feed(Event("A", big))
        emitted = engine.feed(Event("B", big + 1))
        assert len(emitted) == 1

    def test_huge_jump_purges_everything(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=5)
        engine.feed(Event("A", 1))
        engine.feed(Event("Z", 10**12))
        assert engine.state_size() == 0

    def test_all_events_at_same_timestamp(self, plain_seq2):
        events = [Event("A", 5) for __ in range(20)] + [Event("B", 5) for __ in range(20)]
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(events)
        assert engine.results == []  # ties never satisfy strict order
        assert engine.stats.late_dropped == 0  # ties are not late either

    def test_timestamp_zero_boundary(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.feed(Event("A", 0))
        emitted = engine.feed(Event("B", 1))
        assert len(emitted) == 1

    def test_float_timestamp_rejected_at_construction(self):
        with pytest.raises(StreamError):
            Event("A", 1.5)


class TestDegenerateQueries:
    def test_window_of_one(self):
        pattern = seq("A a", "B b", within=1)
        engine = OutOfOrderEngine(pattern, k=0)
        engine.run(make_events("A1 B2 A3 B5"))
        assert len(engine.results) == 1  # only (A1,B2) fits a 1-wide window

    def test_single_type_alphabet_self_join(self):
        pattern = seq("A first", "A second", "A third", within=10)
        events = [Event("A", ts) for ts in range(1, 8)]
        truth = OfflineOracle(pattern).evaluate_set(events)
        engine = OutOfOrderEngine(pattern, k=0)
        engine.run(events)
        assert engine.result_set() == truth
        assert len(truth) == 35  # C(7,3)

    def test_very_long_pattern(self):
        steps = [f"T{i} v{i}" for i in range(10)]
        pattern = seq(*steps, within=100)
        events = [Event(f"T{i}", i + 1) for i in range(10)]
        engine = OutOfOrderEngine(pattern, k=0)
        engine.run(events)
        assert len(engine.results) == 1

    def test_negation_only_bracket_without_candidates(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = OutOfOrderEngine(pattern, k=0)
        engine.run(make_events("A1 C5 Z99"))
        assert len(engine.results) == 1  # no B anywhere: bracket clear


class TestAdversarialArrival:
    def test_fully_reversed_arrival(self, abc_pattern, random_trace):
        arrival = sorted(random_trace, key=lambda e: -e.ts)
        truth = OfflineOracle(abc_pattern).evaluate_set(random_trace)
        engine = OutOfOrderEngine(abc_pattern, k=None)
        engine.run(arrival)
        assert engine.result_set() == truth

    def test_interleaved_extremes(self, plain_seq2):
        # Alternate very old / very new events under unbounded K.
        events = []
        for i in range(50):
            events.append(Event("A", i))
            events.append(Event("B", 1000 - i))
        engine = OutOfOrderEngine(plain_seq2, k=None)
        engine.run(events)
        truth = OfflineOracle(plain_seq2).evaluate_set(events)
        assert engine.result_set() == truth

    def test_duplicate_eids_from_replay_do_not_double_count(self, plain_seq2):
        # Feeding the same event object twice is two distinct occurrences
        # only if eids differ; identical eids model accidental replay.
        a = Event("A", 1, eid=777)
        b = Event("B", 2, eid=778)
        engine = OutOfOrderEngine(plain_seq2, k=None)
        engine.feed(a)
        engine.feed(a)  # accidental duplicate delivery
        engine.feed(b)
        engine.close()
        # both copies join (the engine is at-least-once w.r.t. transport
        # duplicates), but identity-keyed consumers dedupe to one:
        assert len(engine.result_set()) == 1

    def test_burst_of_late_events_all_dropped_cleanly(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=2)
        engine.feed(Event("Z", 1000))
        for ts in range(100):
            engine.feed(Event("A", ts))
        assert engine.stats.late_dropped == 100
        assert engine.state_size() == 0


class TestCrossEngineContractUnderAbuse:
    """All correct engines agree even on hostile input."""

    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_on_tie_heavy_disordered_traces(self, seed):
        import random

        rng = random.Random(seed)
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 8"
        )
        # Heavy timestamp ties + tiny window + disorder.
        events = [
            Event(rng.choice("ABC"), rng.randint(0, 15), {"x": rng.randint(0, 1)})
            for __ in range(120)
        ]
        arrival = bounded_shuffle(events, k=10, seed=seed)
        truth = OfflineOracle(pattern).evaluate_set(events)
        for engine in (
            OutOfOrderEngine(pattern, k=10),
            ReorderingEngine(pattern, k=10),
            PartitionedEngine(pattern, k=10),
        ):
            engine.run(list(arrival))
            assert engine.result_set() == truth, type(engine).__name__

    def test_inorder_engine_never_crashes_on_abuse(self, random_trace):
        import random

        arrival = random_trace[:]
        random.Random(1).shuffle(arrival)  # unbounded disorder
        pattern = seq("A a", "!B b", "C c", "!D d", "A a2", within=25)
        engine = InOrderEngine(pattern, purge=PurgePolicy.lazy(7))
        engine.run(arrival)  # wrong results expected; crashes not
        assert engine.stats.events_in == len(arrival)
