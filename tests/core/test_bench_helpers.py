"""Bench harness helpers (repro.bench.runner) not covered elsewhere."""

from repro import OutOfOrderEngine, seq
from repro.bench import oracle_truth, run_cell, sweep
from helpers import make_events


class TestSweep:
    def test_rows_tagged_with_knob(self):
        rows = sweep([1, 2, 3], lambda v: {"value": v * 10})
        assert [row["knob"] for row in rows] == [1, 2, 3]
        assert [row["value"] for row in rows] == [10, 20, 30]

    def test_existing_knob_not_overwritten(self):
        rows = sweep([1], lambda v: {"knob": "explicit"})
        assert rows[0]["knob"] == "explicit"


class TestRunCell:
    def test_without_truth_no_quality_fields(self, plain_seq2):
        cell = run_cell(OutOfOrderEngine(plain_seq2, k=0), make_events("A1 B2"))
        assert "recall" not in cell
        assert cell["matches"] == 1
        assert cell["events"] == 2

    def test_latency_fields_present(self, plain_seq2):
        cell = run_cell(OutOfOrderEngine(plain_seq2, k=0), make_events("A1 B2"))
        assert cell["lat_arrival_mean"] == 0.0
        assert cell["lat_occurrence_mean"] == 0.0

    def test_oracle_truth_helper(self, plain_seq2):
        events = make_events("A1 B2 A3 B4")
        truth = oracle_truth(plain_seq2, events)
        assert len(truth) == 3

    def test_counters_surface(self):
        pattern = seq("A a", "B b", within=10)
        cell = run_cell(OutOfOrderEngine(pattern, k=0), make_events("A1 B2 Z3"))
        assert cell["construction_triggers"] >= 1
        assert cell["engine"] == "OutOfOrderEngine"
