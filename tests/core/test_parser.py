"""Unit tests for the query-language parser (repro.core.parser)."""

import pytest

from repro import And, Attr, Comparison, Const, Event, Not, Or, ParseError, parse


class TestBasicParsing:
    def test_minimal_query(self):
        pattern = parse("PATTERN SEQ(A a) WITHIN 10")
        assert pattern.length == 1
        assert pattern.within == 10
        assert not pattern.where

    def test_multi_step_with_negation(self):
        pattern = parse("PATTERN SEQ(A a, !B b, C c) WITHIN 100")
        assert pattern.length == 2
        assert pattern.has_negation
        assert pattern.negated_types == {"B"}

    def test_where_clause(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 10")
        assert len(pattern.where) == 1

    def test_name_passed_through(self):
        pattern = parse("PATTERN SEQ(A a) WITHIN 10", name="myquery")
        assert pattern.name == "myquery"

    def test_default_name(self):
        assert parse("PATTERN SEQ(A a) WITHIN 10").name == "q"

    def test_keywords_case_insensitive(self):
        pattern = parse("pattern seq(A a, B b) where a.x == b.x within 10")
        assert pattern.length == 2


class TestOperandsAndOperators:
    def test_single_equals_is_equality(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x = b.x WITHIN 10")
        comparison = pattern.where[0]
        assert isinstance(comparison, Comparison)
        assert comparison.op == "=="

    @pytest.mark.parametrize("op", ["==", "!=", "<", "<=", ">", ">="])
    def test_all_comparison_operators(self, op):
        pattern = parse(f"PATTERN SEQ(A a) WHERE a.x {op} 5 WITHIN 10")
        assert pattern.where[0].op == op

    def test_integer_literal(self):
        pattern = parse("PATTERN SEQ(A a) WHERE a.x > 42 WITHIN 10")
        assert pattern.where[0].right == Const(42)

    def test_negative_integer_literal(self):
        pattern = parse("PATTERN SEQ(A a) WHERE a.x > -5 WITHIN 10")
        assert pattern.where[0].right == Const(-5)

    def test_float_literal(self):
        pattern = parse("PATTERN SEQ(A a) WHERE a.x > 2.5 WITHIN 10")
        assert pattern.where[0].right == Const(2.5)

    def test_string_literals_both_quotes(self):
        for quoted in ("'IBM'", '"IBM"'):
            pattern = parse(f"PATTERN SEQ(A a) WHERE a.sym == {quoted} WITHIN 10")
            assert pattern.where[0].right == Const("IBM")

    def test_boolean_literals(self):
        pattern = parse("PATTERN SEQ(A a) WHERE a.flag == true WITHIN 10")
        assert pattern.where[0].right == Const(True)
        pattern = parse("PATTERN SEQ(A a) WHERE a.flag == false WITHIN 10")
        assert pattern.where[0].right == Const(False)

    def test_attr_reference(self):
        pattern = parse("PATTERN SEQ(A a) WHERE a.price > 0 WITHIN 10")
        assert pattern.where[0].left == Attr("a", "price")


class TestBooleanStructure:
    def test_and_chain(self):
        pattern = parse(
            "PATTERN SEQ(A a, B b, C c) "
            "WHERE a.x == b.x AND b.x == c.x AND a.y > 0 WITHIN 10"
        )
        assert len(pattern.where) == 3  # flattened conjunction

    def test_or_grouping(self):
        pattern = parse("PATTERN SEQ(A a) WHERE a.x == 1 OR a.x == 2 WITHIN 10")
        assert isinstance(pattern.where[0], Or)

    def test_parentheses(self):
        pattern = parse(
            "PATTERN SEQ(A a, B b) WHERE (a.x == 1 OR a.x == 2) AND b.x == 3 WITHIN 10"
        )
        assert len(pattern.where) == 2
        assert isinstance(pattern.where[0], Or)

    def test_not(self):
        pattern = parse("PATTERN SEQ(A a) WHERE NOT a.x == 1 WITHIN 10")
        assert isinstance(pattern.where[0], Not)

    def test_and_binds_tighter_than_or(self):
        pattern = parse(
            "PATTERN SEQ(A a) WHERE a.x == 1 OR a.x == 2 AND a.y == 3 WITHIN 10"
        )
        disjunction = pattern.where[0]
        assert isinstance(disjunction, Or)
        assert isinstance(disjunction.children[1], And)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "SEQ(A a) WITHIN 10",  # missing PATTERN
            "PATTERN SEQ(A a)",  # missing WITHIN
            "PATTERN SEQ() WITHIN 10",  # no steps
            "PATTERN SEQ(A a WITHIN 10",  # missing paren
            "PATTERN SEQ(A a) WITHIN ten",  # non-integer window
            "PATTERN SEQ(A a) WHERE a.x WITHIN 10",  # incomplete comparison
            "PATTERN SEQ(A a) WHERE == 1 WITHIN 10",  # missing operand
            "PATTERN SEQ(A a) WITHIN 10 trailing",  # trailing garbage
            "PATTERN SEQ(A a) WHERE a WITHIN 10",  # attr without dot
        ],
    )
    def test_syntax_errors_raise_parse_error(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_unrecognised_character(self):
        with pytest.raises(ParseError, match="unrecognised"):
            parse("PATTERN SEQ(A a) WITHIN 10 $")

    def test_error_carries_position(self):
        try:
            parse("PATTERN SEQ(A a) WITHIN ten")
        except ParseError as exc:
            assert exc.position >= 0
        else:
            pytest.fail("expected ParseError")


class TestParsedSemantics:
    def test_parsed_query_evaluates_like_built_query(self):
        from repro import OfflineOracle, Pattern, Step, Eq

        parsed = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 10")
        built = Pattern(
            [Step("A", "a"), Step("B", "b")],
            where=[Eq(Attr("a", "x"), Attr("b", "x"))],
            within=10,
            name=parsed.name,
        )
        events = [
            Event("A", 1, {"x": 1}),
            Event("B", 3, {"x": 1}),
            Event("B", 4, {"x": 2}),
        ]
        assert (
            OfflineOracle(parsed).evaluate_set(events)
            == OfflineOracle(built).evaluate_set(events)
        )

    def test_ts_pseudo_attribute_usable_in_where(self):
        from repro import OfflineOracle

        pattern = parse("PATTERN SEQ(A a, B b) WHERE b.ts > 5 WITHIN 10")
        events = [Event("A", 1), Event("B", 3), Event("B", 7)]
        matches = OfflineOracle(pattern).evaluate(events)
        assert len(matches) == 1
        assert matches[0].events[1].ts == 7
