"""Exhaustive conformance: every small trace × every arrival permutation.

Property tests sample the space; these tests *cover* it for small
universes — every trace over a tiny alphabet/time-domain, under every
arrival permutation — giving airtight evidence on the exactly-once and
sealing machinery where off-by-one bugs live.
"""

import itertools

import pytest

from repro import Event, OfflineOracle, OutOfOrderEngine, seq


def all_traces(alphabet, timestamps, length):
    """Every trace of *length* events over alphabet × timestamps."""
    choices = list(itertools.product(alphabet, timestamps))
    for combo in itertools.product(choices, repeat=length):
        yield [Event(etype, ts) for etype, ts in combo]


class TestExhaustiveTwoStep:
    PATTERN = seq("A a", "B b", within=3, name="x2")

    def test_every_trace_every_permutation(self):
        checked = 0
        for trace in all_traces("AB", (0, 1, 2, 4), 3):
            truth = OfflineOracle(self.PATTERN).evaluate_set(trace)
            for permutation in itertools.permutations(trace):
                engine = OutOfOrderEngine(self.PATTERN, k=None)
                engine.run(list(permutation))
                assert engine.result_set() == truth, (trace, permutation)
                checked += 1
        assert checked == (2 * 4) ** 3 * 6  # 512 traces × 3! permutations

    def test_bounded_k_on_sorted_arrivals(self):
        # With events fed in ts order, k=0 must be exact for every trace.
        for trace in all_traces("AB", (0, 1, 2, 4), 3):
            truth = OfflineOracle(self.PATTERN).evaluate_set(trace)
            ordered = sorted(trace, key=lambda e: (e.ts, e.eid))
            engine = OutOfOrderEngine(self.PATTERN, k=0)
            engine.run(ordered)
            assert engine.result_set() == truth, trace


class TestExhaustiveNegation:
    PATTERN = seq("A a", "!N n", "B b", within=3, name="xneg")

    def test_every_trace_every_permutation(self):
        for trace in all_traces("ANB", (0, 1, 2), 3):
            truth = OfflineOracle(self.PATTERN).evaluate_set(trace)
            for permutation in itertools.permutations(trace):
                engine = OutOfOrderEngine(self.PATTERN, k=None)
                engine.run(list(permutation))
                assert engine.result_set() == truth, (trace, permutation)


class TestExhaustiveKleene:
    PATTERN = seq("A a", "M+ ms", "B b", within=3, name="xkln")

    def test_every_trace_every_permutation(self):
        for trace in all_traces("AMB", (0, 1, 2), 3):
            truth = OfflineOracle(self.PATTERN).evaluate_set(trace)
            for permutation in itertools.permutations(trace):
                engine = OutOfOrderEngine(self.PATTERN, k=None)
                engine.run(list(permutation))
                assert engine.result_set() == truth, (trace, permutation)


class TestExhaustiveBoundaryK:
    """Events delayed by exactly K sit on the is_late boundary."""

    PATTERN = seq("A a", "B b", within=5, name="xk")

    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_exact_k_delay_not_late(self, k):
        # B advances the clock to t; A arrives delayed by exactly k.
        for t in range(k, 6):
            engine = OutOfOrderEngine(self.PATTERN, k=k)
            engine.feed(Event("B", t))
            late_a = Event("A", t - k)
            assert not engine.clock.is_late(late_a)
            emitted = engine.feed(late_a)
            engine.close()
            if t - k < t:  # strictly before: a genuine match
                assert len(emitted) == 1, (t, k)
            assert engine.stats.late_dropped == 0

    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_k_plus_one_delay_is_late(self, k):
        engine = OutOfOrderEngine(self.PATTERN, k=k)
        engine.feed(Event("B", 10))
        late_a = Event("A", 10 - k - 1)
        assert engine.clock.is_late(late_a)
        engine.feed(late_a)
        assert engine.stats.late_dropped == 1

    def test_purge_boundary_exact(self):
        # An instance purged at the threshold must truly be unreachable:
        # verify on the exact boundary window.
        pattern = seq("A a", "B b", within=2, name="xpb")
        for clock_ts in range(3, 8):
            engine = OutOfOrderEngine(pattern, k=0)
            engine.feed(Event("A", 1))
            engine.feed(Event("Z", clock_ts))  # advances clock, purges
            # B at the window edge (ts=3) — only valid if it can still arrive
            # i.e. clock <= 3 (k=0 means ties allowed at the clock).
            emitted = engine.feed(Event("B", 3)) if clock_ts <= 3 else []
            engine.close()
            truth_events = [Event("A", 1, eid=10_000), Event("Z", clock_ts, eid=10_001)]
            if clock_ts <= 3:
                assert len(emitted) == (1 if clock_ts <= 3 else 0)
