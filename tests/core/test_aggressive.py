"""Aggressive strategy: optimistic emit + revocation (repro.core.aggressive)."""

import pytest

from repro import (
    AggressiveEngine,
    Event,
    OfflineOracle,
    OutOfOrderEngine,
    Revocation,
    seq,
)
from repro.metrics import summarize_arrival_latency
from helpers import bounded_shuffle, make_events


class TestPositivePatterns:
    def test_identical_to_conservative_without_negation(
        self, abc_pattern, random_trace
    ):
        arrival = bounded_shuffle(random_trace, k=15, seed=1)
        aggressive = AggressiveEngine(abc_pattern, k=15)
        aggressive.run(arrival)
        conservative = OutOfOrderEngine(abc_pattern, k=15)
        conservative.run(arrival)
        assert aggressive.result_set() == conservative.result_set()
        assert aggressive.revocations == []

    def test_zero_latency_for_positive_matches(self, plain_seq2, random_trace):
        arrival = bounded_shuffle(random_trace, k=10, seed=2)
        engine = AggressiveEngine(plain_seq2, k=10)
        engine.run(arrival)
        summary = summarize_arrival_latency(engine.emissions, arrival)
        assert summary.max == 0.0


class TestOptimisticNegation:
    def test_emits_immediately_despite_unsealed_bracket(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = AggressiveEngine(pattern, k=100)
        engine.feed(Event("A", 1))
        emitted = engine.feed(Event("C", 5))
        assert len(emitted) == 1  # conservative engine would hold this

    def test_known_negative_blocks_immediately(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = AggressiveEngine(pattern, k=100)
        engine.feed_many(make_events("A1 B3"))
        assert engine.feed(Event("C", 5)) == []
        assert engine.stats.matches_cancelled == 1

    def test_late_negative_triggers_revocation(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = AggressiveEngine(pattern, k=100)
        engine.feed_many(make_events("A1 C5"))
        assert len(engine.results) == 1
        engine.feed(Event("B", 3))  # late: invalidates the emitted match
        assert len(engine.revocations) == 1
        revocation = engine.revocations[0]
        assert isinstance(revocation, Revocation)
        assert revocation.caused_by.ts == 3
        assert revocation.match.key() not in engine.net_result_set()

    def test_unrelated_negative_does_not_revoke(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = AggressiveEngine(pattern, k=100)
        engine.feed_many(make_events("A1 C5"))
        engine.feed(Event("B", 7))  # outside bracket (1, 5)
        assert engine.revocations == []

    def test_sealed_match_cannot_be_revoked(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = AggressiveEngine(pattern, k=2)
        engine.feed_many(make_events("A1 C5"))
        engine.feed(Event("Z", 50))  # seals the bracket (k=2)
        # A very late B is dropped by the K policy; exposure is gone.
        engine.feed(Event("B", 3))
        assert engine.revocations == []
        assert len(engine.net_result_set()) == 1

    def test_take_revocations_consumes(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = AggressiveEngine(pattern, k=100)
        engine.feed_many(make_events("A1 C5 B3"))
        fresh = engine.take_revocations()
        assert len(fresh) == 1
        assert engine.take_revocations() == []
        assert len(engine.revocations) == 1  # cumulative log remains

    def test_double_revocation_impossible(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = AggressiveEngine(pattern, k=100)
        engine.feed_many(make_events("A1 C5 B3 B4"))
        assert len(engine.revocations) == 1


class TestNetResultParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_net_results_match_oracle(self, neg_pattern, random_trace, seed):
        arrival = bounded_shuffle(random_trace, k=12, seed=seed)
        truth = OfflineOracle(neg_pattern).evaluate_set(random_trace)
        engine = AggressiveEngine(neg_pattern, k=12)
        engine.run(arrival)
        assert engine.net_result_set() == truth

    def test_net_results_leading_trailing_negation(self, random_trace):
        for pattern in (
            seq("!B b", "A a", "C c", within=15),
            seq("A a", "C c", "!B b", within=15),
        ):
            arrival = bounded_shuffle(random_trace, k=10, seed=7)
            truth = OfflineOracle(pattern).evaluate_set(random_trace)
            engine = AggressiveEngine(pattern, k=10)
            engine.run(arrival)
            assert engine.net_result_set() == truth

    def test_revocations_counted_in_stats(self, neg_pattern, random_trace):
        arrival = bounded_shuffle(random_trace, k=12, seed=3)
        engine = AggressiveEngine(neg_pattern, k=12)
        engine.run(arrival)
        assert engine.stats.revocations == len(engine.revocations)


class TestLatencyAdvantage:
    def test_aggressive_beats_conservative_latency_on_negation(self, random_trace):
        pattern = seq("A a", "!B b", "C c", within=15)
        arrival = bounded_shuffle(random_trace, k=10, seed=4)

        aggressive = AggressiveEngine(pattern, k=10)
        aggressive.run(arrival)
        conservative = OutOfOrderEngine(pattern, k=10)
        conservative.run(arrival)

        fast = summarize_arrival_latency(aggressive.emissions, arrival)
        slow = summarize_arrival_latency(conservative.emissions, arrival)
        assert fast.mean <= slow.mean
        assert fast.mean == 0.0
