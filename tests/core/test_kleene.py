"""Kleene closure (``E+``) semantics across oracle and engines."""

import pytest

from repro import (
    AggressiveEngine,
    Event,
    InOrderEngine,
    OfflineOracle,
    OutOfOrderEngine,
    PartitionedEngine,
    Punctuation,
    QueryError,
    ReorderingEngine,
    Step,
    oracle_matches,
    parse,
    seq,
)
from helpers import bounded_shuffle, make_events


@pytest.fixture
def abc_kleene():
    return seq("A a", "B+ bs", "C c", within=20)


@pytest.fixture
def keyed_kleene():
    return parse(
        "PATTERN SEQ(A a, B+ bs, C c) "
        "WHERE a.x == c.x AND bs.x == a.x WITHIN 20"
    )


class TestPatternCompilation:
    def test_kleene_step_not_an_anchor(self, abc_kleene):
        assert abc_kleene.length == 2
        assert abc_kleene.has_kleene
        assert abc_kleene.kleene_types == {"B"}
        assert abc_kleene.relevant_types == {"A", "B", "C"}

    def test_parser_syntax(self):
        pattern = parse("PATTERN SEQ(A a, B+ bs, C c) WITHIN 10")
        assert pattern.has_kleene
        assert pattern.kleene[0].step.var == "bs"

    def test_repr_roundtrips(self, keyed_kleene):
        reparsed = parse(repr(keyed_kleene), name=keyed_kleene.name)
        assert reparsed.has_kleene
        assert reparsed.kleene[0].predicates == keyed_kleene.kleene[0].predicates

    def test_leading_kleene_rejected(self):
        with pytest.raises(QueryError, match="strictly between"):
            seq("B+ bs", "A a", within=10)

    def test_trailing_kleene_rejected(self):
        with pytest.raises(QueryError, match="strictly between"):
            seq("A a", "B+ bs", within=10)

    def test_negated_kleene_rejected(self):
        with pytest.raises(QueryError, match="meaningless"):
            Step("B", "b", negated=True, kleene=True)

    def test_kleene_predicates_partitioned(self, keyed_kleene):
        assert len(keyed_kleene.kleene[0].predicates) == 1
        assert len(keyed_kleene.positive_predicates) == 1


class TestOracleSemantics:
    def test_collects_all_qualifying_events(self, abc_kleene):
        matches = oracle_matches(abc_kleene, make_events("A1 B3 B5 C9"))
        assert len(matches) == 1
        assert [e.ts for e in matches[0].collections["bs"]] == [3, 5]

    def test_empty_collection_cancels_match(self, abc_kleene):
        assert oracle_matches(abc_kleene, make_events("A1 C9")) == []

    def test_elements_strictly_inside_anchor_interval(self, abc_kleene):
        matches = oracle_matches(abc_kleene, make_events("B1 A1 B9 C9 B5"))
        assert len(matches) == 1
        assert [e.ts for e in matches[0].collections["bs"]] == [5]

    def test_predicates_filter_elements(self, keyed_kleene):
        events = [
            Event("A", 1, {"x": 1}),
            Event("B", 3, {"x": 1}),
            Event("B", 4, {"x": 2}),  # wrong partition: not collected
            Event("C", 9, {"x": 1}),
        ]
        matches = oracle_matches(keyed_kleene, events)
        assert len(matches) == 1
        assert [e.ts for e in matches[0].collections["bs"]] == [3]

    def test_predicates_can_cancel_via_empty_collection(self, keyed_kleene):
        events = [
            Event("A", 1, {"x": 1}),
            Event("B", 3, {"x": 2}),
            Event("C", 9, {"x": 1}),
        ]
        assert oracle_matches(keyed_kleene, events) == []

    def test_per_anchor_combination_collections(self, abc_kleene):
        matches = oracle_matches(abc_kleene, make_events("A1 B3 C5 B7 C9"))
        by_c = {m.events[1].ts: [e.ts for e in m.collections["bs"]] for m in matches}
        assert by_c == {5: [3], 9: [3, 7]}

    def test_two_kleene_steps(self):
        pattern = seq("A a", "B+ bs", "C c", "D+ ds", "E e", within=40)
        matches = oracle_matches(pattern, make_events("A1 B2 B3 C5 D7 E9"))
        assert len(matches) == 1
        assert len(matches[0].collections) == 2

    def test_match_key_includes_collections(self, abc_kleene):
        first = oracle_matches(abc_kleene, make_events("A1 B3 C9"))[0]
        second = oracle_matches(abc_kleene, make_events("A1 B3 B5 C9"))[0]
        assert first.key() != second.key()


class TestOutOfOrderEngine:
    def test_held_until_interval_sealed(self, abc_kleene):
        engine = OutOfOrderEngine(abc_kleene, k=5)
        engine.feed_many(make_events("A1 B3 C9"))
        assert engine.results == []  # a late B could still extend bs
        emitted = engine.feed(Event("Z", 30))
        assert len(emitted) == 1
        assert [e.ts for e in emitted[0].collections["bs"]] == [3]

    def test_late_kleene_element_included(self, abc_kleene):
        engine = OutOfOrderEngine(abc_kleene, k=10)
        engine.feed_many(make_events("A1 B3 C9"))
        engine.feed(Event("B", 5))  # late element inside the interval
        engine.feed(Event("Z", 40))
        assert len(engine.results) == 1
        assert [e.ts for e in engine.results[0].collections["bs"]] == [3, 5]

    def test_late_anchor_works_too(self, abc_kleene):
        engine = OutOfOrderEngine(abc_kleene, k=10)
        engine.feed_many(make_events("B3 C9"))
        engine.feed(Event("A", 1))  # late first anchor
        engine.feed(Event("Z", 40))
        assert len(engine.results) == 1

    def test_close_flushes_with_known_elements(self, abc_kleene):
        engine = OutOfOrderEngine(abc_kleene, k=100)
        engine.feed_many(make_events("A1 B3 C9"))
        emitted = engine.close()
        assert len(emitted) == 1

    def test_punctuation_seals_kleene(self, abc_kleene):
        engine = OutOfOrderEngine(abc_kleene)  # no K promise
        engine.feed_many(make_events("A1 B3 C9"))
        emitted = engine.feed(Punctuation(8))
        assert len(emitted) == 1

    def test_kleene_store_purged(self, abc_kleene):
        engine = OutOfOrderEngine(abc_kleene, k=0)
        for ts in range(1, 500, 2):
            engine.feed(Event("B", ts))
        assert engine.kleene_store.size() < 25

    @pytest.mark.parametrize("seed", range(4))
    def test_oracle_parity_under_disorder(self, keyed_kleene, random_trace, seed):
        arrival = bounded_shuffle(random_trace, k=12, seed=seed)
        truth = OfflineOracle(keyed_kleene).evaluate_set(random_trace)
        engine = OutOfOrderEngine(keyed_kleene, k=12)
        engine.run(arrival)
        assert engine.result_set() == truth


class TestOtherEngines:
    def test_inorder_exact_on_ordered_input(self, keyed_kleene, random_trace):
        truth = OfflineOracle(keyed_kleene).evaluate_set(random_trace)
        engine = InOrderEngine(keyed_kleene)
        engine.run(random_trace)
        assert engine.result_set() == truth

    def test_inorder_breaks_under_disorder(self, keyed_kleene, random_trace):
        arrival = bounded_shuffle(random_trace, k=15, seed=5)
        truth = OfflineOracle(keyed_kleene).evaluate_set(random_trace)
        engine = InOrderEngine(keyed_kleene)
        engine.run(arrival)
        assert engine.result_set() != truth

    def test_reorder_exact_under_disorder(self, keyed_kleene, random_trace):
        arrival = bounded_shuffle(random_trace, k=15, seed=6)
        truth = OfflineOracle(keyed_kleene).evaluate_set(random_trace)
        engine = ReorderingEngine(keyed_kleene, k=15)
        engine.run(arrival)
        assert engine.result_set() == truth

    def test_aggressive_conservative_fallback_is_exact(
        self, keyed_kleene, random_trace
    ):
        arrival = bounded_shuffle(random_trace, k=15, seed=7)
        truth = OfflineOracle(keyed_kleene).evaluate_set(random_trace)
        engine = AggressiveEngine(keyed_kleene, k=15)
        engine.run(arrival)
        assert engine.net_result_set() == truth
        assert engine.revocations == []  # kleene path never exposes

    def test_partitioned_exact_under_disorder(self, keyed_kleene, random_trace):
        arrival = bounded_shuffle(random_trace, k=15, seed=8)
        truth = OfflineOracle(keyed_kleene).evaluate_set(random_trace)
        engine = PartitionedEngine(keyed_kleene, k=15)
        engine.run(arrival)
        assert engine.result_set() == truth


class TestBindingsAndTransformation:
    def test_bindings_include_collection(self, abc_kleene):
        match = oracle_matches(abc_kleene, make_events("A1 B3 C9"))[0]
        bindings = match.bindings()
        assert bindings["a"].ts == 1
        assert [e.ts for e in bindings["bs"]] == [3]

    def test_composite_event_can_aggregate_collection(self, abc_kleene):
        from repro import CompositeEventFactory

        factory = CompositeEventFactory(
            "BURST", {"count": lambda b: len(b["bs"])}
        )
        match = oracle_matches(abc_kleene, make_events("A1 B3 B5 B7 C9"))[0]
        assert factory.build(match)["count"] == 3

    def test_repr_shows_collection(self, abc_kleene):
        match = oracle_matches(abc_kleene, make_events("A1 B3 C9"))[0]
        assert "bs=[B@3]" in repr(match)
