"""Unit tests for StreamClock (repro.core.clock)."""

import pytest

from repro import ConfigurationError, Event, Punctuation, StreamClock


class TestClockBasics:
    def test_initial_state(self):
        clock = StreamClock(k=5)
        assert clock.now == -1
        assert clock.horizon() == -1
        assert clock.observations == 0

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamClock(k=-1)
        with pytest.raises(ConfigurationError):
            StreamClock(k=1.5)
        with pytest.raises(ConfigurationError):
            StreamClock(k=True)

    def test_observe_advances_now(self):
        clock = StreamClock(k=5)
        clock.observe(Event("A", 10))
        assert clock.now == 10

    def test_observe_reports_disorder(self):
        clock = StreamClock(k=5)
        assert clock.observe(Event("A", 10)) is False
        assert clock.observe(Event("A", 7)) is True
        assert clock.observe(Event("A", 10)) is False  # tie is not disorder
        assert clock.observe(Event("A", 11)) is False
        assert clock.now == 11

    def test_observation_count(self):
        clock = StreamClock()
        for ts in (1, 2, 3):
            clock.observe(Event("A", ts))
        assert clock.observations == 3


class TestHorizon:
    def test_horizon_lags_clock_by_k_plus_one(self):
        clock = StreamClock(k=5)
        clock.observe(Event("A", 10))
        assert clock.horizon() == 4  # events at ts<=4 can no longer arrive

    def test_k_zero_horizon(self):
        clock = StreamClock(k=0)
        clock.observe(Event("A", 10))
        assert clock.horizon() == 9

    def test_unbounded_k_never_advances_horizon(self):
        clock = StreamClock(k=None)
        clock.observe(Event("A", 1000))
        assert clock.horizon() == -1

    def test_sealed(self):
        clock = StreamClock(k=3)
        clock.observe(Event("A", 10))
        assert clock.sealed(6)
        assert not clock.sealed(7)


class TestLateness:
    def test_event_above_horizon_not_late(self):
        clock = StreamClock(k=5)
        clock.observe(Event("A", 10))
        assert not clock.is_late(Event("B", 5))

    def test_event_at_or_below_horizon_is_late(self):
        clock = StreamClock(k=5)
        clock.observe(Event("A", 10))
        assert clock.is_late(Event("B", 4))
        assert clock.is_late(Event("B", 0))

    def test_in_order_stream_never_late_with_k_zero(self):
        clock = StreamClock(k=0)
        for ts in range(100):
            event = Event("A", ts)
            assert not clock.is_late(event)
            clock.observe(event)

    def test_first_event_never_late(self):
        assert not StreamClock(k=0).is_late(Event("A", 0))


class TestPunctuation:
    def test_punctuation_advances_horizon(self):
        clock = StreamClock(k=None)
        clock.observe(Event("A", 10))
        clock.observe_punctuation(Punctuation(7))
        assert clock.horizon() == 7

    def test_punctuation_never_regresses(self):
        clock = StreamClock(k=None)
        clock.observe_punctuation(Punctuation(7))
        clock.observe_punctuation(Punctuation(3))
        assert clock.horizon() == 7

    def test_punctuation_can_advance_now(self):
        clock = StreamClock(k=2)
        clock.observe_punctuation(Punctuation(50))
        assert clock.now == 50

    def test_horizon_is_max_of_k_and_punctuation(self):
        clock = StreamClock(k=2)
        clock.observe(Event("A", 10))  # k-horizon = 7
        clock.observe_punctuation(Punctuation(3))
        assert clock.horizon() == 7
        clock.observe_punctuation(Punctuation(9))
        assert clock.horizon() == 9


class TestReset:
    def test_reset_restores_initial_state(self):
        clock = StreamClock(k=5)
        clock.observe(Event("A", 10))
        clock.observe_punctuation(Punctuation(8))
        clock.reset()
        assert clock.now == -1
        assert clock.horizon() == -1
        assert clock.observations == 0

    def test_repr_mentions_now_and_horizon(self):
        clock = StreamClock(k=5)
        clock.observe(Event("A", 10))
        assert "now=10" in repr(clock)
