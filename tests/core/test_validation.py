"""Admission-time validation: malformed elements never enter an engine.

A NaN timestamp silently poisons every ordered structure the engines
rest on (heaps, sorted stacks, clock comparisons), so malformation is
caught at the door: ``LatePolicy``-style policy choice between
rejecting the stream (:class:`StreamError`, the default) and
count-and-quarantine.  The batch loops must behave identically to the
per-event path — validation is part of the feed/feed_batch parity
contract.
"""

import math

import pytest

from repro import (
    Event,
    InOrderEngine,
    OutOfOrderEngine,
    Punctuation,
    ReorderingEngine,
    StreamError,
    ValidationPolicy,
    seq,
)
from repro.core.event import admission_error, malformed_reason
from repro.faultinject import corrupt_event, forge_event

PATTERN = seq("A a", "B b", within=10, name="val")


def engines():
    return [
        OutOfOrderEngine(PATTERN, k=5),
        InOrderEngine(PATTERN),
        ReorderingEngine(PATTERN, k=5),
    ]


def _forge_punctuation(ts):
    punctuation = object.__new__(Punctuation)
    object.__setattr__(punctuation, "ts", ts)
    return punctuation


MALFORMED = {
    "negative_ts": forge_event("A", -3),
    "float_ts": forge_event("A", 2.5),
    "nan_ts": forge_event("A", math.nan),
    "bool_ts": forge_event("A", True),
    "missing_type": forge_event("", 4),
    "none_type": forge_event(None, 4),
    "not_an_element": "just a string",
    "bad_punctuation": _forge_punctuation(-1),
}


class TestMalformedReason:
    @pytest.mark.parametrize("shape", sorted(MALFORMED))
    def test_every_shape_has_a_reason(self, shape):
        assert malformed_reason(MALFORMED[shape]) is not None

    def test_well_formed_has_none(self):
        assert malformed_reason(Event("A", 3, {"x": 1})) is None
        assert malformed_reason(Punctuation(3)) is None

    def test_admission_error_names_the_reason(self):
        error = admission_error(MALFORMED["nan_ts"])
        assert isinstance(error, StreamError)
        assert "admission" in str(error)

    @pytest.mark.parametrize("shape", ["negative_ts", "float_ts", "nan_ts", "missing_type"])
    def test_corrupt_event_shapes_are_malformed(self, shape):
        assert malformed_reason(corrupt_event(Event("A", 7, {"x": 0}), shape))


class TestRaisePolicy:
    @pytest.mark.parametrize("shape", sorted(MALFORMED))
    def test_feed_rejects_each_shape(self, shape):
        for engine in engines():
            with pytest.raises(StreamError):
                engine.feed(MALFORMED[shape])
            assert engine.stats.events_in == 0  # rejected before counting

    @pytest.mark.parametrize("shape", sorted(MALFORMED))
    def test_feed_batch_rejects_each_shape(self, shape):
        for engine in engines():
            with pytest.raises(StreamError):
                engine.feed_batch(
                    [Event("A", 1, {}), MALFORMED[shape], Event("B", 2, {})]
                )
            # The well-formed prefix was admitted before the rejection,
            # exactly as the per-event loop would have.
            assert engine.stats.events_in == 1


class TestQuarantinePolicy:
    def test_quarantine_counts_and_skips(self):
        for engine in engines():
            engine.validation = ValidationPolicy.QUARANTINE
            out = engine.feed(MALFORMED["nan_ts"])
            assert out == []
            assert engine.stats.events_quarantined == 1
            assert engine.stats.events_in == 0

    def test_batch_parity_with_per_event(self):
        stream = [
            Event("A", 1, {}),
            MALFORMED["float_ts"],
            Event("B", 3, {}),
            MALFORMED["bad_punctuation"],
            Event("A", 4, {}),
            MALFORMED["missing_type"],
            Event("B", 6, {}),
        ]
        for batched, single in zip(engines(), engines()):
            batched.validation = ValidationPolicy.QUARANTINE
            single.validation = ValidationPolicy.QUARANTINE
            batched_out = batched.feed_batch(stream)
            single_out = [m for el in stream for m in single.feed(el)]
            batched_out += batched.close()
            single_out += single.close()
            assert [m.key() for m in batched_out] == [m.key() for m in single_out]
            assert batched.stats.as_dict() == single.stats.as_dict()
            assert batched.stats.events_quarantined == 3

    def test_matching_unaffected_by_quarantined_neighbors(self):
        engine = OutOfOrderEngine(PATTERN, k=5)
        engine.validation = ValidationPolicy.QUARANTINE
        clean = OutOfOrderEngine(PATTERN, k=5)
        a, b = Event("A", 1, {}), Event("B", 3, {})
        dirty = [corrupt_event(a, "nan_ts"), a, corrupt_event(b, "float_ts"), b]
        out = engine.feed_batch(dirty) + engine.close()
        ref = clean.feed_batch([a, b]) + clean.close()
        assert [m.key() for m in out] == [m.key() for m in ref]
