"""Purge correctness and effectiveness (repro.core.purge + engine)."""

import pytest

from repro import (
    ConfigurationError,
    Event,
    OutOfOrderEngine,
    PurgeMode,
    PurgePolicy,
    seq,
)
from repro.core.purge import Purger
from repro.core.stacks import Instance, StackSet
from helpers import bounded_shuffle, engine_vs_oracle, make_events


class TestPurgePolicySchedule:
    def test_eager_always_due(self):
        policy = PurgePolicy.eager()
        assert all(policy.due() for __ in range(5))

    def test_none_never_due(self):
        policy = PurgePolicy.none()
        assert not any(policy.due() for __ in range(5))

    def test_lazy_due_every_interval(self):
        policy = PurgePolicy.lazy(interval=3)
        observed = [policy.due() for __ in range(9)]
        assert observed == [False, False, True] * 3

    def test_lazy_interval_validated(self):
        with pytest.raises(ConfigurationError):
            PurgePolicy.lazy(interval=0)

    def test_reset(self):
        policy = PurgePolicy.lazy(interval=2)
        policy.due()
        policy.reset()
        assert [policy.due(), policy.due()] == [False, True]

    def test_repr(self):
        assert "eager" in repr(PurgePolicy.eager())
        assert "interval=7" in repr(PurgePolicy.lazy(interval=7))
        assert PurgePolicy.eager().mode is PurgeMode.EAGER


class TestPurgerThresholds:
    def _stacks(self, length, placements):
        stacks = StackSet(length)
        for step, ts in placements:
            stacks[step].insert(Instance(Event("X", ts), 0))
        return stacks

    def test_non_final_steps_keep_window_reach(self):
        purger = Purger(window=10, pattern_length=2)
        stacks = self._stacks(2, [(0, 5), (0, 20), (1, 5), (1, 20)])
        purger.run(horizon=15, stacks=stacks)
        # step 0 threshold: horizon - W = 5 -> ts<=5 purged.
        assert [i.ts for i in stacks[0]] == [20]
        # final step threshold: horizon + 1 = 16 -> ts<=16 purged.
        assert [i.ts for i in stacks[1]] == [20]

    def test_negative_horizon_is_noop(self):
        purger = Purger(window=10, pattern_length=2)
        stacks = self._stacks(2, [(0, 5)])
        assert purger.run(horizon=-1, stacks=stacks) == 0
        assert stacks.size() == 1

    def test_stats_updated(self):
        from repro.core.stats import EngineStats

        purger = Purger(window=2, pattern_length=1)
        stacks = self._stacks(1, [(0, 1), (0, 2)])
        stats = EngineStats()
        purger.run(horizon=5, stacks=stacks, stats=stats)
        assert stats.purge_runs == 1
        assert stats.instances_purged == 2


class TestPurgeSafety:
    """Purging must never change results — only memory."""

    @pytest.mark.parametrize(
        "policy_factory",
        [PurgePolicy.eager, PurgePolicy.none, lambda: PurgePolicy.lazy(16)],
    )
    def test_results_identical_across_policies(
        self, abc_pattern, random_trace, policy_factory
    ):
        arrival = bounded_shuffle(random_trace, k=15, seed=11)
        engine_vs_oracle(abc_pattern, arrival, k=15, purge=policy_factory())

    @pytest.mark.parametrize("k", [0, 3, 20])
    def test_purge_safe_at_every_k(self, abc_pattern, random_trace, k):
        arrival = bounded_shuffle(random_trace, k=k, seed=5)
        engine_vs_oracle(abc_pattern, arrival, k=k, purge=PurgePolicy.eager())

    def test_purge_safe_with_negation(self, neg_pattern, random_trace):
        arrival = bounded_shuffle(random_trace, k=10, seed=6)
        engine_vs_oracle(neg_pattern, arrival, k=10, purge=PurgePolicy.eager())

    def test_purge_safe_with_lazy_and_negation(self, neg_pattern, random_trace):
        arrival = bounded_shuffle(random_trace, k=10, seed=7)
        engine_vs_oracle(neg_pattern, arrival, k=10, purge=PurgePolicy.lazy(32))


class TestPurgeEffectiveness:
    def test_eager_bounds_state(self, plain_seq2):
        events = [Event("A", ts) for ts in range(1, 2001)]
        engine = OutOfOrderEngine(plain_seq2, k=0, purge=PurgePolicy.eager())
        engine.feed_many(events)
        # Window 10, K 0: state is O(window), not O(stream).
        assert engine.state_size() < 50

    def test_no_purge_grows_linearly(self, plain_seq2):
        events = [Event("A", ts) for ts in range(1, 2001)]
        engine = OutOfOrderEngine(plain_seq2, k=0, purge=PurgePolicy.none())
        engine.feed_many(events)
        assert engine.state_size() == 2000

    def test_lazy_state_between_eager_and_none(self, plain_seq2):
        events = [Event("A", ts) for ts in range(1, 2001)]

        def peak(policy):
            engine = OutOfOrderEngine(plain_seq2, k=0, purge=policy)
            engine.feed_many(events)
            return engine.stats.peak_state_size

        eager_peak = peak(PurgePolicy.eager())
        lazy_peak = peak(PurgePolicy.lazy(100))
        none_peak = peak(PurgePolicy.none())
        assert eager_peak <= lazy_peak <= none_peak
        assert none_peak == 2000

    def test_larger_k_retains_more(self, plain_seq2):
        events = [Event("A", ts) for ts in range(1, 1001)]

        def peak(k):
            engine = OutOfOrderEngine(plain_seq2, k=k, purge=PurgePolicy.eager())
            engine.feed_many(events)
            return engine.stats.peak_state_size

        assert peak(0) < peak(100) < peak(500)

    def test_negatives_purged_too(self):
        pattern = seq("A a", "!B b", "C c", within=5)
        engine = OutOfOrderEngine(pattern, k=0, purge=PurgePolicy.eager())
        elements = []
        for ts in range(1, 500, 2):
            elements.append(Event("B", ts))
            elements.append(Event("Z", ts + 1))
        engine.feed_many(elements)
        assert engine.negatives.size() < 20
        assert engine.stats.negatives_purged > 200

    def test_purged_events_dont_resurface(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0, purge=PurgePolicy.eager())
        engine.feed(Event("A", 1))
        engine.feed(Event("Z", 100))  # advances clock, purges A@1
        engine.feed(Event("B", 101))
        # A@1..B@101 exceeds window anyway; check state truly empty of A
        assert engine.stacks[0].min_ts() is None or engine.stacks[0].min_ts() > 1


class TestSharedPolicyGuard:
    def test_policies_are_stateful_not_shared_by_default(self, plain_seq2):
        # Two engines built without explicit policies get independent ones.
        first = OutOfOrderEngine(plain_seq2, k=0)
        second = OutOfOrderEngine(plain_seq2, k=0)
        assert first.purge_policy is not second.purge_policy

    def test_engines_sharing_one_policy_keep_independent_schedules(self, plain_seq2):
        # Regression: PurgePolicy carries mutable countdown state, so two
        # engines handed the same lazy policy used to interleave their
        # schedules (each feed advancing the other's countdown).  Engines
        # now clone the policy at construction.
        shared = PurgePolicy.lazy(2)
        first = OutOfOrderEngine(plain_seq2, k=0, purge=shared)
        second = OutOfOrderEngine(plain_seq2, k=0, purge=shared)
        assert first.purge_policy is not shared
        assert second.purge_policy is not shared
        assert first.purge_policy is not second.purge_policy
        # Alternate feeds; with the shared counter the interleaving made
        # one engine purge after its first event and the other never.
        for ts in range(1, 5):
            first.feed(Event("A", ts))
            second.feed(Event("A", ts))
        assert first.stats.purge_runs == 2
        assert second.stats.purge_runs == 2
        # The caller's object was never advanced behind its back.
        assert shared._since_last == 0
