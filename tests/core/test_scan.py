"""Unit tests for sequence scan (repro.core.scan)."""

import pytest

from repro import Event, Pattern, Step, Gt, Attr, Const, seq
from repro.core.scan import SequenceScanner
from repro.core.stacks import Instance, StackSet
from repro.core.stats import EngineStats


@pytest.fixture
def pattern():
    return seq("A a", "B b", "C c", within=10)


@pytest.fixture
def stacks(pattern):
    return StackSet(pattern.length)


class TestRelevance:
    def test_positive_types_relevant(self, pattern):
        scanner = SequenceScanner(pattern)
        assert scanner.relevant(Event("A", 1))
        assert scanner.relevant(Event("C", 1))

    def test_negated_types_relevant(self):
        scanner = SequenceScanner(seq("A a", "!B b", "C c", within=10))
        assert scanner.relevant(Event("B", 1))

    def test_noise_irrelevant(self, pattern):
        scanner = SequenceScanner(pattern)
        assert not scanner.relevant(Event("ZZZ", 1))


class TestAdmission:
    def test_admitted_to_matching_step(self, pattern):
        scanner = SequenceScanner(pattern)
        assert scanner.admissible_steps(Event("B", 1)) == [1]

    def test_type_at_multiple_steps(self):
        scanner = SequenceScanner(seq("A first", "A second", within=10))
        assert scanner.admissible_steps(Event("A", 1)) == [0, 1]

    def test_unknown_type_not_admitted(self, pattern):
        scanner = SequenceScanner(pattern)
        assert scanner.admissible_steps(Event("Z", 1)) == []

    def test_local_predicate_filters_admission(self):
        pattern = Pattern(
            [Step("A", "a"), Step("B", "b")],
            where=[Gt(Attr("a", "x"), Const(5))],
            within=10,
        )
        scanner = SequenceScanner(pattern)
        assert scanner.admissible_steps(Event("A", 1, {"x": 9})) == [0]
        assert scanner.admissible_steps(Event("A", 1, {"x": 3})) == []

    def test_cross_variable_predicate_does_not_block_admission(self):
        pattern = Pattern(
            [Step("A", "a"), Step("B", "b")],
            where=[Gt(Attr("b", "x"), Attr("a", "x"))],
            within=10,
        )
        scanner = SequenceScanner(pattern)
        assert scanner.admissible_steps(Event("B", 1, {"x": 0})) == [1]


class TestFeasibilityProbe:
    def _fill(self, stacks, step, timestamps):
        for arrival, ts in enumerate(timestamps):
            stacks[step].insert(Instance(Event("X", ts), arrival))

    def test_final_step_feasible_when_earlier_stacks_populated(self, pattern, stacks):
        scanner = SequenceScanner(pattern)
        self._fill(stacks, 0, [1])
        self._fill(stacks, 1, [3])
        assert scanner.construction_feasible(stacks, 2, Event("C", 5))

    def test_infeasible_when_earlier_stack_empty(self, pattern, stacks):
        scanner = SequenceScanner(pattern)
        self._fill(stacks, 0, [1])
        stats = EngineStats()
        assert not scanner.construction_feasible(stacks, 2, Event("C", 5), stats)
        assert stats.construction_skipped_by_probe == 1

    def test_infeasible_when_earlier_events_not_older(self, pattern, stacks):
        scanner = SequenceScanner(pattern)
        self._fill(stacks, 0, [1])
        self._fill(stacks, 1, [7])  # younger than the trigger at ts=5
        assert not scanner.construction_feasible(stacks, 2, Event("C", 5))

    def test_infeasible_when_earlier_events_outside_window(self, pattern, stacks):
        scanner = SequenceScanner(pattern)
        self._fill(stacks, 0, [1])
        self._fill(stacks, 1, [3])
        # Window is 10: an earlier event at ts=1 is outside [40, 50).
        assert not scanner.construction_feasible(stacks, 2, Event("C", 50))

    def test_midstep_trigger_needs_later_stack_content(self, pattern, stacks):
        scanner = SequenceScanner(pattern)
        self._fill(stacks, 0, [1])
        # Trigger at step 1 (B): stack C empty -> infeasible (classic
        # in-order situation where construction waits for the final step).
        assert not scanner.construction_feasible(stacks, 1, Event("B", 3))

    def test_midstep_trigger_feasible_when_suffix_arrived(self, pattern, stacks):
        scanner = SequenceScanner(pattern)
        self._fill(stacks, 0, [1])
        self._fill(stacks, 2, [6])
        assert scanner.construction_feasible(stacks, 1, Event("B", 3))

    def test_later_events_must_be_within_window(self, pattern, stacks):
        scanner = SequenceScanner(pattern)
        self._fill(stacks, 0, [1])
        self._fill(stacks, 2, [90])
        assert not scanner.construction_feasible(stacks, 1, Event("B", 3))

    def test_unoptimised_scanner_always_feasible(self, pattern, stacks):
        scanner = SequenceScanner(pattern, optimize=False)
        assert scanner.construction_feasible(stacks, 2, Event("C", 5))

    def test_single_step_pattern_always_feasible(self):
        pattern = seq("A a", within=10)
        scanner = SequenceScanner(pattern)
        stacks = StackSet(1)
        assert scanner.construction_feasible(stacks, 0, Event("A", 1))
