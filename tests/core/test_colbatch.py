"""Columnar event batches (repro.core.colbatch) and the fused feed path."""

import random

import pytest

from repro import (
    Event,
    EventBatch,
    FnPredicate,
    OutOfOrderEngine,
    StreamError,
    parse,
)
from repro.core.colbatch import BATCH_FORMAT, BatchBuilder, EventBatchView


def _rows(batch):
    """Full content tuple per row — identity AND attribute payload."""
    return [
        (e.etype, e.ts, e.eid, e.attrs) for e in batch.to_events()
    ]


def _expect(events):
    return [(e.etype, e.ts, e.eid, e.attrs) for e in events]


# -- round trip -------------------------------------------------------------------


def test_round_trip_plain():
    events = [Event("A", 1, {"x": 1}), Event("B", 2, {"x": 2, "y": "s"})]
    batch = EventBatch.from_events(events)
    assert len(batch) == 2
    assert _rows(batch) == _expect(events)


def test_round_trip_duplicate_timestamps():
    events = [Event("A", 5, {"x": i}) for i in range(4)]
    batch = EventBatch.from_events(events)
    assert _rows(batch) == _expect(events)
    assert [e.eid for e in batch.to_events()] == [e.eid for e in events]


def test_round_trip_missing_and_heterogeneous_attrs():
    events = [
        Event("A", 1, {"x": 1}),
        Event("A", 2),  # no attrs at all
        Event("B", 3, {"y": "str"}),
        Event("A", 4, {"x": "not-an-int", "y": 2.5}),
        Event("B", 5, {"x": None}),  # present-with-None != absent
    ]
    batch = EventBatch.from_events(events)
    assert _rows(batch) == _expect(events)
    assert batch.attr_at("x", 1) == (False, None)  # absent
    assert batch.attr_at("x", 2) == (False, None)  # absent on this row too
    assert batch.attr_at("x", 3) == (True, "not-an-int")
    # the last row carries an explicit None — present, not absent:
    assert batch.attr_at("x", 4) == (True, None)


def test_round_trip_unhashable_attr_values():
    events = [
        Event("A", 1, {"x": [1, 2]}),
        Event("A", 2, {"x": {"k": "v"}}),
    ]
    batch = EventBatch.from_events(events)
    assert _rows(batch) == _expect(events)


def test_from_events_rejects_non_events():
    from repro import Punctuation

    with pytest.raises(StreamError, match="events only"):
        EventBatch.from_events([Event("A", 1), Punctuation(1)])


# -- codec fuzz -------------------------------------------------------------------


def _random_events(rng, n):
    events = []
    for _ in range(n):
        attrs = {}
        for name in ("x", "y", "z"):
            draw = rng.random()
            if draw < 0.3:
                continue  # missing
            if draw < 0.6:
                attrs[name] = rng.randrange(-(2**70), 2**70)  # incl. big ints
            elif draw < 0.8:
                attrs[name] = rng.choice(["s", "", None, True, 2.5])
            else:
                attrs[name] = [rng.randrange(5)]  # unhashable
        events.append(Event(rng.choice("ABCD"), rng.randrange(1000), attrs))
    return events


def test_codec_fuzz_200_trials():
    rng = random.Random(20260808)
    for trial in range(200):
        events = _random_events(rng, rng.randrange(0, 24))
        batch = EventBatch.from_events(events)
        decoded = EventBatch.from_bytes(batch.to_bytes())
        assert _rows(decoded) == _expect(events), f"trial {trial} diverged"


def test_from_bytes_rejects_garbage():
    with pytest.raises(StreamError):
        EventBatch.from_bytes(b"not a batch")
    import pickle

    with pytest.raises(StreamError, match="unexpected shape"):
        EventBatch.from_bytes(pickle.dumps(("short",)))
    bad_format = EventBatch.from_events([Event("A", 1)])._state()
    with pytest.raises(StreamError, match="format"):
        EventBatch._from_state((BATCH_FORMAT + 1,) + bad_format[1:])


# -- views, selection, meta -------------------------------------------------------


def test_view_is_zero_copy_and_clamped():
    events = [Event("A", i, {"x": i}) for i in range(10)]
    batch = EventBatch.from_events(events)
    view = batch.view(3, 7)
    assert isinstance(view, EventBatchView)
    assert len(view) == 4
    assert view.to_events() == events[3:7]
    assert view.base is batch  # shared storage, no copy
    assert len(batch.view(-5, 99)) == 10
    assert len(batch.view(8, 3)) == 0
    compact = view.materialize()
    assert compact.to_events() == events[3:7]


def test_select_gathers_rows_and_meta():
    builder = BatchBuilder(meta_names=("seq",))
    events = [Event("A", i, {"x": i % 3}) for i in range(6)]
    for i, event in enumerate(events):
        builder.append(event, (100 + i,))
    batch = builder.build()
    picked = batch.select([4, 1, 1])
    assert picked.to_events() == [events[4], events[1], events[1]]
    assert list(picked.meta["seq"]) == [104, 101, 101]
    # meta rides the codec but is not part of the event model
    decoded = EventBatch.from_bytes(picked.to_bytes())
    assert list(decoded.meta["seq"]) == [104, 101, 101]
    assert decoded.to_events() == picked.to_events()


def test_builder_meta_arity_checked():
    builder = BatchBuilder(meta_names=("seq", "rank"))
    with pytest.raises(StreamError, match="2 meta values"):
        builder.append(Event("A", 1), (7,))


# -- fused feed path parity -------------------------------------------------------


QUERY = "PATTERN SEQ(A a, B b, C c) WHERE a.x == b.x AND b.x == c.x WITHIN 30"


def _trace(seed=5, n=400):
    rng = random.Random(seed)
    events = []
    for i in range(n):
        ts = max(0, i + rng.randrange(-6, 7))
        events.append(Event(rng.choice("ABC"), ts, {"x": rng.randrange(4)}))
    return events


def _run_pair(pattern, events, **kwargs):
    """(feed_batch engine, feed_colbatch engine) over the same trace."""
    per_event = OutOfOrderEngine(pattern, **kwargs)
    out_a = list(per_event.feed_batch(events))
    out_a += per_event.close()
    columnar = OutOfOrderEngine(pattern, **kwargs)
    out_b = list(columnar.feed_colbatch(EventBatch.from_events(events)))
    out_b += columnar.close()
    return per_event, out_a, columnar, out_b


def test_feed_colbatch_matches_feed_batch():
    pattern = parse(QUERY)
    a, out_a, b, out_b = _run_pair(pattern, _trace(), k=8)
    assert [m.key() for m in out_a] == [m.key() for m in out_b]
    assert a.stats.as_dict() == b.stats.as_dict()


def test_feed_colbatch_marks_are_cumulative_per_row():
    pattern = parse(QUERY)
    events = _trace(seed=9, n=120)
    engine = OutOfOrderEngine(pattern, k=8)
    marks = []
    emitted = engine.feed_colbatch(EventBatch.from_events(events), marks=marks)
    assert len(marks) == len(events)
    assert marks == sorted(marks)  # cumulative counts never regress
    assert marks[-1] == len(emitted)


def test_feed_colbatch_fn_predicate_falls_back_identically():
    def positive(bindings):
        return bindings["a"]["x"] >= 0

    base = parse(QUERY)
    pattern = type(base)(
        base.steps,
        tuple(base.where) + (FnPredicate(("a",), positive),),
        base.within,
        base.name,
    )
    a, out_a, b, out_b = _run_pair(pattern, _trace(seed=7), k=8)
    assert [m.key() for m in out_a] == [m.key() for m in out_b]
    assert a.stats.as_dict() == b.stats.as_dict()


def test_feed_colbatch_missing_attr_error_parity():
    pattern = parse(
        "PATTERN SEQ(A a, B b) WHERE a.x == b.size WITHIN 20"
    )
    events = [Event("A", 1, {"x": 3}), Event("B", 2, {"x": 3})]  # b lacks size
    reference = OutOfOrderEngine(pattern, k=2)
    with pytest.raises(KeyError) as interpreted:
        reference.feed_batch(events)
    columnar = OutOfOrderEngine(pattern, k=2)
    with pytest.raises(KeyError) as fused:
        columnar.feed_colbatch(EventBatch.from_events(events))
    assert str(fused.value) == str(interpreted.value)
