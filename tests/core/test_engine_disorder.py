"""OutOfOrderEngine under out-of-order arrival — the paper's core claim."""

import itertools
import random

import pytest

from repro import (
    DisorderBoundViolation,
    Event,
    LatePolicy,
    OfflineOracle,
    OutOfOrderEngine,
    parse,
    seq,
)
from helpers import bounded_shuffle, engine_vs_oracle, make_events


class TestLateCompletions:
    def test_late_first_step_completes_match(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=10)
        assert engine.feed(Event("B", 4)) == []
        emitted = engine.feed(Event("A", 2))  # late
        assert len(emitted) == 1
        assert [e.ts for e in emitted[0].events] == [2, 4]

    def test_late_middle_step_completes_match(self):
        pattern = seq("A a", "B b", "C c", within=20)
        engine = OutOfOrderEngine(pattern, k=10)
        engine.feed(Event("A", 1))
        engine.feed(Event("C", 9))
        emitted = engine.feed(Event("B", 5))  # late middle event
        assert len(emitted) == 1
        assert [e.ts for e in emitted[0].events] == [1, 5, 9]

    def test_late_event_creates_multiple_matches(self):
        pattern = seq("A a", "B b", within=20)
        engine = OutOfOrderEngine(pattern, k=10)
        engine.feed_many(make_events("B5 B8"))
        emitted = engine.feed(Event("A", 2))
        assert len(emitted) == 2

    def test_exactly_once_under_total_inversion(self):
        pattern = seq("A a", "B b", "C c", within=20)
        engine = OutOfOrderEngine(pattern, k=20)
        engine.run(make_events("C9 B5 A1"))
        assert len(engine.results) == 1

    def test_duplicate_free_with_interleaved_triggers(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=10)
        engine.run(make_events("B3 A1 B5 A2"))
        # pairs: (1,3),(1,5),(2,3),(2,5)
        assert len(engine.results) == 4
        assert len(engine.result_set()) == 4


class TestPermutationExhaustive:
    def test_every_bounded_permutation_of_small_trace(self, plain_seq2):
        events = make_events("A1 B2 A3 B4")
        truth = OfflineOracle(plain_seq2).evaluate_set(events)
        for permutation in itertools.permutations(events):
            engine = OutOfOrderEngine(plain_seq2, k=None)  # no K: nothing late
            engine.run(list(permutation))
            assert engine.result_set() == truth, permutation

    def test_every_permutation_three_steps(self):
        pattern = seq("A a", "B b", "C c", within=30)
        events = make_events("A1 B3 C5 B7")
        truth = OfflineOracle(pattern).evaluate_set(events)
        for permutation in itertools.permutations(events):
            engine = OutOfOrderEngine(pattern, k=None)
            engine.run(list(permutation))
            assert engine.result_set() == truth, permutation


class TestBoundedDisorderParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_bounded_shuffles_match_oracle(self, abc_pattern, random_trace, seed):
        arrival = bounded_shuffle(random_trace, k=15, seed=seed)
        engine = engine_vs_oracle(abc_pattern, arrival, k=15)
        assert engine.stats.late_dropped == 0

    @pytest.mark.parametrize("k", [0, 1, 5, 25, 80])
    def test_various_disorder_bounds(self, abc_pattern, random_trace, k):
        arrival = bounded_shuffle(random_trace, k=k, seed=42)
        engine_vs_oracle(abc_pattern, arrival, k=k)

    def test_k_larger_than_needed_is_harmless(self, abc_pattern, random_trace):
        arrival = bounded_shuffle(random_trace, k=5, seed=3)
        engine_vs_oracle(abc_pattern, arrival, k=500)

    def test_unbounded_k_always_correct(self, abc_pattern, random_trace):
        rng = random.Random(9)
        arrival = random_trace[:]
        rng.shuffle(arrival)  # unbounded disorder
        engine_vs_oracle(abc_pattern, arrival, k=None)

    def test_disorder_counter(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=10)
        engine.run(make_events("A5 B3 A1 B6"))
        assert engine.stats.out_of_order_events == 2


class TestLatePolicies:
    def _late_trace(self):
        # Event at ts=1 arrives after clock reached 50 with k=10: late.
        return [Event("B", 50), Event("A", 1), Event("B", 52)]

    def test_drop_policy_counts_and_skips(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=10, late_policy=LatePolicy.DROP)
        engine.run(self._late_trace())
        assert engine.stats.late_dropped == 1
        assert engine.results == []

    def test_raise_policy(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=10, late_policy=LatePolicy.RAISE)
        engine.feed(Event("B", 50))
        with pytest.raises(DisorderBoundViolation) as excinfo:
            engine.feed(Event("A", 1))
        assert excinfo.value.clock == 50

    def test_process_policy_still_produces(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=10, late_policy=LatePolicy.PROCESS)
        engine.run(self._late_trace())
        # A@1 processed despite violating K; B@52 - A@1 > window, and
        # B@50 arrived before A@1 so (1, 50) forms a match only if the
        # window allows: 49 > 10, so no match — but the event was handled.
        assert engine.stats.late_dropped == 1  # counted as late
        assert engine.stacks.size() > 0 or engine.stats.instances_purged > 0

    def test_invalid_late_policy_rejected(self, plain_seq2):
        from repro import ConfigurationError

        with pytest.raises(ConfigurationError):
            OutOfOrderEngine(plain_seq2, k=10, late_policy="drop")


class TestEquivalenceAcrossArrivals:
    """The engine's result set depends only on the event set, not arrival."""

    @pytest.mark.parametrize("seed", range(5))
    def test_different_arrivals_same_results(self, abc_pattern, random_trace, seed):
        baseline = OutOfOrderEngine(abc_pattern, k=None)
        baseline.run(random_trace)
        arrival = bounded_shuffle(random_trace, k=30, seed=seed)
        shuffled = OutOfOrderEngine(abc_pattern, k=30)
        shuffled.run(arrival)
        assert shuffled.result_set() == baseline.result_set()

    def test_determinism_same_arrival_same_everything(self, abc_pattern, random_trace):
        arrival = bounded_shuffle(random_trace, k=10, seed=1)
        first = OutOfOrderEngine(abc_pattern, k=10)
        first.run(arrival)
        second = OutOfOrderEngine(abc_pattern, k=10)
        second.run(arrival)
        assert [m.key() for m in first.results] == [m.key() for m in second.results]
        assert first.stats.as_dict() == second.stats.as_dict()


class TestScanConstructionOptimizationsUnderDisorder:
    @pytest.mark.parametrize("optimize", [True, False])
    def test_results_identical_with_and_without_optimizations(
        self, abc_pattern, random_trace, optimize
    ):
        arrival = bounded_shuffle(random_trace, k=20, seed=7)
        engine_vs_oracle(
            abc_pattern,
            arrival,
            k=20,
            optimize_scan=optimize,
            optimize_construction=optimize,
        )

    def test_probe_saves_triggers_under_disorder(self, abc_pattern, random_trace):
        arrival = bounded_shuffle(random_trace, k=20, seed=7)
        fast = OutOfOrderEngine(abc_pattern, k=20, optimize_scan=True)
        slow = OutOfOrderEngine(abc_pattern, k=20, optimize_scan=False)
        fast.run(arrival)
        slow.run(arrival)
        assert fast.stats.construction_triggers < slow.stats.construction_triggers
        assert fast.result_set() == slow.result_set()

    @pytest.mark.parametrize("rate", [0.0, 0.2, 0.5])
    def test_e2_workload_byte_identical_across_construction_paths(self, rate):
        """The E2 reference workload pins the construction rewrites: the
        O(1) prefix bound, the compiled pipelines and the equality index
        must leave the *ordered emission stream* — keys and detection
        stamps, not just the result set — untouched, and oracle-exact."""
        from repro.streams import RandomDelayModel
        from repro.workloads import SyntheticWorkload

        disorder = RandomDelayModel(rate, 40, seed=3) if rate else None
        workload = SyntheticWorkload(
            query_length=3,
            event_count=1500,
            within=40,
            partitions=8,
            disorder=disorder,
            seed=4,
        )
        occurrence, arrival = workload.generate()

        def trail(**kwargs):
            engine = OutOfOrderEngine(workload.query, k=40, **kwargs)
            engine.run(arrival)
            return engine, [(m.key(), m.detected_at) for m in engine.results]

        indexed, indexed_trail = trail(index=True)
        __, range_trail = trail(index=False)
        __, naive_trail = trail(optimize_construction=False)
        assert indexed_trail == range_trail == naive_trail
        truth = OfflineOracle(workload.query).evaluate_set(occurrence)
        assert indexed.result_set() == truth
