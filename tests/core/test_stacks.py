"""Unit tests for Active Instance Stacks (repro.core.stacks)."""

import random

import pytest

from repro import Event
from repro.core.stacks import Instance, NegativeStore, SortedStack, StackSet


def inst(ts: int, arrival: int = 0, etype: str = "A") -> Instance:
    return Instance(Event(etype, ts), arrival)


class TestSortedStackInsertion:
    def test_in_order_appends(self):
        stack = SortedStack(0)
        for ts in (1, 3, 5):
            stack.insert(inst(ts))
        assert [i.ts for i in stack] == [1, 3, 5]

    def test_out_of_order_splices_into_position(self):
        stack = SortedStack(0)
        stack.insert(inst(1))
        stack.insert(inst(5))
        stack.insert(inst(3))  # late
        assert [i.ts for i in stack] == [1, 3, 5]

    def test_insert_returns_index(self):
        stack = SortedStack(0)
        assert stack.insert(inst(5)) == 0
        assert stack.insert(inst(1)) == 0
        assert stack.insert(inst(9)) == 2

    def test_ties_ordered_by_eid(self):
        stack = SortedStack(0)
        first = inst(5)
        second = inst(5)
        stack.insert(second)
        stack.insert(first)
        assert [i.event.eid for i in stack] == sorted(i.event.eid for i in stack)

    def test_stays_sorted_under_random_insertion(self):
        rng = random.Random(7)
        stack = SortedStack(0)
        timestamps = [rng.randint(0, 100) for _ in range(200)]
        for ts in timestamps:
            stack.insert(inst(ts))
        observed = [i.ts for i in stack]
        assert observed == sorted(observed)
        assert stack.inserted == 200


class TestSortedStackQueries:
    @pytest.fixture
    def stack(self):
        s = SortedStack(0)
        for ts in (2, 4, 6, 8, 10):
            s.insert(inst(ts))
        return s

    def test_range_before_exclusive(self, stack):
        assert [i.ts for i in stack.range_before(6)] == [2, 4]

    def test_range_before_with_min(self, stack):
        assert [i.ts for i in stack.range_before(9, min_ts=4)] == [4, 6, 8]

    def test_range_after_exclusive(self, stack):
        assert [i.ts for i in stack.range_after(6)] == [8, 10]

    def test_range_after_with_max_inclusive(self, stack):
        assert [i.ts for i in stack.range_after(2, max_ts=8)] == [4, 6, 8]

    def test_has_before_after(self, stack):
        assert stack.has_before(3)
        assert not stack.has_before(2)
        assert stack.has_after(8)
        assert not stack.has_after(10)

    def test_has_in_range_inclusive(self, stack):
        assert stack.has_in_range(4, 4)
        assert stack.has_in_range(5, 7)
        assert not stack.has_in_range(11, 20)
        assert not stack.has_in_range(3, 3)

    def test_min_max_ts(self, stack):
        assert stack.min_ts() == 2
        assert stack.max_ts() == 10

    def test_empty_stack_queries(self):
        stack = SortedStack(0)
        assert stack.min_ts() is None
        assert stack.max_ts() is None
        assert not stack.has_before(100)
        assert not stack.has_after(0)
        assert not stack.has_in_range(0, 100)
        assert stack.range_before(10) == []
        assert stack.range_after(0) == []


class TestSortedStackPurge:
    def test_purge_through_removes_prefix(self):
        stack = SortedStack(0)
        for ts in (2, 4, 6, 8):
            stack.insert(inst(ts))
        removed = stack.purge_through(5)
        assert removed == 2
        assert [i.ts for i in stack] == [6, 8]
        assert stack.purged == 2

    def test_purge_inclusive_boundary(self):
        stack = SortedStack(0)
        for ts in (2, 4, 6):
            stack.insert(inst(ts))
        assert stack.purge_through(4) == 2
        assert [i.ts for i in stack] == [6]

    def test_purge_nothing(self):
        stack = SortedStack(0)
        stack.insert(inst(5))
        assert stack.purge_through(4) == 0
        assert len(stack) == 1

    def test_purge_after_ooo_insertion_still_prefix(self):
        stack = SortedStack(0)
        for ts in (10, 2, 8, 4, 6):
            stack.insert(inst(ts))
        stack.purge_through(6)
        assert [i.ts for i in stack] == [8, 10]

    def test_clear(self):
        stack = SortedStack(0)
        for ts in (1, 2, 3):
            stack.insert(inst(ts))
        stack.clear()
        assert len(stack) == 0
        assert stack.purged == 3


class TestStackSet:
    def test_sizes_and_total(self):
        stacks = StackSet(3)
        stacks[0].insert(inst(1))
        stacks[0].insert(inst(2))
        stacks[2].insert(inst(3))
        assert stacks.sizes() == [2, 0, 1]
        assert stacks.size() == 3
        assert len(stacks) == 3

    def test_total_purged(self):
        stacks = StackSet(2)
        stacks[0].insert(inst(1))
        stacks[1].insert(inst(2))
        stacks[0].purge_through(1)
        assert stacks.total_purged() == 1

    def test_iteration(self):
        stacks = StackSet(2)
        assert [s.step_index for s in stacks] == [0, 1]


class TestNegativeStore:
    def test_relevance(self):
        store = NegativeStore(["B"])
        assert store.relevant("B")
        assert not store.relevant("A")

    def test_between_exclusive_bounds(self):
        store = NegativeStore(["B"])
        for ts in (2, 4, 6, 8):
            store.insert(Event("B", ts))
        assert [e.ts for e in store.between("B", 2, 8)] == [4, 6]

    def test_between_unknown_type(self):
        store = NegativeStore(["B"])
        assert store.between("Z", 0, 10) == []

    def test_out_of_order_insert_keeps_sorted(self):
        store = NegativeStore(["B"])
        for ts in (8, 2, 6, 4):
            store.insert(Event("B", ts))
        assert [e.ts for e in store.between("B", 0, 100)] == [2, 4, 6, 8]

    def test_purge_through(self):
        store = NegativeStore(["B", "C"])
        store.insert(Event("B", 2))
        store.insert(Event("B", 9))
        store.insert(Event("C", 4))
        removed = store.purge_through(5)
        assert removed == 2
        assert store.size() == 1
        assert store.purged == 2

    def test_insert_counts(self):
        store = NegativeStore(["B"])
        store.insert(Event("B", 1))
        store.insert(Event("B", 2))
        assert store.inserted == 2
