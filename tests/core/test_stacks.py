"""Unit tests for Active Instance Stacks (repro.core.stacks)."""

import random

import pytest

from repro import Event
from repro.core.stacks import Instance, NegativeStore, SortedStack, StackSet


def inst(ts: int, arrival: int = 0, etype: str = "A") -> Instance:
    return Instance(Event(etype, ts), arrival)


class TestSortedStackInsertion:
    def test_in_order_appends(self):
        stack = SortedStack(0)
        for ts in (1, 3, 5):
            stack.insert(inst(ts))
        assert [i.ts for i in stack] == [1, 3, 5]

    def test_out_of_order_splices_into_position(self):
        stack = SortedStack(0)
        stack.insert(inst(1))
        stack.insert(inst(5))
        stack.insert(inst(3))  # late
        assert [i.ts for i in stack] == [1, 3, 5]

    def test_insert_returns_index(self):
        stack = SortedStack(0)
        assert stack.insert(inst(5)) == 0
        assert stack.insert(inst(1)) == 0
        assert stack.insert(inst(9)) == 2

    def test_ties_ordered_by_eid(self):
        stack = SortedStack(0)
        first = inst(5)
        second = inst(5)
        stack.insert(second)
        stack.insert(first)
        assert [i.event.eid for i in stack] == sorted(i.event.eid for i in stack)

    def test_stays_sorted_under_random_insertion(self):
        rng = random.Random(7)
        stack = SortedStack(0)
        timestamps = [rng.randint(0, 100) for _ in range(200)]
        for ts in timestamps:
            stack.insert(inst(ts))
        observed = [i.ts for i in stack]
        assert observed == sorted(observed)
        assert stack.inserted == 200


class TestSortedStackQueries:
    @pytest.fixture
    def stack(self):
        s = SortedStack(0)
        for ts in (2, 4, 6, 8, 10):
            s.insert(inst(ts))
        return s

    def test_range_before_exclusive(self, stack):
        assert [i.ts for i in stack.range_before(6)] == [2, 4]

    def test_range_before_with_min(self, stack):
        assert [i.ts for i in stack.range_before(9, min_ts=4)] == [4, 6, 8]

    def test_range_after_exclusive(self, stack):
        assert [i.ts for i in stack.range_after(6)] == [8, 10]

    def test_range_after_with_max_inclusive(self, stack):
        assert [i.ts for i in stack.range_after(2, max_ts=8)] == [4, 6, 8]

    def test_has_before_after(self, stack):
        assert stack.has_before(3)
        assert not stack.has_before(2)
        assert stack.has_after(8)
        assert not stack.has_after(10)

    def test_has_in_range_inclusive(self, stack):
        assert stack.has_in_range(4, 4)
        assert stack.has_in_range(5, 7)
        assert not stack.has_in_range(11, 20)
        assert not stack.has_in_range(3, 3)

    def test_min_max_ts(self, stack):
        assert stack.min_ts() == 2
        assert stack.max_ts() == 10

    def test_empty_stack_queries(self):
        stack = SortedStack(0)
        assert stack.min_ts() is None
        assert stack.max_ts() is None
        assert not stack.has_before(100)
        assert not stack.has_after(0)
        assert not stack.has_in_range(0, 100)
        assert stack.range_before(10) == []
        assert stack.range_after(0) == []


class TestSortedStackPurge:
    def test_purge_through_removes_prefix(self):
        stack = SortedStack(0)
        for ts in (2, 4, 6, 8):
            stack.insert(inst(ts))
        removed = stack.purge_through(5)
        assert removed == 2
        assert [i.ts for i in stack] == [6, 8]
        assert stack.purged == 2

    def test_purge_inclusive_boundary(self):
        stack = SortedStack(0)
        for ts in (2, 4, 6):
            stack.insert(inst(ts))
        assert stack.purge_through(4) == 2
        assert [i.ts for i in stack] == [6]

    def test_purge_nothing(self):
        stack = SortedStack(0)
        stack.insert(inst(5))
        assert stack.purge_through(4) == 0
        assert len(stack) == 1

    def test_purge_after_ooo_insertion_still_prefix(self):
        stack = SortedStack(0)
        for ts in (10, 2, 8, 4, 6):
            stack.insert(inst(ts))
        stack.purge_through(6)
        assert [i.ts for i in stack] == [8, 10]

    def test_clear(self):
        stack = SortedStack(0)
        for ts in (1, 2, 3):
            stack.insert(inst(ts))
        stack.clear()
        assert len(stack) == 0
        assert stack.purged == 3


def ainst(ts: int, part, arrival: int = 0, etype: str = "A") -> Instance:
    return Instance(Event(etype, ts, {"part": part}), arrival)


class TestEqualityIndex:
    def test_candidates_window_semantics(self):
        # Same contract as range_after: lower exclusive, upper inclusive.
        stack = SortedStack(0, indexed_attrs=("part",))
        for ts in (2, 4, 6, 8, 10):
            stack.insert(ainst(ts, part=ts % 2))
        even = stack.equality_candidates("part", 0, 2, 8)
        assert [i.ts for i in even] == [4, 6, 8]
        odd = stack.equality_candidates("part", 1, 0, 100)
        assert odd == ()

    def test_splice_insert_keeps_postings_sorted(self):
        stack = SortedStack(0, indexed_attrs=("part",))
        for ts in (10, 2, 8, 4, 6):
            stack.insert(ainst(ts, part=1))
        got = stack.equality_candidates("part", 1, 0, 100)
        assert [i.ts for i in got] == [2, 4, 6, 8, 10]

    def test_duplicate_timestamps_tie_on_eid(self):
        stack = SortedStack(0, indexed_attrs=("part",))
        first = ainst(5, part=1)
        second = ainst(5, part=1)
        stack.insert(second)
        stack.insert(first)
        got = stack.equality_candidates("part", 1, 4, 5)
        assert [i.event.eid for i in got] == sorted(i.event.eid for i in got)

    def test_unindexed_attr_returns_none(self):
        stack = SortedStack(0, indexed_attrs=("part",))
        stack.insert(ainst(1, part=1))
        assert stack.equality_candidates("other", 1, 0, 10) is None
        plain = SortedStack(0)
        plain.insert(ainst(1, part=1))
        assert plain.equality_candidates("part", 1, 0, 10) is None

    def test_missing_attr_disables_index_stickily(self):
        stack = SortedStack(0, indexed_attrs=("part",))
        stack.insert(ainst(1, part=1))
        stack.insert(Instance(Event("A", 2, {}), 0))  # no "part"
        assert stack.equality_candidates("part", 1, 0, 10) is None
        # Sticky: later well-formed inserts do not resurrect the index.
        stack.insert(ainst(3, part=1))
        assert stack.equality_candidates("part", 1, 0, 10) is None

    def test_unhashable_attr_value_disables_index(self):
        stack = SortedStack(0, indexed_attrs=("part",))
        stack.insert(ainst(1, part=[1, 2]))
        assert stack.equality_candidates("part", 1, 0, 10) is None

    def test_unhashable_probe_value_returns_none(self):
        stack = SortedStack(0, indexed_attrs=("part",))
        stack.insert(ainst(1, part=1))
        assert stack.equality_candidates("part", [1], 0, 10) is None

    def test_nan_probe_returns_no_candidates(self):
        # NaN == NaN is False, so the equality predicate rejects every
        # candidate; the index must agree (empty), not hit NaN's bucket.
        nan = float("nan")
        stack = SortedStack(0, indexed_attrs=("part",))
        stack.insert(ainst(1, part=nan))
        assert stack.equality_candidates("part", nan, 0, 10) == ()

    def test_purge_keeps_postings_consistent(self):
        stack = SortedStack(0, indexed_attrs=("part",))
        for ts in (2, 4, 6, 8):
            stack.insert(ainst(ts, part=ts % 2))
        stack.purge_through(5)
        assert [i.ts for i in stack.equality_candidates("part", 0, 0, 100)] == [6, 8]
        assert stack.equality_candidates("part", 1, 0, 100) == ()

    def test_drop_oldest_keeps_postings_consistent(self):
        stack = SortedStack(0, indexed_attrs=("part",))
        for ts in (1, 2, 3, 4):
            stack.insert(ainst(ts, part=1))
        stack.drop_oldest(3)
        got = stack.equality_candidates("part", 1, 0, 100)
        assert [i.ts for i in got] == [4]

    def test_clear_drops_postings(self):
        stack = SortedStack(0, indexed_attrs=("part",))
        stack.insert(ainst(1, part=1))
        stack.clear()
        assert stack.equality_candidates("part", 1, 0, 100) == ()

    def test_restore_rebuilds_postings(self):
        stack = SortedStack(0, indexed_attrs=("part",))
        for ts in (7, 3, 5):
            stack.insert(ainst(ts, part=ts % 2))
        state = stack.snapshot_state()
        fresh = SortedStack(0, indexed_attrs=("part",))
        fresh.restore_state(state)
        got = fresh.equality_candidates("part", 1, 0, 100)
        assert [i.ts for i in got] == [3, 5, 7]

    def test_restore_preserves_disabled_marker_after_purge(self):
        # The offending instance may be long gone by checkpoint time;
        # the restored stack must still refuse to answer.
        stack = SortedStack(0, indexed_attrs=("part",))
        stack.insert(Instance(Event("A", 1, {}), 0))  # disables "part"
        stack.insert(ainst(2, part=1))
        stack.purge_through(1)
        fresh = SortedStack(0, indexed_attrs=("part",))
        fresh.restore_state(stack.snapshot_state())
        assert fresh.equality_candidates("part", 1, 0, 100) is None

    def test_matches_brute_force_under_random_churn(self):
        rng = random.Random(11)
        stack = SortedStack(0, indexed_attrs=("part",))
        low_water = 0
        for __ in range(400):
            action = rng.random()
            if action < 0.75:
                ts = rng.randint(low_water + 1, low_water + 50)
                stack.insert(ainst(ts, part=rng.randint(0, 3)))
            elif action < 0.9 and len(stack):
                low_water = max(low_water, rng.choice([i.ts for i in stack]))
                stack.purge_through(low_water)
            elif len(stack):
                stack.drop_oldest(rng.randint(1, 3))
            lo = rng.randint(0, low_water + 50)
            hi = lo + rng.randint(0, 60)
            part = rng.randint(0, 3)
            got = stack.equality_candidates("part", part, lo, hi)
            want = [i for i in stack.range_after(lo, hi) if i.event["part"] == part]
            assert list(got) == want

    def test_stackset_routes_indexed_attrs_per_step(self):
        stacks = StackSet(3, indexed_attrs=[(), ("part",), ()])
        assert stacks[0].indexed_attrs == ()
        assert stacks[1].indexed_attrs == ("part",)
        stacks[1].insert(ainst(4, part=2))
        assert [i.ts for i in stacks[1].equality_candidates("part", 2, 0, 10)] == [4]
        assert stacks[0].equality_candidates("part", 2, 0, 10) is None


class TestStackSet:
    def test_sizes_and_total(self):
        stacks = StackSet(3)
        stacks[0].insert(inst(1))
        stacks[0].insert(inst(2))
        stacks[2].insert(inst(3))
        assert stacks.sizes() == [2, 0, 1]
        assert stacks.size() == 3
        assert len(stacks) == 3

    def test_total_purged(self):
        stacks = StackSet(2)
        stacks[0].insert(inst(1))
        stacks[1].insert(inst(2))
        stacks[0].purge_through(1)
        assert stacks.total_purged() == 1

    def test_iteration(self):
        stacks = StackSet(2)
        assert [s.step_index for s in stacks] == [0, 1]


class TestNegativeStore:
    def test_relevance(self):
        store = NegativeStore(["B"])
        assert store.relevant("B")
        assert not store.relevant("A")

    def test_between_exclusive_bounds(self):
        store = NegativeStore(["B"])
        for ts in (2, 4, 6, 8):
            store.insert(Event("B", ts))
        assert [e.ts for e in store.between("B", 2, 8)] == [4, 6]

    def test_between_unknown_type(self):
        store = NegativeStore(["B"])
        assert store.between("Z", 0, 10) == []

    def test_out_of_order_insert_keeps_sorted(self):
        store = NegativeStore(["B"])
        for ts in (8, 2, 6, 4):
            store.insert(Event("B", ts))
        assert [e.ts for e in store.between("B", 0, 100)] == [2, 4, 6, 8]

    def test_purge_through(self):
        store = NegativeStore(["B", "C"])
        store.insert(Event("B", 2))
        store.insert(Event("B", 9))
        store.insert(Event("C", 4))
        removed = store.purge_through(5)
        assert removed == 2
        assert store.size() == 1
        assert store.purged == 2

    def test_insert_counts(self):
        store = NegativeStore(["B"])
        store.insert(Event("B", 1))
        store.insert(Event("B", 2))
        assert store.inserted == 2
