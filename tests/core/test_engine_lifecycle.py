"""Engine lifecycle: feed/close discipline, emission records, config."""

import pytest

from repro import (
    ConfigurationError,
    EngineStateError,
    Event,
    OutOfOrderEngine,
    PurgePolicy,
    seq,
)
from helpers import make_events


class TestLifecycle:
    def test_feed_after_close_raises(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.close()
        with pytest.raises(EngineStateError):
            engine.feed(Event("A", 1))

    def test_double_close_is_noop(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.close()
        assert engine.close() == []

    def test_closed_flag(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        assert not engine.closed
        engine.close()
        assert engine.closed

    def test_run_equals_feed_many_plus_close(self, plain_seq2, random_trace):
        first = OutOfOrderEngine(plain_seq2, k=0)
        all_emitted = first.run(random_trace)
        second = OutOfOrderEngine(plain_seq2, k=0)
        emitted = second.feed_many(random_trace)
        emitted.extend(second.close())
        assert [m.key() for m in all_emitted] == [m.key() for m in emitted]

    def test_arrival_index_counts_events_not_punctuation(self, plain_seq2):
        from repro import Punctuation

        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.feed(Event("A", 1))
        engine.feed(Punctuation(1))
        engine.feed(Event("B", 2))
        assert engine.arrival_index == 2


class TestEmissionRecords:
    def test_emission_records_parallel_results(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(make_events("A1 B2 A3 B4"))
        assert len(engine.emissions) == len(engine.results)
        for record, match in zip(engine.emissions, engine.results):
            assert record.match is match

    def test_emitted_seq_is_arrival_index_at_emission(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.feed(Event("A", 1))
        engine.feed(Event("Z", 1))  # irrelevant, still counts as arrival
        engine.feed(Event("B", 2))
        assert engine.emissions[0].emitted_seq == 3

    def test_emitted_clock_recorded(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(make_events("A1 B5"))
        assert engine.emissions[0].emitted_clock == 5


class TestConfigurationValidation:
    def test_negative_k_rejected(self, plain_seq2):
        with pytest.raises(ConfigurationError):
            OutOfOrderEngine(plain_seq2, k=-1)

    def test_float_k_rejected(self, plain_seq2):
        with pytest.raises(ConfigurationError):
            OutOfOrderEngine(plain_seq2, k=2.5)

    def test_purge_policy_cloned(self, plain_seq2):
        # The engine keeps a private copy: due() mutates schedule state,
        # so holding the caller's object would let two engines sharing a
        # policy interleave their purge countdowns.
        policy = PurgePolicy.lazy(64)
        engine = OutOfOrderEngine(plain_seq2, k=0, purge=policy)
        assert engine.purge_policy is not policy
        assert engine.purge_policy.mode is policy.mode
        assert engine.purge_policy.interval == policy.interval

    def test_defaults(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2)
        assert engine.clock.k is None
        assert engine.purge_policy.mode.value == "eager"


class TestStatsObject:
    def test_as_dict_covers_all_slots(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(make_events("A1 B2"))
        snapshot = engine.stats.as_dict()
        assert snapshot["events_in"] == 2
        assert snapshot["matches_emitted"] == 1
        assert set(snapshot) == set(engine.stats.__slots__)

    def test_merge_sums_counters_and_maxes_peak(self, plain_seq2):
        from repro import EngineStats

        first = EngineStats()
        first.events_in = 5
        first.peak_state_size = 10
        second = EngineStats()
        second.events_in = 3
        second.peak_state_size = 20
        first.merge(second)
        assert first.events_in == 8
        assert first.peak_state_size == 20

    def test_repr_shows_nonzero_only(self):
        from repro import EngineStats

        stats = EngineStats()
        stats.events_in = 2
        text = repr(stats)
        assert "events_in=2" in text
        assert "matches_emitted" not in text


class TestRepr:
    def test_repr_shows_configuration_and_progress(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=5)
        engine.feed_many(make_events("A1 B2"))
        text = repr(engine)
        assert "k=5" in text and "clock=2" in text and "matches=1" in text

    def test_repr_unbounded_k(self, plain_seq2):
        assert "k=∞" in repr(OutOfOrderEngine(plain_seq2))

    def test_window_rejections_counted_in_unoptimised_mode(self, plain_seq2):
        engine = OutOfOrderEngine(
            plain_seq2, k=0, optimize_construction=False
        )
        # A1 is far outside the window when B50 triggers construction,
        # but the unoptimised full-stack scan still examines it.
        from repro import PurgePolicy

        engine = OutOfOrderEngine(
            plain_seq2, k=0, optimize_construction=False,
            purge=PurgePolicy.none(),
        )
        engine.feed_many(make_events("A1 A49 B50"))
        assert engine.stats.window_rejections >= 1
        assert len(engine.results) == 1
