"""Conservative negation under disorder (engine + negation module)."""

import pytest

from repro import (
    Event,
    OfflineOracle,
    OutOfOrderEngine,
    Punctuation,
    parse,
    seq,
)
from repro.core.negation import PendingMatches, seal_point
from repro.core.pattern import Match
from helpers import bounded_shuffle, engine_vs_oracle, make_events


class TestSealTiming:
    def test_match_held_until_bracket_sealed(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = OutOfOrderEngine(pattern, k=5)
        engine.feed_many(make_events("A1 C5"))
        # Bracket (1, 5) seals at horizon >= 4, i.e. clock >= 10 (k=5).
        assert engine.results == []
        emitted = engine.feed(Event("Z", 20))
        assert len(emitted) == 1

    def test_match_emitted_immediately_when_already_sealed(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = OutOfOrderEngine(pattern, k=5)
        engine.feed(Event("Z", 30))  # clock far ahead
        engine.feed(Event("A", 26))
        emitted = engine.feed(Event("C", 29))
        # bracket (26,29): seal point 28 <= horizon 24? No: horizon = 30-5-1=24.
        assert emitted == []
        emitted = engine.feed(Event("Z", 35))
        assert len(emitted) == 1

    def test_late_negative_cancels_pending_match(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = OutOfOrderEngine(pattern, k=5)
        engine.feed_many(make_events("A1 C5"))
        assert engine.results == []
        engine.feed(Event("B", 3))  # late negative inside the bracket
        engine.feed(Event("Z", 50))  # seal everything
        engine.close()
        assert engine.results == []
        assert engine.stats.matches_cancelled == 1

    def test_negative_outside_bracket_does_not_cancel(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = OutOfOrderEngine(pattern, k=5)
        engine.feed_many(make_events("A2 C5 B7"))  # B after C: outside
        engine.feed(Event("Z", 50))
        assert len(engine.results) == 1

    def test_seal_point_computation(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        match = Match(pattern, make_events("A1 C5"))
        assert seal_point(pattern, match) == 4  # hi=5, sealed at 4

    def test_seal_point_trailing_negation(self):
        pattern = seq("A a", "C c", "!B b", within=10)
        match = Match(pattern, make_events("A1 C5"))
        assert seal_point(pattern, match) == 11  # first.ts + W

    def test_no_negation_seals_immediately(self, plain_seq2):
        match = Match(plain_seq2, make_events("A1 B2"))
        assert seal_point(plain_seq2, match) == -1


class TestNegationOracleParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_bounded_disorder(self, neg_pattern, random_trace, seed):
        arrival = bounded_shuffle(random_trace, k=12, seed=seed)
        engine_vs_oracle(neg_pattern, arrival, k=12)

    def test_leading_negation_under_disorder(self, random_trace):
        pattern = seq("!B b", "A a", "C c", within=15)
        arrival = bounded_shuffle(random_trace, k=10, seed=2)
        engine_vs_oracle(pattern, arrival, k=10)

    def test_trailing_negation_under_disorder(self, random_trace):
        pattern = seq("A a", "C c", "!B b", within=15)
        arrival = bounded_shuffle(random_trace, k=10, seed=3)
        engine_vs_oracle(pattern, arrival, k=10)

    def test_double_negation_under_disorder(self, random_trace):
        pattern = seq("A a", "!B b", "C c", "!D d", "A a2", within=40)
        arrival = bounded_shuffle(random_trace, k=10, seed=4)
        engine_vs_oracle(pattern, arrival, k=10)

    def test_negation_with_predicates_under_disorder(self, random_trace):
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) "
            "WHERE a.x == c.x AND b.x == a.x WITHIN 25"
        )
        arrival = bounded_shuffle(random_trace, k=18, seed=5)
        engine_vs_oracle(pattern, arrival, k=18)


class TestCloseSemantics:
    def test_close_releases_pending_as_end_of_stream(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = OutOfOrderEngine(pattern, k=100)  # huge K: nothing seals
        engine.feed_many(make_events("A1 C5"))
        assert engine.results == []
        emitted = engine.close()
        assert len(emitted) == 1

    def test_close_applies_negatives_seen(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = OutOfOrderEngine(pattern, k=100)
        engine.feed_many(make_events("A1 C5 B3"))
        emitted = engine.close()
        assert emitted == []
        assert engine.stats.matches_cancelled == 1

    def test_punctuation_seals_brackets(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = OutOfOrderEngine(pattern)  # no K at all
        engine.feed_many(make_events("A1 C5"))
        assert engine.results == []
        emitted = engine.feed(Punctuation(4))
        assert len(emitted) == 1


class TestPendingMatches:
    def test_release_order_by_seal_point(self, plain_seq2):
        pending = PendingMatches()
        early = Match(plain_seq2, make_events("A1 B2"))
        late = Match(plain_seq2, make_events("A3 B4"))
        pending.add(late, 10)
        pending.add(early, 5)
        assert pending.release(7) == [early]
        assert pending.release(20) == [late]

    def test_release_empty_below_min(self, plain_seq2):
        pending = PendingMatches()
        pending.add(Match(plain_seq2, make_events("A1 B2")), 5)
        assert pending.release(4) == []
        assert len(pending) == 1

    def test_fifo_among_equal_seal_points(self, plain_seq2):
        pending = PendingMatches()
        first = Match(plain_seq2, make_events("A1 B2"))
        second = Match(plain_seq2, make_events("A3 B4"))
        pending.add(first, 5)
        pending.add(second, 5)
        assert pending.release(5) == [first, second]

    def test_drain_returns_everything_sorted(self, plain_seq2):
        pending = PendingMatches()
        a = Match(plain_seq2, make_events("A1 B2"))
        b = Match(plain_seq2, make_events("A3 B4"))
        pending.add(b, 9)
        pending.add(a, 3)
        assert pending.drain() == [a, b]
        assert len(pending) == 0

    def test_earliest_seal(self, plain_seq2):
        pending = PendingMatches()
        assert pending.earliest_seal() is None
        pending.add(Match(plain_seq2, make_events("A1 B2")), 7)
        assert pending.earliest_seal() == 7
