"""In-order baseline engine: exact on ordered input, breaks on disorder."""

import pytest

from repro import Event, InOrderEngine, OfflineOracle, OutOfOrderEngine, parse, seq
from helpers import bounded_shuffle, make_events


class TestCorrectOnOrderedInput:
    def test_simple_match(self, plain_seq2):
        engine = InOrderEngine(plain_seq2)
        engine.run(make_events("A1 B3"))
        assert len(engine.results) == 1

    def test_agrees_with_oracle_on_ordered_trace(self, abc_pattern, random_trace):
        truth = OfflineOracle(abc_pattern).evaluate_set(random_trace)
        engine = InOrderEngine(abc_pattern)
        engine.run(random_trace)
        assert engine.result_set() == truth

    def test_negation_on_ordered_trace(self, neg_pattern, random_trace):
        truth = OfflineOracle(neg_pattern).evaluate_set(random_trace)
        engine = InOrderEngine(neg_pattern)
        engine.run(random_trace)
        assert engine.result_set() == truth

    def test_ties_handled_exactly(self):
        pattern = seq("A a", "B b", within=10)
        engine = InOrderEngine(pattern)
        engine.run(make_events("A5 B5 B6"))
        assert len(engine.results) == 1  # only (A5, B6)

    def test_leading_trailing_negation_ordered(self, random_trace):
        for pattern in (
            seq("!B b", "A a", "C c", within=15),
            seq("A a", "C c", "!B b", within=15),
        ):
            truth = OfflineOracle(pattern).evaluate_set(random_trace)
            engine = InOrderEngine(pattern)
            engine.run(random_trace)
            assert engine.result_set() == truth

    def test_local_predicates_respected(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x > 5 AND a.x == b.x WITHIN 10")
        engine = InOrderEngine(pattern)
        engine.run([Event("A", 1, {"x": 3}), Event("A", 2, {"x": 7}), Event("B", 3, {"x": 7})])
        assert len(engine.results) == 1

    def test_single_step_pattern(self):
        pattern = seq("A a", within=10)
        engine = InOrderEngine(pattern)
        engine.run(make_events("A1 A2"))
        assert len(engine.results) == 2


class TestBreaksUnderDisorder:
    """The paper's Section 3 failure modes, demonstrated concretely."""

    def test_late_event_missed(self, plain_seq2):
        engine = InOrderEngine(plain_seq2)
        engine.run(make_events("B4 A2 B6"))
        # (A2, B4) requires triggering on the earlier-arrived B4: missed.
        # (A2, B6) is found because B6 arrives after A2.
        assert len(engine.results) == 1
        assert [e.ts for e in engine.results[0].events] == [2, 6]

    def test_recall_degrades_on_shuffled_trace(self, abc_pattern, random_trace):
        truth = OfflineOracle(abc_pattern).evaluate_set(random_trace)
        arrival = bounded_shuffle(random_trace, k=20, seed=1)
        engine = InOrderEngine(abc_pattern)
        engine.run(arrival)
        produced = engine.result_set()
        assert produced < truth  # strict subset: misses, no inventions

    def test_never_invents_positive_matches(self, abc_pattern, random_trace):
        # With ts checks in descent, positive-pattern output is always valid.
        truth = OfflineOracle(abc_pattern).evaluate_set(random_trace)
        arrival = bounded_shuffle(random_trace, k=30, seed=2)
        engine = InOrderEngine(abc_pattern)
        engine.run(arrival)
        assert engine.result_set() <= truth

    def test_late_negative_produces_false_positive(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = InOrderEngine(pattern)
        # B@3 arrives late, after C@5 advanced the clock to 5 and the
        # bracket (1,5) sealed at horizon 4: the match is already out.
        engine.feed_many(make_events("A1 C5"))
        engine.feed(Event("Z", 20))  # push clock, release pending
        emitted_before_late_b = list(engine.results)
        engine.feed(Event("B", 3))
        engine.close()
        assert len(emitted_before_late_b) == 1  # false positive already emitted
        truth = OfflineOracle(pattern).evaluate_set(
            make_events("A1 C5") + [Event("Z", 20), Event("B", 3)]
        )
        # Oracle (with the same event set) rejects it.
        assert len(truth) == 0

    def test_worse_with_more_disorder(self, abc_pattern, random_trace):
        truth = OfflineOracle(abc_pattern).evaluate_set(random_trace)

        def recall(k):
            arrival = bounded_shuffle(random_trace, k=k, seed=3)
            engine = InOrderEngine(abc_pattern)
            engine.run(arrival)
            found = len(truth & engine.result_set())
            return found / len(truth)

        assert recall(0) == 1.0
        assert recall(40) < recall(5) <= 1.0


class TestStateManagement:
    def test_purge_bounds_state_on_ordered_input(self, plain_seq2):
        engine = InOrderEngine(plain_seq2)
        engine.feed_many(Event("A", ts) for ts in range(1, 3001))
        assert engine.state_size() < 50

    def test_purge_rescales_rip_pointers_correctly(self, plain_seq2):
        # After purging, construction must still find valid prefixes.
        engine = InOrderEngine(plain_seq2)
        events = []
        for ts in range(1, 100, 2):
            events.append(Event("A", ts))
            events.append(Event("B", ts + 1))
        engine.run(events)
        truth = OfflineOracle(plain_seq2).evaluate_set(events)
        assert engine.result_set() == truth

    def test_stats_track_construction(self, plain_seq2):
        engine = InOrderEngine(plain_seq2)
        engine.run(make_events("A1 B2"))
        assert engine.stats.construction_triggers == 1
        assert engine.stats.matches_emitted == 1


class TestThroughputParityAtZeroDisorder:
    def test_same_results_as_ooo_engine_on_ordered_input(
        self, abc_pattern, random_trace
    ):
        inorder = InOrderEngine(abc_pattern)
        inorder.run(random_trace)
        ooo = OutOfOrderEngine(abc_pattern, k=0)
        ooo.run(random_trace)
        assert inorder.result_set() == ooo.result_set()
