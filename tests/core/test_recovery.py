"""ResilientRunner: WAL + checkpoint + exactly-once replay (unit tests).

The crash-anywhere property suite lives in
``tests/property/test_property_recovery.py``; these tests pin the
runner's mechanics — log formats, torn-write repair, suppression
accounting, and the error surface when logs disagree.
"""

import json
import random

import pytest

from repro import (
    Attr,
    ConfigurationError,
    CrashError,
    Eq,
    Event,
    FaultInjector,
    OutOfOrderEngine,
    Punctuation,
    RecoveryError,
    ResilientRunner,
    seq,
)
from repro.core.recovery import (
    CHECKPOINT_NAME,
    DELIVERED_NAME,
    WAL_NAME,
    clear_state,
    decode_element,
    encode_element,
)
from helpers import bounded_shuffle

K = 8

PATTERN = seq(
    "A a",
    "B b",
    within=12,
    where=[Eq(Attr("a", "x"), Attr("b", "x"))],
    name="rec",
)


def make_engine():
    return OutOfOrderEngine(PATTERN, k=K)


def trace(n=200, seed=0):
    rng = random.Random(seed)
    events = [
        Event(rng.choice("AB"), ts, {"x": rng.randint(0, 2)})
        for ts in range(1, n + 1)
    ]
    return bounded_shuffle(events, k=K, seed=seed + 1)


class TestElementCodec:
    def test_event_round_trip(self):
        event = Event("A", 7, {"x": 1, "y": "z"}, eid=42)
        clone = decode_element(encode_element(event))
        assert (clone.etype, clone.ts, clone.eid, clone.attrs) == (
            "A",
            7,
            42,
            {"x": 1, "y": "z"},
        )

    def test_punctuation_round_trip(self):
        clone = decode_element(encode_element(Punctuation(9)))
        assert isinstance(clone, Punctuation) and clone.ts == 9

    def test_unknown_kind_rejected(self):
        with pytest.raises(RecoveryError):
            decode_element({"kind": "mystery"})

    def test_unloggable_element_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_element("not an element")


class TestPlainOperation:
    def test_run_matches_bare_engine(self, tmp_path):
        stream = trace()
        bare = make_engine()
        bare.run(stream)
        runner = ResilientRunner(make_engine(), tmp_path, checkpoint_every=25)
        delivered = runner.run(stream)
        assert [m.key() for m in delivered] == [m.key() for m in bare.results]
        assert runner.checkpoints_written >= len(stream) // 25
        assert not runner.recovered

    def test_logs_written(self, tmp_path):
        stream = trace(50)
        ResilientRunner(make_engine(), tmp_path, checkpoint_every=10).run(stream)
        assert (tmp_path / WAL_NAME).exists()
        assert (tmp_path / CHECKPOINT_NAME).exists()
        wal_lines = (tmp_path / WAL_NAME).read_text().splitlines()
        # every element + the close sentinel
        assert len(wal_lines) == len(stream) + 1
        assert json.loads(wal_lines[-1]) == {"kind": "close"}

    def test_delivery_log_is_sequenced(self, tmp_path):
        runner = ResilientRunner(make_engine(), tmp_path, checkpoint_every=10)
        runner.run(trace())
        records = [
            json.loads(line)
            for line in (tmp_path / DELIVERED_NAME).read_text().splitlines()
        ]
        assert [r["seq"] for r in records] == list(range(len(records)))
        assert all(r["start_ts"] <= r["end_ts"] for r in records)

    def test_interval_validated(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResilientRunner(make_engine(), tmp_path, checkpoint_every=0)

    def test_close_idempotent(self, tmp_path):
        runner = ResilientRunner(make_engine(), tmp_path, checkpoint_every=10)
        runner.run(trace(30))
        assert runner.close() == []

    def test_clear_state(self, tmp_path):
        ResilientRunner(make_engine(), tmp_path, checkpoint_every=10).run(trace(30))
        clear_state(tmp_path)
        assert not any(
            (tmp_path / name).exists()
            for name in (WAL_NAME, CHECKPOINT_NAME, DELIVERED_NAME)
        )
        fresh = ResilientRunner(make_engine(), tmp_path, checkpoint_every=10)
        assert not fresh.recovered


class TestCrashRecovery:
    def _crash_and_recover(self, tmp_path, stream, crash_at, interval):
        fault = FaultInjector(crash_at=[crash_at])
        first = ResilientRunner(
            make_engine(), tmp_path, checkpoint_every=interval, fault=fault
        )
        with pytest.raises(CrashError):
            first.run(stream)
        second = ResilientRunner(make_engine(), tmp_path, checkpoint_every=interval)
        second.run(stream)
        return second

    def test_delivered_log_byte_identical_to_uninterrupted(self, tmp_path):
        stream = trace()
        plain_dir = tmp_path / "plain"
        crash_dir = tmp_path / "crash"
        ResilientRunner(make_engine(), plain_dir, checkpoint_every=25).run(stream)
        recovered = self._crash_and_recover(
            crash_dir, stream, crash_at=130, interval=25
        )
        assert (crash_dir / DELIVERED_NAME).read_bytes() == (
            plain_dir / DELIVERED_NAME
        ).read_bytes()
        assert recovered.recovered
        # Last checkpoint at seq 125; the crashed element (logged but
        # never processed) is part of the replayed suffix: 126..131.
        assert recovered.replayed_elements == 131 - 125

    def test_crash_before_first_checkpoint(self, tmp_path):
        stream = trace(60)
        recovered = self._crash_and_recover(tmp_path, stream, crash_at=3, interval=50)
        bare = make_engine()
        bare.run(stream)
        assert recovered.delivered_count == len(bare.results)

    def test_multi_crash_schedule_shared_injector(self, tmp_path):
        stream = trace()
        fault = FaultInjector(crash_at=[40, 90, 140])
        crashes = 0
        while True:
            runner = ResilientRunner(
                make_engine(), tmp_path, checkpoint_every=30, fault=fault
            )
            try:
                runner.run(stream)
                break
            except CrashError:
                crashes += 1
        assert crashes == 3
        bare = make_engine()
        bare.run(stream)
        assert runner.delivered_count == len(bare.results)

    def test_exactly_once_no_duplicate_records(self, tmp_path):
        stream = trace()
        recovered = self._crash_and_recover(
            tmp_path, stream, crash_at=101, interval=20
        )
        lines = (tmp_path / DELIVERED_NAME).read_text().splitlines()
        keys = [json.dumps(json.loads(line)["key"]) for line in lines]
        assert len(keys) == len(set(keys))
        assert recovered.delivered_count == len(keys)


class TestLogRepairAndErrors:
    def test_torn_wal_line_is_truncated(self, tmp_path):
        stream = trace(40)
        fault = FaultInjector(crash_at=[30])
        first = ResilientRunner(
            make_engine(), tmp_path, checkpoint_every=10, fault=fault
        )
        with pytest.raises(CrashError):
            first.run(stream)
        # Simulate a crash mid-append: a trailing fragment without newline.
        with (tmp_path / WAL_NAME).open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "event", "etype": "A"')
        second = ResilientRunner(make_engine(), tmp_path, checkpoint_every=10)
        # The torn element never reached the engine, so it is simply
        # re-fed from the input stream.
        second.run(stream)
        bare = make_engine()
        bare.run(stream)
        assert second.delivered_count == len(bare.results)

    def test_corrupt_interior_wal_line_raises(self, tmp_path):
        runner = ResilientRunner(make_engine(), tmp_path, checkpoint_every=10)
        runner.feed(Event("A", 1, {"x": 0}))
        runner._close_handles()
        raw = (tmp_path / WAL_NAME).read_bytes()
        (tmp_path / WAL_NAME).write_bytes(b"garbage\n" + raw)
        with pytest.raises(RecoveryError):
            ResilientRunner(make_engine(), tmp_path, checkpoint_every=10)

    def test_truncated_delivery_log_raises(self, tmp_path):
        stream = trace()
        fault = FaultInjector(crash_at=[150])
        first = ResilientRunner(
            make_engine(), tmp_path, checkpoint_every=20, fault=fault
        )
        with pytest.raises(CrashError):
            first.run(stream)
        first._close_handles()
        (tmp_path / DELIVERED_NAME).write_text("")  # lose all delivery records
        with pytest.raises(RecoveryError):
            ResilientRunner(make_engine(), tmp_path, checkpoint_every=20)

    def test_wal_shorter_than_checkpoint_raises(self, tmp_path):
        stream = trace(80)
        runner = ResilientRunner(make_engine(), tmp_path, checkpoint_every=20)
        for element in stream:
            runner.feed(element)
        runner._close_handles()
        (tmp_path / WAL_NAME).write_text("")  # checkpoint claims 80 elements
        with pytest.raises(RecoveryError):
            ResilientRunner(make_engine(), tmp_path, checkpoint_every=20)

    def test_recovering_finished_run_is_a_noop(self, tmp_path):
        stream = trace(60)
        ResilientRunner(make_engine(), tmp_path, checkpoint_every=20).run(stream)
        before = (tmp_path / DELIVERED_NAME).read_bytes()
        again = ResilientRunner(make_engine(), tmp_path, checkpoint_every=20)
        assert again.run(stream) == []
        assert (tmp_path / DELIVERED_NAME).read_bytes() == before

    def test_feed_after_recovered_close_raises(self, tmp_path):
        ResilientRunner(make_engine(), tmp_path, checkpoint_every=20).run(trace(30))
        again = ResilientRunner(make_engine(), tmp_path, checkpoint_every=20)
        with pytest.raises(RecoveryError):
            again.feed(Event("A", 10_000, {"x": 0}))
