"""Command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.streams import load_trace


QUERY = (
    "PATTERN SEQ(T1 a, T2 b, T3 c) "
    "WHERE a.part == b.part AND b.part == c.part WITHIN 50"
)


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    code = main(
        [
            "generate",
            "--workload", "synthetic",
            "--events", "800",
            "--disorder", "0.3:20",
            "--seed", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_loadable_trace(self, trace_file):
        elements = load_trace(trace_file)
        assert len(elements) == 800

    def test_generate_output_mentions_disorder(self, trace_file, capsys):
        main(["inspect", str(trace_file)])
        out = capsys.readouterr().out
        assert "disorder rate" in out
        assert "800" in out

    @pytest.mark.parametrize("workload", ["rfid", "intrusion", "stock"])
    def test_other_workloads(self, tmp_path, workload, capsys):
        path = tmp_path / f"{workload}.jsonl"
        count = "50" if workload == "rfid" else "500"
        code = main(
            ["generate", "--workload", workload, "--events", count,
             "--disorder", "none", "--out", str(path)]
        )
        assert code == 0
        assert load_trace(path)

    def test_burst_disorder_spec(self, tmp_path):
        path = tmp_path / "burst.jsonl"
        code = main(
            ["generate", "--workload", "synthetic", "--events", "400",
             "--disorder", "burst:0.02:30", "--out", str(path)]
        )
        assert code == 0


class TestRun:
    def test_run_with_verify_exact(self, trace_file, capsys):
        code = main(
            ["run", "--query", QUERY, "--trace", str(trace_file),
             "--engine", "ooo", "--k", "20", "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recall" in out and "1.0" in out

    def test_run_inorder_fails_verification_on_disordered_trace(
        self, trace_file, capsys
    ):
        code = main(
            ["run", "--query", QUERY, "--trace", str(trace_file),
             "--engine", "inorder", "--verify"]
        )
        assert code == 1  # recall < 1 -> non-zero exit

    @pytest.mark.parametrize("engine", ["reorder", "aggressive", "partitioned"])
    def test_all_engines_runnable(self, trace_file, engine):
        code = main(
            ["run", "--query", QUERY, "--trace", str(trace_file),
             "--engine", engine, "--k", "20", "--verify"]
        )
        assert code == 0

    def test_no_index_flag_identical_results(self, trace_file, capsys):
        code = main(
            ["run", "--query", QUERY, "--trace", str(trace_file),
             "--engine", "ooo", "--k", "20", "--verify"]
        )
        assert code == 0
        indexed_out = capsys.readouterr().out
        assert "index hits" in indexed_out
        code = main(
            ["run", "--query", QUERY, "--trace", str(trace_file),
             "--engine", "ooo", "--k", "20", "--verify", "--no-index"]
        )
        assert code == 0  # still oracle-exact without the index
        ablated_out = capsys.readouterr().out
        hits_line = next(
            line for line in ablated_out.splitlines() if "index hits" in line
        )
        assert hits_line.split()[-1] == "0"

    def test_purge_policy_flags(self, trace_file):
        for policy in ("eager", "lazy:64", "none"):
            code = main(
                ["run", "--query", QUERY, "--trace", str(trace_file),
                 "--engine", "ooo", "--k", "20", "--purge", policy]
            )
            assert code == 0

    def test_speculative_flag_reports_counters(self, trace_file, capsys):
        neg_query = (
            "PATTERN SEQ(T1 a, !T2 b, T3 c) WHERE a.part == c.part WITHIN 50"
        )
        code = main(
            ["run", "--query", neg_query, "--trace", str(trace_file),
             "--engine", "ooo", "--k", "20", "--speculative", "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0  # sealed output stays oracle-exact
        assert "speculative emissions" in out
        assert "retractions" in out

    def test_quality_target_reports_controller(self, trace_file, capsys):
        code = main(
            ["run", "--query", QUERY, "--trace", str(trace_file),
             "--engine", "ooo", "--k", "20", "--quality-target", "0.99"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "K re-freezes" in out
        assert "final K" in out

    def test_show_matches_zero(self, trace_file, capsys):
        main(
            ["run", "--query", QUERY, "--trace", str(trace_file),
             "--engine", "ooo", "--k", "20", "--show-matches", "0"]
        )
        out = capsys.readouterr().out
        assert "Match[" not in out

    def test_bad_purge_policy_reports_error(self, trace_file, capsys):
        code = main(
            ["run", "--query", QUERY, "--trace", str(trace_file),
             "--engine", "ooo", "--purge", "sometimes"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_query_reports_error(self, trace_file, capsys):
        code = main(
            ["run", "--query", "SELECT * FROM events",
             "--trace", str(trace_file)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestInspect:
    def test_inspect_reports_required_k(self, trace_file, capsys):
        code = main(["inspect", str(trace_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "required K" in out
        assert "events by type" in out
