"""Ordered-output adapter (repro.core.ordered_output)."""

import pytest

from repro import (
    ConfigurationError,
    Event,
    OfflineOracle,
    OutOfOrderEngine,
    PartitionedEngine,
    seq,
)
from repro.core.ordered_output import OrderedOutputAdapter
from helpers import bounded_shuffle, make_events


class TestOrdering:
    def test_out_of_order_detections_released_in_order(self, plain_seq2):
        adapter = OrderedOutputAdapter(OutOfOrderEngine(plain_seq2, k=10))
        # (A5,B6) completes before the late (A1,B2) pair does.
        arrival = make_events("A5 B6 B2 A1") + [Event("Z", ts) for ts in (20, 40)]
        released = adapter.run(arrival)
        assert [m.end_ts for m in released] == sorted(m.end_ts for m in released)
        # (A1,B2), (A1,B6), (A5,B6) — the late pair is delivered first
        assert len(released) == 3
        assert released[0].end_ts == 2

    def test_nothing_released_before_horizon_passes_end(self, plain_seq2):
        adapter = OrderedOutputAdapter(OutOfOrderEngine(plain_seq2, k=10))
        released = adapter.feed_many(make_events("A1 B2"))
        assert released == []  # end_ts=2 > horizon
        assert adapter.held() == 1
        released = adapter.feed(Event("Z", 50))
        assert len(released) == 1

    def test_close_drains_in_order(self, plain_seq2):
        adapter = OrderedOutputAdapter(OutOfOrderEngine(plain_seq2, k=1000))
        adapter.feed_many(make_events("A5 B6 A1 B2"))
        released = adapter.close()
        assert [m.end_ts for m in released] == sorted(m.end_ts for m in released)
        assert adapter.held() == 0

    def test_is_ordered_invariant_on_random_trace(self, abc_pattern, random_trace):
        arrival = bounded_shuffle(random_trace, k=15, seed=2)
        adapter = OrderedOutputAdapter(OutOfOrderEngine(abc_pattern, k=15))
        adapter.run(arrival)
        assert adapter.is_ordered()

    def test_no_results_lost_or_invented(self, abc_pattern, random_trace):
        arrival = bounded_shuffle(random_trace, k=15, seed=3)
        adapter = OrderedOutputAdapter(OutOfOrderEngine(abc_pattern, k=15))
        released = adapter.run(arrival)
        truth = OfflineOracle(abc_pattern).evaluate_set(random_trace)
        assert {m.key() for m in released} == truth
        assert adapter.delivered == released

    def test_ties_broken_by_start_then_identity(self, plain_seq2):
        adapter = OrderedOutputAdapter(OutOfOrderEngine(plain_seq2, k=5))
        adapter.feed_many(make_events("A1 A3 B4"))  # two matches end at 4
        released = adapter.close()
        assert [m.start_ts for m in released] == [1, 3]


class TestComposition:
    def test_works_with_partitioned_engine(self, random_trace):
        pattern = seq("A a", "B b", within=15, name="po")
        from repro import parse

        keyed = parse(
            "PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 15", name="po"
        )
        arrival = bounded_shuffle(random_trace, k=10, seed=4)
        adapter = OrderedOutputAdapter(PartitionedEngine(keyed, k=10))
        adapter.run(arrival)
        assert adapter.is_ordered()
        truth = OfflineOracle(keyed).evaluate_set(random_trace)
        assert {m.key() for m in adapter.delivered} == truth

    def test_negation_pattern_stays_ordered(self, neg_pattern, random_trace):
        arrival = bounded_shuffle(random_trace, k=10, seed=5)
        adapter = OrderedOutputAdapter(OutOfOrderEngine(neg_pattern, k=10))
        adapter.run(arrival)
        assert adapter.is_ordered()

    def test_requires_a_clock(self, plain_seq2):
        class NoClock:
            pattern = plain_seq2

        with pytest.raises(ConfigurationError):
            OrderedOutputAdapter(NoClock())
