"""OutOfOrderEngine on ordered input (repro.core.engine)."""

import pytest

from repro import (
    Event,
    OfflineOracle,
    OutOfOrderEngine,
    Punctuation,
    PurgePolicy,
    parse,
    seq,
)
from helpers import engine_vs_oracle, make_events


class TestOrderedStreams:
    def test_single_match(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        assert engine.feed(Event("A", 1)) == []
        emitted = engine.feed(Event("B", 3))
        assert len(emitted) == 1
        assert [e.ts for e in emitted[0].events] == [1, 3]

    def test_match_emitted_immediately_on_completion(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.feed(Event("A", 1))
        emitted = engine.feed(Event("B", 2))
        assert emitted and emitted[0].detected_at == engine.arrival_index

    def test_agrees_with_oracle_on_random_trace(self, abc_pattern, random_trace):
        engine_vs_oracle(abc_pattern, random_trace, k=0)

    def test_all_combinations_found(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(make_events("A1 A2 B3 B4"))
        assert len(engine.results) == 4

    def test_window_excludes_stale_prefix(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(make_events("A1 B20"))
        assert engine.results == []

    def test_noise_types_ignored(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(make_events("A1 Z2 Z3 B4"))
        assert len(engine.results) == 1
        assert engine.stats.events_ignored == 2

    def test_repeated_type_pattern(self):
        pattern = seq("A first", "A second", within=10)
        engine = OutOfOrderEngine(pattern, k=0)
        engine.run(make_events("A1 A3 A5"))
        # (1,3), (1,5), (3,5)
        assert len(engine.results) == 3

    def test_single_step_pattern(self):
        pattern = seq("A a", within=10)
        engine = OutOfOrderEngine(pattern, k=0)
        engine.run(make_events("A1 Z2 A5"))
        assert len(engine.results) == 2

    def test_timestamp_ties_never_match_within_pair(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(make_events("A5 B5"))
        assert engine.results == []

    def test_results_accumulate_across_feeds(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        for event in make_events("A1 B2 A3 B4"):
            engine.feed(event)
        assert len(engine.results) == 3  # (1,2), (1,4), (3,4)


class TestPredicateIntegration:
    def test_join_predicate(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 10")
        engine = OutOfOrderEngine(pattern, k=0)
        engine.run(
            [
                Event("A", 1, {"x": 1}),
                Event("A", 2, {"x": 2}),
                Event("B", 3, {"x": 2}),
            ]
        )
        assert len(engine.results) == 1
        assert engine.results[0].events[0]["x"] == 2

    def test_local_predicate_blocks_admission(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x > 5 WITHIN 10")
        engine = OutOfOrderEngine(pattern, k=0)
        engine.run([Event("A", 1, {"x": 3}), Event("B", 2)])
        assert engine.results == []
        assert engine.stacks[0].inserted == 0

    def test_missing_attribute_treated_as_nonmatch(self):
        pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 10")
        engine = OutOfOrderEngine(pattern, k=0)
        # B lacks "x": predicate evaluation raises KeyError internally?
        # No: Attr lookup raises KeyError, which we let propagate as a
        # hard error because it is a schema bug, not a data condition.
        engine.feed(Event("A", 1, {"x": 1}))
        with pytest.raises(KeyError):
            engine.feed(Event("B", 2))


class TestStatsAndState:
    def test_event_counters(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(make_events("A1 Z2 B3"))
        assert engine.stats.events_in == 3
        assert engine.stats.events_admitted == 2
        assert engine.stats.events_ignored == 1
        assert engine.stats.matches_emitted == 1

    def test_peak_state_tracked(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0, purge=PurgePolicy.none())
        engine.run(make_events("A1 A2 A3 B4"))
        assert engine.stats.peak_state_size >= 4

    def test_state_size_reflects_stacks(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0, purge=PurgePolicy.none())
        engine.feed_many(make_events("A1 A2"))
        assert engine.state_size() == 2

    def test_result_set_keys(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.run(make_events("A1 B2"))
        keys = engine.result_set()
        assert len(keys) == 1
        (key,) = keys
        assert key[0] == plain_seq2.name


class TestPunctuationHandling:
    def test_punctuation_advances_horizon_and_purges(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2)  # k=None: no K promise
        engine.feed_many(make_events("A1 A2"))
        assert engine.state_size() == 2
        engine.feed(Punctuation(50))
        assert engine.state_size() == 0  # window 10 long gone

    def test_punctuation_releases_negation_pending(self):
        pattern = seq("A a", "!B b", "C c", within=10)
        engine = OutOfOrderEngine(pattern)  # no K: only punctuation seals
        engine.feed_many(make_events("A1 C5"))
        assert engine.results == []  # held: B could still arrive
        emitted = engine.feed(Punctuation(5))
        assert len(emitted) == 1

    def test_punctuation_counted(self, plain_seq2):
        engine = OutOfOrderEngine(plain_seq2, k=0)
        engine.feed(Punctuation(1))
        assert engine.stats.punctuations_in == 1


class TestOracleParity:
    @pytest.mark.parametrize("spec", [
        "A1 B2 A3 B4 A5 B6",
        "A1 A1 B2 B2",
        "A1 B11",
        "A1 B12",
        "A5 A6 A7 B8",
        "B1 A2 B3",
    ])
    def test_small_traces(self, plain_seq2, spec):
        engine_vs_oracle(plain_seq2, make_events(spec), k=0)

    def test_three_step_with_predicate(self, abc_pattern):
        events = make_events("A1:1 B2:9 C3:1 A4:2 B5:9 C6:2 C7:1")
        engine_vs_oracle(abc_pattern, events, k=0)
