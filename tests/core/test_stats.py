"""EngineStats counter bundle."""

from __future__ import annotations

from repro.core.stats import EngineStats


class TestRepr:
    def test_all_zero_renders_bare(self):
        assert repr(EngineStats()) == "EngineStats()"

    def test_only_nonzero_counters_render(self):
        stats = EngineStats()
        stats.events_in = 3
        stats.matches_emitted = 1
        assert repr(stats) == "EngineStats(events_in=3, matches_emitted=1)"

    def test_zeroed_after_restore_renders_bare(self):
        stats = EngineStats()
        stats.events_in = 5
        stats.restore_from({})
        assert repr(stats) == "EngineStats()"


def test_merge_sums_counters_and_maxes_peak():
    left, right = EngineStats(), EngineStats()
    left.events_in, right.events_in = 2, 3
    left.peak_state_size, right.peak_state_size = 10, 7
    left.merge(right)
    assert left.events_in == 5
    assert left.peak_state_size == 10
