"""EngineStats counter bundle."""

from __future__ import annotations

from repro.core.stats import EngineStats


class TestRepr:
    def test_all_zero_renders_bare(self):
        assert repr(EngineStats()) == "EngineStats()"

    def test_only_nonzero_counters_render(self):
        stats = EngineStats()
        stats.events_in = 3
        stats.matches_emitted = 1
        assert repr(stats) == "EngineStats(events_in=3, matches_emitted=1)"

    def test_zeroed_after_restore_renders_bare(self):
        stats = EngineStats()
        stats.events_in = 5
        stats.restore_from({})
        assert repr(stats) == "EngineStats()"


def test_merge_sums_counters_and_maxes_peak():
    left, right = EngineStats(), EngineStats()
    left.events_in, right.events_in = 2, 3
    left.peak_state_size, right.peak_state_size = 10, 7
    left.merge(right)
    assert left.events_in == 5
    assert left.peak_state_size == 10


class TestIndexCounters:
    def test_present_in_dict_round_trip(self):
        stats = EngineStats()
        stats.index_hits = 4
        stats.index_misses = 2
        as_dict = stats.as_dict()
        assert as_dict["index_hits"] == 4
        assert as_dict["index_misses"] == 2
        restored = EngineStats()
        restored.restore_from(as_dict)
        assert restored.index_hits == 4
        assert restored.index_misses == 2

    def test_restore_from_legacy_snapshot_defaults_to_zero(self):
        # Snapshots taken before the index layer carry no counters.
        stats = EngineStats()
        stats.index_hits = 9
        stats.restore_from({"events_in": 1})
        assert stats.index_hits == 0
        assert stats.index_misses == 0

    def test_merge_sums(self):
        left, right = EngineStats(), EngineStats()
        left.index_hits, right.index_hits = 1, 2
        left.index_misses, right.index_misses = 3, 4
        left.merge(right)
        assert left.index_hits == 3
        assert left.index_misses == 7

    def test_repr_renders_when_nonzero(self):
        stats = EngineStats()
        stats.index_hits = 2
        assert repr(stats) == "EngineStats(index_hits=2)"
