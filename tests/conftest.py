"""Shared fixtures for the test suite; helpers live in tests/helpers.py."""

from __future__ import annotations

import random
import sys
from pathlib import Path
from typing import List

import pytest

# Make `from helpers import ...` work from any test subdirectory.
sys.path.insert(0, str(Path(__file__).parent))

from repro import Event, Pattern, parse  # noqa: E402


@pytest.fixture
def abc_pattern() -> Pattern:
    """SEQ(A, B, C) with a join predicate, window 20."""
    return parse("PATTERN SEQ(A a, B b, C c) WHERE a.x == c.x WITHIN 20")


@pytest.fixture
def neg_pattern() -> Pattern:
    """SEQ(A, !B, C) with join + negation predicates, window 20."""
    return parse(
        "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 20"
    )


@pytest.fixture
def plain_seq2() -> Pattern:
    """Predicate-free SEQ(A, B), window 10."""
    return parse("PATTERN SEQ(A a, B b) WITHIN 10")


@pytest.fixture
def random_trace() -> List[Event]:
    """300 events over {A, B, C, D} with small attribute domain."""
    rng = random.Random(1234)
    return [
        Event(rng.choice("ABCD"), ts, {"x": rng.randint(0, 3)})
        for ts in range(1, 301)
    ]
