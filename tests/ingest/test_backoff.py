"""The shared retry/backoff schedule: deterministic, capped, jittered."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.ingest.backoff import BackoffPolicy, retry_call, run_resilient, spread_delays


def test_exponential_growth_without_jitter():
    policy = BackoffPolicy(base=0.1, factor=2.0, cap=10.0, jitter=0.0)
    assert [round(policy.delay(n), 3) for n in range(4)] == [0.1, 0.2, 0.4, 0.8]


def test_cap_bounds_every_delay():
    policy = BackoffPolicy(base=0.5, factor=3.0, cap=2.0, jitter=0.0, retries=6)
    assert max(policy.delays()) == 2.0


def test_jitter_stays_inside_declared_band():
    policy = BackoffPolicy(base=1.0, factor=1.0, cap=1.0, jitter=0.4, seed=7)
    for attempt in range(50):
        delay = policy.delay(attempt)
        assert 0.6 <= delay <= 1.0


def test_schedule_is_a_pure_function_of_seed_and_attempt():
    a = BackoffPolicy(seed=3)
    b = BackoffPolicy(seed=3)
    assert list(a.delays()) == list(b.delays())
    c = BackoffPolicy(seed=4)
    assert list(a.delays()) != list(c.delays())


def test_reseeded_copies_spread_a_fleet():
    base = BackoffPolicy(jitter=0.5)
    fleet = [base.reseeded(i) for i in range(8)]
    first = spread_delays(fleet, attempt=0)
    assert len(set(first)) > 1  # clients do not thunder in lockstep


@pytest.mark.parametrize(
    "kwargs",
    [
        {"base": 0.0},
        {"factor": 0.5},
        {"cap": 0.01, "base": 0.1},
        {"retries": -1},
        {"jitter": 1.5},
    ],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        BackoffPolicy(**kwargs)


def test_retry_call_retries_then_succeeds():
    sleeps = []
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ValueError("transient")
        return "done"

    result = retry_call(
        flaky,
        BackoffPolicy(base=0.1, jitter=0.0, retries=5),
        retry_on=(ValueError,),
        sleep=sleeps.append,
    )
    assert result == "done"
    assert sleeps == [0.1, 0.2]


def test_retry_call_exhausts_budget_and_raises():
    def always_fails():
        raise ValueError("permanent")

    with pytest.raises(ValueError):
        retry_call(
            always_fails,
            BackoffPolicy(retries=2, jitter=0.0),
            retry_on=(ValueError,),
            sleep=lambda _s: None,
        )


def test_retry_call_does_not_catch_other_exceptions():
    def wrong_error():
        raise KeyError("not retryable")

    with pytest.raises(KeyError):
        retry_call(
            wrong_error,
            BackoffPolicy(retries=5),
            retry_on=(ValueError,),
            sleep=lambda _s: None,
        )


def test_run_resilient_supervises_crashes(tmp_path, ab_pattern):
    from repro import OutOfOrderEngine
    from repro.core.oracle import OfflineOracle
    from repro.core.recovery import ResilientRunner
    from repro.faultinject import FaultInjector
    from helpers import make_events

    events = make_events("A1:1 B3:1 A5:2 B7:2 A9:3 B11:3")
    fault = FaultInjector(crash_at=[2, 4])

    def build_runner():
        return ResilientRunner(
            OutOfOrderEngine(ab_pattern, k=2), tmp_path,
            checkpoint_every=2, fault=fault,
        )

    runner, crashes = run_resilient(
        build_runner, events,
        policy=BackoffPolicy(base=0.001, jitter=0.0),
        sleep=lambda _s: None,
    )
    assert crashes == 2
    truth = OfflineOracle(ab_pattern).evaluate_set(events)
    assert {m.key() for m in runner.engine.results} <= truth
    assert runner.delivered_count == len(truth)
