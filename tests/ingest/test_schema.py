"""Stream schemas: validation reasons, identity derivation, round-trips."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.event import malformed_reason
from repro.ingest import EventSchema, FieldSpec, StreamSchema, load_schema
from repro.ingest.schema import dump_schema

from ingest_helpers import make_schema


# -- validation ------------------------------------------------------------------------


def test_valid_frame_passes():
    schema = make_schema()
    assert schema.check_frame("A", {"ts": 5, "x": 1}) is None


@pytest.mark.parametrize(
    "etype, attrs, fragment",
    [
        ("", {"ts": 1, "x": 1}, "non-empty string"),
        ("C", {"ts": 1, "x": 1}, "not declared"),
        ("A", {"x": 1}, "missing required field 'ts'"),
        ("A", {"ts": "soon", "x": 1}, "must be int"),
        ("A", {"ts": -4, "x": 1}, ">= 0"),
        ("A", {"ts": 1.5, "x": 1}, "must be int"),
        ("A", {"ts": 1}, "missing required field 'x'"),
        ("A", "not a dict", "must be an object"),
    ],
)
def test_quarantine_reasons(etype, attrs, fragment):
    schema = make_schema()
    reason = schema.check_frame(etype, attrs)
    assert reason is not None and fragment in reason


def test_gateway_checks_subsume_engine_admission():
    """Any frame the schema admits builds an event the engine admits."""
    schema = make_schema()
    for attrs in ({"ts": 0, "x": 1}, {"ts": 7, "x": -3}, {"ts": 10**9, "x": 0}):
        assert schema.check_frame("A", attrs) is None
        event = schema.build_event("A", attrs)
        assert malformed_reason(event) is None


def test_optional_fields_may_be_absent():
    schema = StreamSchema(
        "s", t_event="ts",
        events=[EventSchema("A", [FieldSpec("ts", "int"),
                                  FieldSpec("note", "str", required=False)])],
    )
    assert schema.check_frame("A", {"ts": 1}) is None
    assert schema.check_frame("A", {"ts": 1, "note": 5}) is not None


def test_partition_key_is_required_when_declared():
    schema = make_schema(slack=0, partition_key="x")
    assert schema.check_frame("A", {"ts": 1}) is not None
    assert schema.partition_of({"x": 9}) == 9


# -- scope constraints ------------------------------------------------------------------


def test_per_source_scope_requires_zero_slack():
    with pytest.raises(ConfigurationError):
        make_schema(slack=3, ordering_scope="per_source")


def test_per_key_scope_requires_partition_key():
    with pytest.raises(ConfigurationError):
        StreamSchema(
            "s", t_event="ts", ordering_scope="per_key",
            events=[EventSchema("A", [FieldSpec("ts", "int")])],
        )


def test_empty_event_list_rejected():
    with pytest.raises(ConfigurationError):
        StreamSchema("s", t_event="ts", events=[])


# -- identity derivation ---------------------------------------------------------------


def test_idempotency_id_is_deterministic_across_instances():
    a, b = make_schema(), make_schema()
    attrs = {"ts": 5, "x": 2}
    assert a.idempotency_id("A", attrs) == b.idempotency_id("A", attrs)


def test_idempotency_id_differs_by_payload_and_type():
    schema = make_schema()
    base = schema.idempotency_id("A", {"ts": 5, "x": 2})
    assert schema.idempotency_id("A", {"ts": 5, "x": 3}) != base
    assert schema.idempotency_id("A", {"ts": 6, "x": 2}) != base
    assert schema.idempotency_id("B", {"ts": 5, "x": 2}) != base


def test_explicit_idempotency_field_wins():
    schema = make_schema(
        slack=0, idempotency_field="x",
    )
    one = schema.idempotency_id("A", {"ts": 5, "x": 2})
    two = schema.idempotency_id("A", {"ts": 9, "x": 2})
    assert one == two  # same unique id, different payload -> same identity


def test_derived_eid_is_stable_and_positive():
    schema = make_schema()
    event1 = schema.build_event("A", {"ts": 5, "x": 2})
    event2 = schema.build_event("A", {"ts": 5, "x": 2})
    assert event1.eid == event2.eid > 0
    assert event1 == event2


def test_events_with_different_payloads_get_different_eids():
    schema = make_schema()
    eids = {
        schema.build_event("A", {"ts": t, "x": x}).eid
        for t in range(20) for x in range(20)
    }
    assert len(eids) == 400


# -- serialisation ---------------------------------------------------------------------


def test_round_trip_through_dict():
    schema = make_schema(slack=4, partition_key="x", ordering_scope="global")
    clone = StreamSchema.from_dict(schema.to_dict())
    assert clone.to_dict() == schema.to_dict()
    attrs = {"ts": 3, "x": 1}
    assert clone.idempotency_id("A", attrs) == schema.idempotency_id("A", attrs)


def test_round_trip_through_file(tmp_path):
    schema = make_schema(slack=1, ordering_scope="global")
    path = tmp_path / "orders.schema.json"
    dump_schema(schema, path)
    loaded = load_schema(path)
    assert loaded.to_dict() == schema.to_dict()


def test_load_schema_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json at all")
    with pytest.raises(ConfigurationError):
        load_schema(path)


def test_unknown_format_rejected():
    with pytest.raises(ConfigurationError):
        StreamSchema.from_dict({"format": "somebody-elses-v9"})
