"""Shared builders for the ingestion-layer tests."""

from __future__ import annotations

from repro.ingest import EventSchema, FieldSpec, StreamSchema


def make_schema(slack: int = 0, **kwargs) -> StreamSchema:
    """A two-type stream (A/B with int fields ts, x) used across files."""
    scope = kwargs.pop("ordering_scope", "per_source" if slack == 0 else "global")
    return StreamSchema(
        "orders",
        t_event="ts",
        events=[
            EventSchema("A", [FieldSpec("ts", "int"), FieldSpec("x", "int")]),
            EventSchema("B", [FieldSpec("ts", "int"), FieldSpec("x", "int")]),
        ],
        ordering_scope=scope,
        source_slack=slack,
        **kwargs,
    )
