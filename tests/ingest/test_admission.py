"""Idempotent admission: duplicates are counted, never re-fed."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.ingest import AdmissionController, AdmissionOutcome, DedupeWindow

from ingest_helpers import make_schema


def controller(window: int = 16) -> AdmissionController:
    return AdmissionController(make_schema(slack=2), window=window)


# -- the dedupe window -----------------------------------------------------------------


def test_window_dedupes_within_capacity():
    window = DedupeWindow(3)
    window.add("a")
    window.add("b")
    assert "a" in window and "b" in window and "c" not in window


def test_window_evicts_oldest_past_capacity():
    window = DedupeWindow(2)
    for idem in ("a", "b", "c"):
        window.add(idem)
    assert "a" not in window  # evicted
    assert "b" in window and "c" in window
    assert len(window) == 2


def test_window_re_add_is_idempotent():
    window = DedupeWindow(2)
    window.add("a")
    window.add("a")
    window.add("b")
    assert "a" in window and len(window) == 2


def test_window_snapshot_round_trip():
    window = DedupeWindow(4)
    for idem in ("a", "b", "c"):
        window.add(idem)
    clone = DedupeWindow(4)
    clone.restore_state(window.snapshot_state())
    assert "a" in clone and "c" in clone
    clone.add("d")
    clone.add("e")  # evicts "a" in FIFO order preserved by the snapshot
    assert "a" not in clone and "b" in clone


def test_window_rejects_bad_capacity():
    with pytest.raises(ConfigurationError):
        DedupeWindow(0)


# -- the decision ----------------------------------------------------------------------


def test_first_delivery_admitted_redelivery_counted():
    ctrl = controller()
    first = ctrl.admit("s1", "A", {"ts": 1, "x": 1})
    again = ctrl.admit("s1", "A", {"ts": 1, "x": 1})
    assert first.outcome is AdmissionOutcome.ADMITTED
    assert first.event is not None and first.event.ts == 1
    assert again.outcome is AdmissionOutcome.DUPLICATE
    assert again.event is None
    assert ctrl.admitted == 1 and ctrl.duplicates == 1


def test_quarantine_counts_and_reports_reason():
    ctrl = controller()
    decision = ctrl.admit("s1", "A", {"x": 1})
    assert decision.outcome is AdmissionOutcome.QUARANTINED
    assert "missing required field 'ts'" in decision.reason
    assert ctrl.quarantined == 1


def test_windows_are_per_source():
    """The same frame from two sources is admitted twice — dedupe is a
    per-source transport property, not a global content filter."""
    ctrl = controller()
    assert ctrl.admit("s1", "A", {"ts": 1, "x": 1}).outcome is AdmissionOutcome.ADMITTED
    assert ctrl.admit("s2", "A", {"ts": 1, "x": 1}).outcome is AdmissionOutcome.ADMITTED
    assert ctrl.source_counts("s1").admitted == 1
    assert ctrl.source_counts("s2").admitted == 1


def test_window_bound_limits_dedupe_horizon():
    ctrl = controller(window=2)
    ctrl.admit("s1", "A", {"ts": 1, "x": 1})
    ctrl.admit("s1", "A", {"ts": 2, "x": 2})
    ctrl.admit("s1", "A", {"ts": 3, "x": 3})  # evicts ts=1 from the window
    late_replay = ctrl.admit("s1", "A", {"ts": 1, "x": 1})
    assert late_replay.outcome is AdmissionOutcome.ADMITTED  # beyond the horizon


def test_preload_seeds_recovery_window():
    schema = make_schema(slack=2)
    before = AdmissionController(schema, window=16)
    admitted = before.admit("s1", "A", {"ts": 1, "x": 1})

    after = AdmissionController(schema, window=16)
    after.preload_events([admitted.event])
    replay = after.admit("s1", "A", {"ts": 1, "x": 1})
    assert replay.outcome is AdmissionOutcome.DUPLICATE
    # ...even from a different source: recovery cannot know which source
    # originally delivered a WAL event, so the recovered window is shared.
    replay_other = after.admit("s2", "A", {"ts": 1, "x": 1})
    assert replay_other.outcome is AdmissionOutcome.DUPLICATE


def test_snapshot_restore_round_trip():
    ctrl = controller()
    ctrl.admit("s1", "A", {"ts": 1, "x": 1})
    ctrl.admit("s1", "A", {"ts": 1, "x": 1})
    ctrl.admit("s2", "B", {"ts": 2, "x": 1})
    ctrl.admit("s2", "A", {"x": 1})

    clone = controller()
    clone.restore_state(ctrl.snapshot_state())
    assert clone.admitted == 2 and clone.duplicates == 1 and clone.quarantined == 1
    assert clone.sources() == ["s1", "s2"]
    assert clone.admit("s1", "A", {"ts": 1, "x": 1}).outcome is AdmissionOutcome.DUPLICATE


def test_admitted_events_carry_schema_derived_identity():
    schema = make_schema(slack=2)
    ctrl = AdmissionController(schema, window=8)
    decision = ctrl.admit("s1", "A", {"ts": 4, "x": 9})
    assert decision.event.eid == schema.derive_eid(decision.idem_id)
