"""Per-source liveness: silence is bounded, fencing keeps seals moving."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.ingest import LivenessTracker, SourceStatus
from repro.streams.punctuation import SourceWatermarks


# -- SourceWatermarks (the merge itself) ------------------------------------------------


def test_merged_watermark_is_min_over_sources():
    marks = SourceWatermarks(slack=0)
    marks.observe("s1", 10)
    marks.observe("s2", 4)
    assert marks.merged() == 3  # min(10, 4) - 0 - 1


def test_slack_trails_the_observation():
    marks = SourceWatermarks(slack=3)
    marks.observe("s1", 10)
    assert marks.merged() == 6


def test_per_source_marks_are_monotone():
    marks = SourceWatermarks(slack=0)
    marks.observe("s1", 10)
    marks.observe("s1", 5)  # out-of-order within the source
    assert marks.mark("s1") == 9


def test_fence_removes_a_source_from_the_merge():
    marks = SourceWatermarks(slack=0)
    marks.observe("s1", 100)
    marks.observe("s2", 5)
    assert marks.merged() == 4
    marks.fence("s2")
    assert marks.merged() == 99


def test_advance_emits_monotone_punctuation():
    marks = SourceWatermarks(slack=0)
    marks.observe("s1", 10)
    first = marks.advance()
    assert first is not None and first.ts == 9
    assert marks.advance() is None  # no progress, no punctuation
    marks.observe("s1", 12)
    second = marks.advance()
    assert second is not None and second.ts == 11


def test_unfence_floor_prevents_watermark_regression():
    marks = SourceWatermarks(slack=0)
    marks.observe("s1", 50)
    marks.observe("s2", 40)
    assert marks.advance().ts == 39
    marks.fence("s2")
    assert marks.advance().ts == 49
    # s2 reconnects claiming old progress; the floor pins it forward.
    marks.unfence("s2", floor=marks.emitted)
    marks.observe("s2", 10)
    assert marks.advance() is None
    assert marks.merged() == 49


def test_snapshot_round_trip():
    marks = SourceWatermarks(slack=1)
    marks.observe("s1", 10)
    marks.fence("s1")
    marks.observe("s2", 20)
    clone = SourceWatermarks(slack=1)
    clone.restore_state(marks.snapshot_state())
    assert clone.merged() == marks.merged()
    assert clone.is_fenced("s1")


# -- LivenessTracker --------------------------------------------------------------------


def test_silent_source_degrades_after_timeout():
    tracker = LivenessTracker(timeout=5.0)
    tracker.observe("s1", 10, now=0.0)
    tracker.observe("s2", 10, now=0.0)
    assert tracker.tick(4.0) == []
    transitions = tracker.tick(6.0)
    assert [t.source for t in transitions] == ["s1", "s2"]
    assert tracker.status_of("s1") is SourceStatus.DEGRADED
    assert tracker.degraded_total == 2


def test_degraded_source_is_fenced_out_of_the_merge():
    tracker = LivenessTracker(timeout=5.0)
    tracker.observe("fast", 100, now=0.0)
    tracker.observe("slow", 10, now=0.0)
    assert tracker.merged_watermark() == 9
    tracker.observe("fast", 110, now=6.0)  # keeps fast alive
    tracker.tick(6.0)
    assert tracker.status_of("slow") is SourceStatus.DEGRADED
    assert tracker.merged_watermark() == 109  # slow no longer stalls the seal


def test_degraded_source_recovers_on_next_frame():
    tracker = LivenessTracker(timeout=5.0)
    tracker.observe("s1", 10, now=0.0)
    tracker.tick(10.0)
    assert tracker.status_of("s1") is SourceStatus.DEGRADED
    recovery = tracker.observe("s1", 20, now=11.0)
    assert recovery is not None and recovery.status is SourceStatus.LIVE
    assert tracker.status_of("s1") is SourceStatus.LIVE
    assert tracker.recovered_total == 1


def test_reconnect_floor_prevents_punctuation_regression():
    tracker = LivenessTracker(timeout=5.0)
    tracker.observe("fast", 100, now=0.0)
    tracker.observe("slow", 90, now=0.0)
    assert tracker.watermarks.advance().ts == 89
    tracker.tick(10.0)  # both degrade; merge falls back to the furthest mark
    tracker.observe("fast", 110, now=10.5)
    assert tracker.watermarks.advance().ts == 109
    # slow recovers with ancient data: its floor is the emitted mark.
    tracker.observe("slow", 50, now=11.0)
    assert tracker.merged_watermark() >= 109


def test_disconnect_defers_fencing_to_the_timeout():
    """A torn connection alone never fences: retrying clients reconnect
    all the time, and an instant fence would floor them at the emitted
    mark, late-dropping their in-flight frames over a blip.  Only the
    silence timeout fences — connected or not."""
    tracker = LivenessTracker(timeout=5.0)
    tracker.connect("s1", now=0.0)
    tracker.observe("s1", 10, now=0.1)
    transition = tracker.disconnect("s1", now=1.0)
    assert transition is not None and transition.status is SourceStatus.DISCONNECTED
    assert not tracker.watermarks.is_fenced("s1")  # still within the timeout
    recovery = tracker.connect("s1", now=2.0)
    assert recovery is not None and recovery.status is SourceStatus.LIVE
    assert not tracker.watermarks.is_fenced("s1")


def test_disconnected_source_is_fenced_once_silent_past_timeout():
    tracker = LivenessTracker(timeout=5.0)
    tracker.observe("s1", 10, now=0.0)
    tracker.observe("s2", 100, now=0.0)
    tracker.disconnect("s1", now=1.0)
    assert tracker.tick(4.0) == []  # within the timeout: still holds the merge
    assert tracker.merged_watermark() == 9
    tracker.observe("s2", 101, now=3.0)  # s2 stays active
    degraded = tracker.tick(6.0)  # silence measured from last activity, not the tear
    assert [t.source for t in degraded] == ["s1"]
    assert tracker.watermarks.is_fenced("s1")
    assert tracker.merged_watermark() == 100


def test_disconnect_twice_records_once():
    tracker = LivenessTracker(timeout=5.0)
    tracker.connect("s1", now=0.0)
    assert tracker.disconnect("s1", now=1.0) is not None
    assert tracker.disconnect("s1", now=2.0) is None


def test_explicit_watermark_counts_as_activity():
    tracker = LivenessTracker(timeout=5.0)
    tracker.observe("s1", 10, now=0.0)
    tracker.assert_watermark("s1", 30, now=4.0)
    assert tracker.tick(8.0) == []  # the assertion reset the silence clock
    assert tracker.merged_watermark() == 30  # assertion is exact, no slack trail


def test_tick_transitions_are_deterministically_ordered():
    tracker = LivenessTracker(timeout=1.0)
    for source in ("zebra", "alpha", "mid"):
        tracker.observe(source, 5, now=0.0)
    transitions = tracker.tick(5.0)
    assert [t.source for t in transitions] == ["alpha", "mid", "zebra"]


def test_timeout_must_be_positive():
    with pytest.raises(ConfigurationError):
        LivenessTracker(timeout=0.0)
