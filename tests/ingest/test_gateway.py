"""The gateway admission ladder, driven in-process with scripted clocks."""

from __future__ import annotations

import json

import pytest

from repro import Event, OfflineOracle, OutOfOrderEngine, parse
from repro.core.engine import ValidationPolicy
from repro.core.errors import ReproError
from repro.core.shedding import ShedPolicy
from repro.faultinject import CrashError, FaultInjector, forge_event
from repro.ingest import GatewayConfig, IngestGateway
from repro.metrics import compare_keys
from repro.obs import MetricsRegistry, Tracer
from repro.obs import trace as stages

from ingest_helpers import make_schema


QUERY = "PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 20"


def make_gateway(directory=None, slack=2, k=4, fault=None, shed=None,
                 tracer=None, metrics=None, **config_kwargs):
    pattern = parse(QUERY)
    config = GatewayConfig(
        make_schema(slack=slack),
        liveness_timeout=config_kwargs.pop("liveness_timeout", 5.0),
        **config_kwargs,
    )
    return IngestGateway(
        lambda: OutOfOrderEngine(pattern, k=k, shed=shed),
        config,
        directory=directory,
        fault=fault,
        tracer=tracer,
        metrics=metrics,
    )


# -- the ladder -------------------------------------------------------------------------


def test_admit_feed_and_match(tmp_path):
    gateway = make_gateway(tmp_path)
    assert gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)["status"] == "admitted"
    assert gateway.admit_frame("s1", "B", {"ts": 3, "x": 7}, now=0.1)["status"] == "admitted"
    gateway.sync_acks()
    gateway.seal()
    assert len(gateway.results()) == 1


def test_duplicates_are_counted_not_refed(tmp_path):
    gateway = make_gateway(tmp_path)
    for _ in range(3):
        gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)
    gateway.admit_frame("s1", "B", {"ts": 3, "x": 7}, now=0.1)
    gateway.seal()
    assert gateway.admission.admitted == 2
    assert gateway.admission.duplicates == 2
    assert len(gateway.results()) == 1  # the duplicate A never double-matched


def test_quarantine_parity_with_engine_side_validation(tmp_path):
    """Gateway-side quarantine produces the same QualityReport accounting
    as feeding the malformed stream to an engine under QUARANTINE."""
    pattern = parse(QUERY)
    good = [
        Event("A", 1, {"x": 7}), Event("B", 3, {"x": 7}),
        Event("A", 5, {"x": 8}), Event("B", 9, {"x": 8}),
    ]
    bad = [forge_event("A", -5, attrs={"x": 7}), forge_event("", 6, attrs={"x": 8})]
    stream = [good[0], bad[0], good[1], good[2], bad[1], good[3]]

    engine = OutOfOrderEngine(pattern, k=4)
    engine.validation = ValidationPolicy.QUARANTINE
    engine.run(stream)

    gateway = make_gateway(tmp_path)
    for index, event in enumerate(stream):
        attrs = dict(event.attrs)
        attrs["ts"] = event.ts
        gateway.admit_frame("s1", event.etype, attrs, now=float(index))
    gateway.seal()

    assert gateway.admission.quarantined == engine.stats.events_quarantined == 2
    engine_report = compare_keys(
        OfflineOracle(pattern).evaluate_set(good),
        engine.result_set(),
        quarantined=engine.stats.events_quarantined,
    )
    # The gateway mints schema-derived eids, so its oracle truth must be
    # built from schema-built events for match keys to line up.
    schema = make_schema(slack=2)
    schema_good = [
        schema.build_event(e.etype, dict(e.attrs, ts=e.ts)) for e in good
    ]
    gateway_report = compare_keys(
        OfflineOracle(pattern).evaluate_set(schema_good),
        {m.key() for m in gateway.results()},
        quarantined=gateway.admission.quarantined,
    )
    assert gateway_report.quarantined == engine_report.quarantined
    assert gateway_report.degraded == engine_report.degraded
    assert gateway_report.recall == engine_report.recall


# -- watermarks and liveness ------------------------------------------------------------


def test_watermarks_merge_into_punctuation(tmp_path):
    gateway = make_gateway(tmp_path, slack=0)
    gateway.admit_frame("s1", "A", {"ts": 10, "x": 1}, now=0.0)
    punct_after_first = gateway.engine.stats.punctuations_in
    assert punct_after_first >= 1  # the merge fed the engine a seal
    # A late joiner is floored at the emitted mark: no regression...
    gateway.admit_frame("s2", "A", {"ts": 4, "x": 2}, now=0.0)
    assert gateway.liveness.merged_watermark() == 9
    # ...and once past the floor it participates in the min-merge: s1
    # (still at 9) holds the mark back while s2 runs ahead.
    gateway.admit_frame("s2", "B", {"ts": 30, "x": 2}, now=0.1)
    assert gateway.liveness.merged_watermark() == 9
    gateway.admit_frame("s1", "B", {"ts": 20, "x": 1}, now=0.2)
    assert gateway.liveness.merged_watermark() == 19
    assert gateway.engine.stats.punctuations_in > punct_after_first


def test_degraded_source_unstalls_punctuation(tmp_path):
    gateway = make_gateway(tmp_path, slack=0, liveness_timeout=5.0)
    gateway.admit_frame("slow", "A", {"ts": 5, "x": 1}, now=0.0)
    gateway.admit_frame("fast", "A", {"ts": 100, "x": 2}, now=6.0)
    assert gateway.liveness.merged_watermark() == 4  # stalled on slow
    transitions = gateway.tick(now=6.5)
    assert [t.source for t in transitions] == ["slow"]
    assert gateway.liveness.merged_watermark() == 99  # fence released the seal
    assert gateway.liveness.degraded_total == 1


def test_recovered_source_cannot_drag_punctuation_backward(tmp_path):
    gateway = make_gateway(tmp_path, slack=0, liveness_timeout=5.0)
    gateway.admit_frame("slow", "A", {"ts": 5, "x": 1}, now=0.0)
    gateway.admit_frame("fast", "A", {"ts": 100, "x": 2}, now=6.0)
    gateway.tick(now=6.5)
    mark_before = gateway.liveness.merged_watermark()
    # slow wakes up with stale data: admitted, but late for the engine.
    ack = gateway.admit_frame("slow", "A", {"ts": 6, "x": 3}, now=7.0)
    assert ack["status"] == "admitted"
    assert gateway.liveness.merged_watermark() >= mark_before
    assert gateway.engine.stats.late_dropped == 1
    assert gateway.liveness.recovered_total == 1


def test_transitions_are_journalled_traced_and_counted(tmp_path):
    tracer = Tracer()
    registry = MetricsRegistry()
    gateway = make_gateway(
        tmp_path, slack=0, liveness_timeout=5.0, tracer=tracer, metrics=registry
    )
    gateway.admit_frame("s1", "A", {"ts": 5, "x": 1}, now=0.0)
    gateway.tick(now=10.0)
    gateway.admit_frame("s1", "A", {"ts": 6, "x": 1}, now=11.0)

    recorded = [span.stage for span in tracer.spans()]
    assert stages.SOURCE_DEGRADED in recorded
    assert stages.SOURCE_RECOVERED in recorded
    assert registry.get("repro_ingest_degraded_total").value == 1
    assert registry.get("repro_ingest_recovered_total").value == 1

    # Journal appends ride an off-loop writer thread; flush before reading.
    gateway.flush_journal()
    journal = [
        json.loads(line)
        for line in (tmp_path / "gateway.jsonl").read_text().splitlines()
    ]
    statuses = [r["status"] for r in journal if r["kind"] == "transition"]
    assert statuses == ["degraded", "live"]


# -- backpressure -----------------------------------------------------------------------


def test_backpressure_throttles_then_refuses(tmp_path):
    shed = ShedPolicy.drop_oldest(10)
    gateway = make_gateway(
        tmp_path, shed=shed, soft_pressure=0.3, hard_pressure=0.8, retry_after=0.25
    )
    acks = [
        gateway.admit_frame("s1", "A", {"ts": t, "x": t}, now=float(t))
        for t in range(12)
    ]
    throttled = [a for a in acks if a["status"] == "admitted" and "throttle" in a]
    busy = [a for a in acks if a["status"] == "busy"]
    assert throttled, "soft band never engaged"
    assert busy, "hard threshold never refused"
    assert all(a["retry_after"] == 0.25 for a in busy)
    assert gateway.busy_total == len(busy)
    # A refused frame was never admitted: no dedupe entry, no feed.
    assert gateway.admission.admitted == len(acks) - len(busy)


def test_busy_frames_can_be_retried_after_drain(tmp_path):
    shed = ShedPolicy.drop_oldest(6)
    gateway = make_gateway(
        tmp_path, slack=0, shed=shed, soft_pressure=0.5, hard_pressure=0.9
    )
    refused = None
    for t in range(10):
        ack = gateway.admit_frame("s1", "A", {"ts": t, "x": t}, now=float(t))
        if ack["status"] == "busy":
            refused = t
            break
    assert refused is not None
    # A watermark assertion is not an event: it bypasses admission, so a
    # saturated gateway can still make seal progress and drain state...
    gateway.assert_watermark("s1", refused + 30, now=50.0)
    assert gateway.pressure() < 0.9
    retry = gateway.admit_frame("s1", "A", {"ts": refused, "x": refused}, now=51.0)
    # ...and the retried frame is admitted (not a duplicate: it was never fed).
    assert retry["status"] == "admitted"


def test_no_shed_policy_means_no_backpressure(tmp_path):
    gateway = make_gateway(tmp_path)
    assert gateway.pressure() == 0.0


# -- crash and recovery -----------------------------------------------------------------


def test_crash_is_surfaced_and_recovery_dedupes(tmp_path):
    fault = FaultInjector(crash_at=[1])
    first = make_gateway(tmp_path, fault=fault)
    first.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)
    first.sync_acks()
    with pytest.raises(CrashError):
        first.admit_frame("s1", "B", {"ts": 3, "x": 7}, now=0.1)
    assert first.crashed
    with pytest.raises(ReproError):
        first.admit_frame("s1", "B", {"ts": 3, "x": 7}, now=0.2)

    second = make_gateway(tmp_path)
    # The crash fired *after* the WAL flush, so both frames were logged:
    # recovery replays both into the engine and both redeliveries dedupe.
    assert second.recovered_frames == 2
    assert second.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=1.0)["status"] == "duplicate"
    assert second.admit_frame("s1", "B", {"ts": 3, "x": 7}, now=1.1)["status"] == "duplicate"
    second.seal()
    assert len(second.runner.matches) == 1


def test_fault_without_directory_is_rejected():
    with pytest.raises(ReproError):
        make_gateway(None, fault=FaultInjector(crash_at=[0]))


def test_stats_shape(tmp_path):
    gateway = make_gateway(tmp_path)
    gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)
    gateway.admit_frame("s1", "bogus", {"ts": 1}, now=0.1)
    stats = gateway.stats()
    assert stats["admitted"] == 1 and stats["quarantined"] == 1
    assert stats["sources"]["s1"]["status"] == "live"
    assert stats["stream"] == "orders"
