"""Regression tests for the gateway's async-hygiene fixes.

The R006–R008 analysis pass found three real defects in the gateway
transport, fixed in the same change that introduced the rules: journal
appends blocked the event loop (R007), ``writer.close()`` was never
paired with ``wait_closed()`` (R008), and ``stop()`` cancelled the
tick task without awaiting it (R008).  These tests pin the fixed
behaviour so the defects cannot quietly return.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import OutOfOrderEngine, parse
from repro.faultinject import CrashError, FaultInjector
from repro.ingest import GatewayConfig, IngestGateway
from repro.ingest.server import _JournalWriter

from ingest_helpers import make_schema


QUERY = "PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 20"


def make_gateway(directory, fault=None):
    config = GatewayConfig(make_schema(slack=2), port=0, liveness_timeout=30.0)
    return IngestGateway(
        lambda: OutOfOrderEngine(parse(QUERY), k=4),
        config,
        directory=directory,
        fault=fault,
    )


# -- the off-loop journal writer --------------------------------------------------------


def test_flush_is_an_ordering_barrier(tmp_path):
    writer = _JournalWriter(tmp_path / "j.jsonl")
    lines = [f"{{\"n\": {i}}}\n" for i in range(200)]
    for line in lines:
        writer.append(line)
    writer.flush()
    assert (tmp_path / "j.jsonl").read_text() == "".join(lines)
    writer.close()


def test_writer_respawns_after_close(tmp_path):
    writer = _JournalWriter(tmp_path / "j.jsonl")
    writer.append("a\n")
    writer.close()
    assert (tmp_path / "j.jsonl").read_text() == "a\n"
    # close() parks the thread; the next append must revive it.
    writer.append("b\n")
    writer.flush()
    assert (tmp_path / "j.jsonl").read_text() == "a\nb\n"
    writer.close()


def test_flush_and_close_without_appends_are_noops(tmp_path):
    writer = _JournalWriter(tmp_path / "j.jsonl")
    writer.flush()
    writer.close()
    assert not (tmp_path / "j.jsonl").exists()


def test_flush_journal_makes_records_visible(tmp_path):
    gateway = make_gateway(tmp_path)
    gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)
    gateway.flush_journal()
    records = [
        json.loads(line)
        for line in (tmp_path / "gateway.jsonl").read_text().splitlines()
    ]
    assert any(r["kind"] == "source" and r["source"] == "s1" for r in records)


def test_crash_record_is_durable_before_crash_propagates(tmp_path):
    """``_note_crash`` flushes on its own: by the time CrashError reaches
    the caller, the journal already says why — no flush call needed."""
    gateway = make_gateway(tmp_path, fault=FaultInjector(crash_at=[1]))
    gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)
    gateway.sync_acks()
    with pytest.raises(CrashError):
        gateway.admit_frame("s1", "B", {"ts": 3, "x": 7}, now=0.1)
    records = [
        json.loads(line)
        for line in (tmp_path / "gateway.jsonl").read_text().splitlines()
    ]
    assert any(r["kind"] == "crash" for r in records)


# -- stop(): task and writer lifecycle --------------------------------------------------


def test_stop_awaits_cancelled_tick_task(tmp_path):
    async def scenario():
        gateway = make_gateway(tmp_path)
        await gateway.start()
        task = gateway._tick_task
        assert isinstance(task, asyncio.Task) and not task.done()
        await gateway.stop()
        return gateway, task

    gateway, task = asyncio.run(scenario())
    # The handle is swapped out and the task fully retired — not just
    # cancel()ed and abandoned to die after the loop closes.
    assert gateway._tick_task is None
    assert task.cancelled()
    assert gateway._server is None


def test_stop_is_idempotent(tmp_path):
    async def scenario():
        gateway = make_gateway(tmp_path)
        await gateway.start()
        await gateway.stop()
        await gateway.stop(seal=False)  # every handle already swapped out

    asyncio.run(scenario())


def test_stop_closes_tracked_connections(tmp_path):
    async def scenario():
        gateway = make_gateway(tmp_path)
        await gateway.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", gateway.port)
        for _ in range(100):
            if gateway._writers:
                break
            await asyncio.sleep(0.01)
        assert gateway._writers, "connection was never tracked"
        await gateway.stop()
        assert gateway._writers == set()
        # The server side hung up: the client reads EOF promptly.
        assert await asyncio.wait_for(reader.read(), timeout=5.0) == b""
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    asyncio.run(scenario())
