"""Shared fixtures for the ingestion-layer tests."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `from ingest_helpers import make_schema` work regardless of how
# pytest set up sys.path for this subdirectory.
sys.path.insert(0, str(Path(__file__).parent))

from repro import parse  # noqa: E402

from ingest_helpers import make_schema  # noqa: E402


@pytest.fixture
def schema():
    return make_schema(slack=2)


@pytest.fixture
def ab_pattern():
    return parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 20")
