"""Gateway observability: spans, the telemetry sidecar, flight dumps.

Everything here runs with metrics + flight ENABLED; the parity suite
(tests/property/test_property_ingest_obs.py) proves enabling them never
changes admission decisions or results.
"""

from __future__ import annotations

import json

import pytest

from repro import OutOfOrderEngine, parse
from repro.cli import main
from repro.faultinject import CrashError, FaultInjector
from repro.ingest import GatewayConfig, IngestClient, IngestGateway
from repro.ingest.server import serve_in_thread
from repro.obs import MetricsRegistry
from repro.obs.export import parse_prometheus
from repro.obs.flight import FlightRecorder, analyze_flight, load_flight
from repro.obs.httpserv import http_get
from repro.obs.span import ACK_STAGES, SPAN_FIELD, mint_span

from ingest_helpers import make_schema

QUERY = "PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 20"


def make_observed_gateway(directory=None, fault=None, telemetry_port=None,
                          shed=None, k=4, **config_kwargs):
    pattern = parse(QUERY)
    config = GatewayConfig(
        make_schema(slack=2),
        liveness_timeout=config_kwargs.pop("liveness_timeout", 5.0),
        telemetry_port=telemetry_port,
        **config_kwargs,
    )
    return IngestGateway(
        lambda: OutOfOrderEngine(pattern, k=k, shed=shed),
        config,
        directory=directory,
        fault=fault,
        metrics=MetricsRegistry(),
        flight=FlightRecorder(),
    )


# -- span attribution through admit_frame ------------------------------------------


def test_admit_frame_attributes_every_outcome(tmp_path):
    gateway = make_observed_gateway(tmp_path)
    span = mint_span(0.0)
    assert gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0,
                               span=span)["status"] == "admitted"
    assert gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.1,
                               span=span)["status"] == "duplicate"
    assert gateway.admit_frame("s1", "bogus", {"ts": 2}, now=0.2)["status"] == "quarantined"
    gateway.sync_acks()

    spans = gateway._spans
    # Direct drives (no transport cohort) seal lazily; force the seals.
    record = spans.seal_cohort(1.0, 1.0, 1.0)
    assert record is not None
    state = gateway.registry.snapshot_state()["histograms"]
    for stage in ACK_STAGES:
        assert state[f'repro_stage_seconds{{stage="{stage}"}}']["count"] >= 1


def test_emit_path_spans_close_on_match(tmp_path):
    gateway = make_observed_gateway(tmp_path)
    gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)
    gateway.admit_frame("s1", "B", {"ts": 3, "x": 7}, now=0.1)
    # Push the watermark far enough that the SEQ match seals and emits.
    for ts in (30, 60):
        gateway.assert_watermark("s1", ts, now=0.2)
    assert len(gateway.runner.matches) == 1
    state = gateway.registry.snapshot_state()["histograms"]
    assert state["repro_emit_hold_seconds"]["count"] == 2


def test_lag_panel_tracks_sources(tmp_path):
    from repro.obs.export import render_prometheus

    gateway = make_observed_gateway(tmp_path)
    # The slow source registers first; the fast one then races ahead of
    # it (joining the other way round would floor "slow" at the already-
    # emitted mark, by design).
    gateway.admit_frame("slow", "A", {"ts": 10, "x": 2}, now=0.0)
    gateway.admit_frame("fast", "A", {"ts": 50, "x": 1}, now=0.1)
    samples = parse_prometheus(render_prometheus(gateway.registry))
    assert samples['repro_source_watermark{source="fast"}'] > samples[
        'repro_source_watermark{source="slow"}'
    ]
    assert samples['repro_source_lag{source="slow"}'] == 40
    assert samples['repro_source_lag{source="fast"}'] == 0


# -- the sidecar over a live socket ------------------------------------------------


def test_telemetry_endpoints_during_soak(tmp_path):
    gateway = make_observed_gateway(tmp_path, telemetry_port=0)
    handle = serve_in_thread(gateway)
    try:
        client = IngestClient("127.0.0.1", gateway.port, "s1", "orders")
        client.connect()
        for ts in range(1, 30):
            client.send("A" if ts % 2 else "B", {"ts": ts, "x": ts // 3})
        # Scrape WHILE the gateway lives, mid-stream.
        port = gateway.telemetry_port
        status, body = http_get("127.0.0.1", port, "/metrics")
        assert status == 200
        samples = parse_prometheus(body)
        assert samples["repro_ingest_admitted_total"] >= 1
        assert any(k.startswith("repro_stage_seconds") for k in samples)

        status, body = http_get("127.0.0.1", port, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["band"] == "ok"
        assert health["live_sources"] == 1

        status, body = http_get("127.0.0.1", port, "/sources")
        assert status == 200
        sources = json.loads(body)["sources"]
        assert sources["s1"]["status"] == "live"
        assert sources["s1"]["admitted"] >= 1
        assert sources["s1"]["fenced"] is False

        status, body = http_get("127.0.0.1", port, "/nope")
        assert status == 404 and "/metrics" in body
        client.close()

        # The client-minted spans crossed the wire: transit was observed.
        status, body = http_get("127.0.0.1", port, "/metrics")
        samples = parse_prometheus(body)
        assert samples['repro_stage_seconds_count{stage="transit"}'] >= 1
    finally:
        handle.stop()


def test_stage_sums_equal_e2e_over_socket(tmp_path):
    gateway = make_observed_gateway(tmp_path, telemetry_port=0)
    handle = serve_in_thread(gateway)
    try:
        client = IngestClient("127.0.0.1", gateway.port, "s1", "orders")
        client.connect()
        for ts in range(1, 60):
            client.send("A" if ts % 2 else "B", {"ts": ts, "x": ts // 3})
        client.close()
        cohorts = list(gateway._spans.cohorts)
        assert cohorts
        for record in cohorts:
            total = sum(record["stage_sums"].values())
            assert total == pytest.approx(record["e2e_sum"], rel=0.05, abs=1e-9)
    finally:
        handle.stop()


def test_telemetry_port_raises_when_disabled(tmp_path):
    from repro.core.errors import ReproError

    gateway = make_observed_gateway(tmp_path)
    with pytest.raises(ReproError):
        gateway.telemetry_port


# -- flight dumps ------------------------------------------------------------------


def test_crash_dumps_flight_and_explain_reads_it(tmp_path, capsys):
    fault = FaultInjector(crash_at=[3])
    gateway = make_observed_gateway(tmp_path, fault=fault)
    gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)
    gateway.admit_frame("s1", "B", {"ts": 3, "x": 7}, now=0.1)
    gateway.sync_acks()
    with pytest.raises(CrashError):
        gateway.admit_frame("s1", "A", {"ts": 5, "x": 8}, now=0.2)

    path = tmp_path / "flight.jsonl"
    assert path.exists()
    header, records = load_flight(path.read_text(encoding="utf-8"))
    assert header["reason"] == "crash"
    assert header["stream"] == "orders"
    kinds = {record.kind for record in records}
    assert "crash" in kinds and "admit" in kinds

    code = main(["explain", "--flight", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "flight recording:" in out
    assert "proximate stall:" in out
    assert "reason: crash" in out


def test_manual_dump_truncates_previous(tmp_path):
    gateway = make_observed_gateway(tmp_path)
    gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)
    gateway.dump_flight("first")
    gateway.admit_frame("s1", "B", {"ts": 3, "x": 7}, now=0.1)
    gateway.dump_flight("second")
    text = (tmp_path / "flight.jsonl").read_text(encoding="utf-8")
    # Exactly one header: the second dump replaced the first.
    headers = [
        line for line in text.splitlines()
        if line.strip() and "flight" in json.loads(line)
    ]
    assert len(headers) == 1
    header, records = load_flight(text)
    assert header["reason"] == "second"
    assert len(records) == header["records"]


def test_sigterm_handler_dumps_and_terminates(tmp_path):
    gateway = make_observed_gateway(tmp_path)
    gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)
    gateway._on_sigterm()
    assert gateway.terminated
    header, records = load_flight(
        (tmp_path / "flight.jsonl").read_text(encoding="utf-8")
    )
    assert header["reason"] == "sigterm"
    assert records[-1].kind == "sigterm"


def test_fence_records_reach_the_flight(tmp_path):
    gateway = make_observed_gateway(tmp_path, liveness_timeout=1.0)
    gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)
    gateway.tick(now=10.0)  # silent past the timeout: fence
    gateway.admit_frame("s1", "A", {"ts": 2, "x": 8}, now=10.5)  # recovery
    gateway.dump_flight()
    header, records = load_flight(
        (tmp_path / "flight.jsonl").read_text(encoding="utf-8")
    )
    kinds = [record.kind for record in records]
    assert "fence" in kinds and "unfence" in kinds
    report = analyze_flight(header, records)
    # Recovered before the end: the fence must not be named the stall.
    assert report.verdict != "fenced source"


def test_explain_flight_missing_dump(tmp_path, capsys):
    code = main(["explain", "--flight", str(tmp_path / "nope.jsonl")])
    assert code == 1
    assert "no flight dump" in capsys.readouterr().out


def test_disabled_observability_writes_nothing(tmp_path):
    pattern = parse(QUERY)
    gateway = IngestGateway(
        lambda: OutOfOrderEngine(pattern, k=4),
        GatewayConfig(make_schema(slack=2), liveness_timeout=5.0),
        directory=tmp_path,
    )
    gateway.admit_frame("s1", "A", {"ts": 1, "x": 7}, now=0.0)
    gateway.dump_flight()  # no recorder: a no-op, not an error
    assert not (tmp_path / "flight.jsonl").exists()
    assert gateway._spans is None and gateway._lag_panel is None
