"""Socket-level drills: oracle parity, scripted client faults, crash-anywhere.

Everything here runs a real asyncio gateway in a background thread and
drives it with the blocking client over TCP on the loopback interface.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import OutOfOrderEngine, parse
from repro.faultinject import FaultInjector
from repro.ingest import (
    ClientFaultPlan,
    GatewayConfig,
    IngestClient,
    IngestGateway,
    send_events,
    serve_in_thread,
)

from ingest_helpers import make_schema


QUERY = "PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 20"


def build_gateway(directory=None, port=0, fault=None):
    config = GatewayConfig(
        make_schema(slack=2),
        port=port,
        liveness_timeout=30.0,  # no surprise degradations on a slow CI box
    )
    pattern = parse(QUERY)
    return IngestGateway(
        lambda: OutOfOrderEngine(pattern, k=4),
        config,
        directory=directory,
        fault=fault,
    )


def frames_for(pairs: int):
    frames = []
    for i in range(pairs):
        frames.append(("A", {"ts": 2 * i, "x": i % 3}))
        frames.append(("B", {"ts": 2 * i + 1, "x": i % 3}))
    return frames


def inprocess_result_keys(frames, source="s1"):
    """The uninterrupted baseline: same frames, no sockets, no faults."""
    gateway = build_gateway()
    for index, (etype, attrs) in enumerate(frames):
        ack = gateway.admit_frame(source, etype, attrs, now=float(index))
        assert ack["status"] == "admitted"
    gateway.seal()
    return {match.key() for match in gateway.results()}


# -- clean path -------------------------------------------------------------------------


def test_socket_roundtrip_equals_inprocess_run(tmp_path):
    frames = frames_for(15)
    gateway = build_gateway(tmp_path)
    handle = serve_in_thread(gateway)
    try:
        report = send_events("127.0.0.1", handle.port, "s1", "orders", frames)
    finally:
        handle.stop(seal=True)
    assert report.admitted == len(frames)
    assert report.duplicates == report.quarantined == 0
    assert {m.key() for m in gateway.results()} == inprocess_result_keys(frames)


def test_two_sources_interleaved_lockstep(tmp_path):
    """window=1 makes each send wait for its ack, so the interleaving —
    and therefore the punctuation stream — is fully deterministic."""
    frames = frames_for(10)
    gateway = build_gateway(tmp_path)
    handle = serve_in_thread(gateway)
    try:
        clients = [
            IngestClient("127.0.0.1", handle.port, name, "orders", window=1)
            for name in ("s1", "s2")
        ]
        for client in clients:
            client.connect()
        for etype, attrs in frames:
            for client in clients:
                client.send(etype, dict(attrs))
        reports = [client.close() for client in clients]
    finally:
        handle.stop(seal=True)
    assert all(r.admitted == len(frames) for r in reports)
    assert gateway.admission.source_counts("s1").admitted == len(frames)
    assert gateway.admission.source_counts("s2").admitted == len(frames)
    # Dedupe is per-source: identical payloads from s1 and s2 both land.
    baseline = inprocess_result_keys(frames)
    assert {m.key() for m in gateway.results()} == baseline


def test_quarantined_frame_is_acked_not_fatal(tmp_path):
    gateway = build_gateway(tmp_path)
    handle = serve_in_thread(gateway)
    try:
        client = IngestClient("127.0.0.1", handle.port, "s1", "orders")
        client.connect()
        client.send("A", {"ts": 1, "x": 7})
        client.send("A", {"x": 7})  # missing t_event field
        client.send("B", {"ts": 3, "x": 7})
        report = client.close()
    finally:
        handle.stop(seal=True)
    assert report.admitted == 2 and report.quarantined == 1
    assert gateway.admission.quarantined == 1
    assert len(gateway.results()) == 1


def test_wrong_stream_is_refused_at_hello(tmp_path):
    gateway = build_gateway(tmp_path)
    handle = serve_in_thread(gateway)
    try:
        client = IngestClient(
            "127.0.0.1", handle.port, "s1", "checkouts", timeout=2.0
        )
        from repro.core.errors import ReproError

        with pytest.raises((ReproError, ConnectionError, OSError)):
            client.connect()
    finally:
        handle.stop(seal=True)


# -- scripted client faults --------------------------------------------------------------


def test_lost_ack_and_duplicate_send_are_absorbed(tmp_path):
    """torn_after_send loses acks (server admitted, client must resend);
    duplicate_send double-transmits.  Admission absorbs both: the engine
    sees every frame exactly once."""
    frames = frames_for(10)
    plan = ClientFaultPlan(torn_after_send=[3], duplicate_send=[7, 12])
    gateway = build_gateway(tmp_path)
    handle = serve_in_thread(gateway)
    try:
        report = send_events(
            "127.0.0.1", handle.port, "s1", "orders", frames, fault_plan=plan
        )
    finally:
        handle.stop(seal=True)
    assert report.reconnects >= 1
    assert report.resends >= 3  # the torn batch + two scripted duplicates
    assert report.admitted + report.duplicates == len(frames)
    # Server-side: every distinct frame admitted once, extras deduped.
    assert gateway.admission.admitted == len(frames)
    assert gateway.admission.duplicates >= 2
    assert {m.key() for m in gateway.results()} == inprocess_result_keys(frames)


def test_torn_before_send_is_a_clean_resend(tmp_path):
    frames = frames_for(6)
    plan = ClientFaultPlan(torn_before_send=[4])
    gateway = build_gateway(tmp_path)
    handle = serve_in_thread(gateway)
    try:
        report = send_events(
            "127.0.0.1", handle.port, "s1", "orders", frames, fault_plan=plan
        )
    finally:
        handle.stop(seal=True)
    assert report.reconnects >= 1
    assert report.admitted + report.duplicates == len(frames)
    assert gateway.admission.admitted == len(frames)
    assert {m.key() for m in gateway.results()} == inprocess_result_keys(frames)


# -- crash-anywhere ---------------------------------------------------------------------


def run_crash_scenario(tmp_path, crash_at, frames):
    """Crash the gateway at WAL element *crash_at* mid-ingest, restart it
    on the same port, and let the client ride through.  Returns (client
    report, recovered gateway)."""
    first = build_gateway(tmp_path, fault=FaultInjector(crash_at=[crash_at]))
    handle = serve_in_thread(first)
    port = handle.port
    restarted = {}

    def restart():
        while not first.crashed:
            time.sleep(0.005)
        handle.stop(seal=False)
        second = build_gateway(tmp_path, port=port)
        restarted["gateway"] = second
        restarted["handle"] = serve_in_thread(second)

    watchdog = threading.Thread(target=restart, daemon=True)
    watchdog.start()
    try:
        report = send_events("127.0.0.1", port, "s1", "orders", frames, window=4)
    finally:
        watchdog.join(timeout=10.0)
        if "handle" in restarted:
            restarted["handle"].stop(seal=True)
        else:
            handle.stop(seal=False)
    assert not watchdog.is_alive(), "gateway never crashed — crash point unused"
    return report, first, restarted["gateway"]


@pytest.mark.parametrize("crash_at", [1, 4, 9, 17])
def test_crash_anywhere_is_exactly_once(tmp_path, crash_at):
    """The property the whole PR hangs on: wherever the crash lands, the
    client's resends plus WAL replay yield exactly-once admission and a
    sealed result set identical to the uninterrupted run."""
    frames = frames_for(12)
    report, crashed, recovered = run_crash_scenario(tmp_path, crash_at, frames)

    # Client accounting: every frame resolved, by ack or by dedupe.
    assert report.reconnects >= 1
    assert report.admitted + report.duplicates == len(frames)
    # Server accounting: WAL replay + post-recovery admissions cover each
    # distinct frame exactly once (duplicates were absorbed, not fed).
    assert recovered.recovered_frames + recovered.admission.admitted == len(frames)
    # Delivery accounting: results() is per-incarnation (the delivery log
    # suppresses replayed matches a predecessor already delivered), so the
    # exactly-once statement is about the union: across both incarnations
    # every match of the uninterrupted run is delivered once, none twice.
    before = {m.key() for m in crashed.results()}
    after = {m.key() for m in recovered.results()}
    assert before & after == set()
    assert before | after == inprocess_result_keys(frames)


def test_recovered_gateway_reports_replay_in_hello(tmp_path):
    frames = frames_for(4)
    gateway = build_gateway(tmp_path)
    handle = serve_in_thread(gateway)
    try:
        send_events("127.0.0.1", handle.port, "s1", "orders", frames)
    finally:
        handle.stop(seal=False)  # stop without sealing: a restart, not a shutdown

    second = build_gateway(tmp_path)
    handle2 = serve_in_thread(second)
    try:
        client = IngestClient("127.0.0.1", handle2.port, "s1", "orders")
        client.connect()
        assert client.server_recovered_frames == len(frames)
        # Redelivering the whole trace is harmless.
        for etype, attrs in frames:
            client.send(etype, dict(attrs))
        report = client.close()
    finally:
        handle2.stop(seal=True)
    assert report.duplicates == len(frames) and report.admitted == 0
    # The first incarnation already delivered every match; the delivery
    # log keeps the restart from delivering any of them again.
    assert second.results() == []
    assert {m.key() for m in gateway.results()} == inprocess_result_keys(frames)
