"""Equality-index observability: hit/miss counters and the candidate
histogram register only when a plan exists, mirror EngineStats exactly,
and never perturb engine output (the obs parity contract)."""

from __future__ import annotations

import random

from repro.core.engine import OutOfOrderEngine
from repro.core.event import Event
from repro.core.parser import parse
from repro.obs.metrics import MetricsRegistry

INDEXED_QUERY = "PATTERN SEQ(A a, B b, C c) WHERE a.x == c.x WITHIN 30"
PLAIN_QUERY = "PATTERN SEQ(A a, B b, C c) WITHIN 30"


def _trace(count=300, seed=5):
    rng = random.Random(seed)
    events = [
        Event(rng.choice("ABC"), ts, {"x": rng.randint(0, 3)})
        for ts in range(1, count + 1)
    ]
    keyed = [(e.ts + rng.randint(0, 6), i, e) for i, e in enumerate(events)]
    keyed.sort()
    return [e for __, __, e in keyed]


def test_counters_mirror_engine_stats():
    registry = MetricsRegistry()
    engine = OutOfOrderEngine(parse(INDEXED_QUERY), k=8)
    engine.enable_observability(metrics=registry)
    engine.run(_trace())
    hits = registry.get("repro_index_hits_total")
    misses = registry.get("repro_index_misses_total")
    histogram = registry.get("repro_index_candidates")
    assert hits.value == engine.stats.index_hits > 0
    assert misses.value == engine.stats.index_misses
    # Every index-served lookup observes its candidate-set size — hits
    # (non-empty) and misses (size 0) alike.
    assert histogram.count == hits.value + misses.value
    assert histogram.total >= hits.value


def test_not_registered_without_a_plan():
    registry = MetricsRegistry()
    engine = OutOfOrderEngine(parse(PLAIN_QUERY), k=8)
    engine.enable_observability(metrics=registry)
    engine.run(_trace())
    assert registry.get("repro_index_hits_total") is None
    assert registry.get("repro_index_candidates") is None


def test_not_registered_when_index_disabled():
    registry = MetricsRegistry()
    engine = OutOfOrderEngine(parse(INDEXED_QUERY), k=8, index=False)
    engine.enable_observability(metrics=registry)
    engine.run(_trace())
    assert registry.get("repro_index_hits_total") is None
    assert engine.stats.index_hits == 0


def test_instrumented_run_identical_to_plain():
    arrival = _trace()
    plain = OutOfOrderEngine(parse(INDEXED_QUERY), k=8)
    plain.run(arrival)
    instrumented = OutOfOrderEngine(parse(INDEXED_QUERY), k=8)
    instrumented.enable_observability(metrics=MetricsRegistry())
    instrumented.run(arrival)
    assert [m.key() for m in instrumented.results] == [
        m.key() for m in plain.results
    ]
    assert instrumented.stats.as_dict() == plain.stats.as_dict()
