"""The telemetry sidecar: routes, failure shapes, lifecycle."""

from __future__ import annotations

import asyncio
import socket
import threading

import pytest

from repro.obs.httpserv import TelemetryServer, http_get


class _Loop:
    """A telemetry server on its own daemon-thread loop (sync tests)."""

    def __init__(self, routes):
        self.server = TelemetryServer("127.0.0.1", 0, routes)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.started = threading.Event()

    def _run(self):
        asyncio.set_event_loop(self.loop)

        async def main():
            await self.server.start()
            self.started.set()
            await self.stopping

        self.stopping = self.loop.create_future()
        try:
            self.loop.run_until_complete(main())
        finally:
            self.loop.close()

    def __enter__(self):
        self.thread.start()
        assert self.started.wait(5.0)
        return self.server

    def __exit__(self, *exc):
        async def stop():
            await self.server.stop()
            self.stopping.set_result(None)

        asyncio.run_coroutine_threadsafe(stop(), self.loop).result(5.0)
        self.thread.join(5.0)


def _routes():
    return {
        "/ok": lambda: (200, "text/plain", "fine\n"),
        "/json": lambda: (200, "application/json", '{"a": 1}\n'),
        "/boom": lambda: (_ for _ in ()).throw(RuntimeError("panel broke")),
    }


def test_routes_and_errors():
    with _Loop(_routes()) as server:
        port = server.port
        status, body = http_get("127.0.0.1", port, "/ok")
        assert (status, body) == (200, "fine\n")
        status, body = http_get("127.0.0.1", port, "/json")
        assert status == 200 and '"a": 1' in body

        # Unknown path lists what exists.
        status, body = http_get("127.0.0.1", port, "/nope")
        assert status == 404
        assert "/ok" in body and "/json" in body

        # A broken panel answers 500 without killing the loop.
        status, body = http_get("127.0.0.1", port, "/boom")
        assert status == 500 and "panel broke" in body
        status, __ = http_get("127.0.0.1", port, "/ok")
        assert status == 200


def test_query_strings_are_stripped():
    with _Loop(_routes()) as server:
        status, __ = http_get("127.0.0.1", server.port, "/ok?x=1")
        assert status == 200


def test_non_get_is_rejected():
    with _Loop(_routes()) as server:
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(b"POST /ok HTTP/1.1\r\nHost: x\r\n\r\n")
            raw = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                raw += chunk
        assert raw.startswith(b"HTTP/1.1 405")


def test_garbage_request_line_closes_quietly():
    with _Loop(_routes()) as server:
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(b"nonsense\r\n\r\n")
            assert sock.recv(4096) == b""
        # The loop is still serving.
        status, __ = http_get("127.0.0.1", server.port, "/ok")
        assert status == 200


def test_port_before_start_raises():
    server = TelemetryServer("127.0.0.1", 0, {})
    with pytest.raises(RuntimeError):
        server.port


def test_stop_refuses_new_connections():
    loop_holder = _Loop(_routes())
    with loop_holder as server:
        port = server.port
        status, __ = http_get("127.0.0.1", port, "/ok")
        assert status == 200
    with pytest.raises(OSError):
        http_get("127.0.0.1", port, "/ok", timeout=1.0)
