"""SpanTracker: the stage-attribution identity and the emit path."""

from __future__ import annotations

from repro.obs.export import parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import (
    ACK_STAGES,
    SourceLagPanel,
    SpanTracker,
    mint_span,
    span_origin,
)


def test_span_context_round_trip():
    span = mint_span(12.3456789)
    assert span_origin(span) == 12.3456789
    assert span_origin(None) is None
    assert span_origin({"t0": "not a number"}) is None
    assert span_origin("garbage") is None
    assert span_origin({}) is None


def test_stage_sums_telescope_to_e2e_exactly():
    registry = MetricsRegistry()
    tracker = SpanTracker(registry)
    tracker.open_cohort(10.0)
    # Two frames admitted back to back, one duplicate in between.
    tracker.note_frame("s1", "admitted", 10.001, 10.002, 10.004, t_sent=9.9, eid=1)
    tracker.note_frame("s1", "duplicate", 10.004, 10.005, 10.005, t_sent=9.95)
    tracker.note_frame("s2", "admitted", 10.005, 10.006, 10.009, eid=2)
    record = tracker.seal_cohort(10.010, 10.020, 10.021)

    assert record["frames"] == 3
    total = sum(record["stage_sums"].values())
    # The identity is by construction: telescoping boundaries over
    # [t_receipt, t_ack] for every frame, summed across the cohort.
    assert abs(total - record["e2e_sum"]) < 1e-12
    assert record["e2e_sum"] == (10.021 - 10.0) * 3
    assert record["statuses"] == ["admitted", "duplicate"]
    # Transit observed separately, only for frames carrying a span.
    assert abs(record["transit_sum"] - ((10.0 - 9.9) + (10.0 - 9.95))) < 1e-12

    # Every ack-path stage histogram saw all three frames.
    state = registry.snapshot_state()["histograms"]
    for stage in ACK_STAGES:
        key = f'repro_stage_seconds{{stage="{stage}"}}'
        assert state[key]["count"] == 3
    assert state['repro_stage_seconds{stage="transit"}']["count"] == 2
    assert state["repro_ack_e2e_seconds"]["count"] == 3


def test_frame_without_open_cohort_becomes_its_own():
    tracker = SpanTracker(MetricsRegistry())
    tracker.note_frame("s1", "admitted", 5.0, 5.001, 5.002, eid=9)
    record = tracker.seal_cohort(5.003, 5.004, 5.005)
    assert record["frames"] == 1
    # Implicit cohort opened at t_start: the queue stage is zero.
    assert record["stage_sums"]["queue"] == 0.0
    assert abs(sum(record["stage_sums"].values()) - record["e2e_sum"]) < 1e-12


def test_seal_without_frames_records_nothing():
    tracker = SpanTracker(MetricsRegistry())
    tracker.open_cohort(1.0)
    assert tracker.seal_cohort(1.1, 1.2, 1.3) is None
    assert tracker.sealed_cohorts == 0


def test_drop_cohort_discards_open_frames():
    registry = MetricsRegistry()
    tracker = SpanTracker(registry)
    tracker.open_cohort(1.0)
    tracker.note_frame("s1", "admitted", 1.001, 1.002, 1.003, eid=1)
    tracker.drop_cohort()
    assert tracker.seal_cohort(1.1, 1.2, 1.3) is None
    state = registry.snapshot_state()["histograms"]
    assert state["repro_ack_e2e_seconds"]["count"] == 0


def test_emit_path_closes_inflight_spans():
    registry = MetricsRegistry()
    tracker = SpanTracker(registry)
    tracker.open_cohort(2.0)
    tracker.note_frame("s1", "admitted", 2.001, 2.002, 2.003, t_sent=1.9, eid=11)
    tracker.note_frame("s1", "admitted", 2.003, 2.004, 2.005, eid=12)
    tracker.seal_cohort(2.006, 2.007, 2.008)
    assert tracker.inflight_count() == 2

    tracker.note_emitted([11, 12, 999], 2.5)  # unknown eids are ignored
    assert tracker.inflight_count() == 0
    state = registry.snapshot_state()["histograms"]
    assert state["repro_emit_hold_seconds"]["count"] == 2
    # Only the frame that carried a client span gets an e2e observation.
    assert state["repro_emit_e2e_seconds"]["count"] == 1


def test_inflight_map_is_bounded_fifo():
    tracker = SpanTracker(MetricsRegistry(), inflight_limit=4)
    for eid in range(10):
        tracker.note_frame("s1", "admitted", 1.0, 1.0, 1.0, eid=eid)
    assert tracker.inflight_count() == 4
    tracker.note_emitted(list(range(10)), 2.0)
    assert tracker.inflight_count() == 0


def test_cohort_ring_is_bounded():
    tracker = SpanTracker(MetricsRegistry(), cohort_limit=3)
    for i in range(7):
        tracker.open_cohort(float(i))
        tracker.note_frame("s1", "admitted", i + 0.1, i + 0.2, i + 0.3)
        tracker.seal_cohort(i + 0.4, i + 0.5, i + 0.6)
    assert tracker.sealed_cohorts == 7
    assert len(tracker.cohorts) == 3
    assert tracker.cohorts[0]["t_receipt"] == 4.0


def test_source_lag_panel_gauges():
    registry = MetricsRegistry()
    panel = SourceLagPanel(registry)
    panel.update({"a": 40, "b": 25}, {"a": False, "b": True}, merged=25)
    text = render_prometheus(registry)
    samples = parse_prometheus(text)
    assert samples['repro_source_watermark{source="a"}'] == 40
    assert samples['repro_source_lag{source="a"}'] == 0
    assert samples['repro_source_lag{source="b"}'] == 15
    assert samples['repro_source_fenced{source="b"}'] == 1
    assert samples["repro_gateway_merged_watermark"] == 25
    # HELP/TYPE are emitted once per base name, not per labelled child.
    assert text.count("# TYPE repro_source_lag gauge") == 1

    # Refreshing reuses the registered gauges (no duplicate-name error).
    panel.update({"a": 41, "b": 41}, {"a": False, "b": False}, merged=41)
    samples = parse_prometheus(render_prometheus(registry))
    assert samples['repro_source_lag{source="b"}'] == 0
    assert samples['repro_source_fenced{source="b"}'] == 0
