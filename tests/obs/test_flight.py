"""Flight recorder: the ring, the dump round-trip, and stall verdicts."""

from __future__ import annotations

import json

from repro.obs.flight import (
    STALL_BACKPRESSURE,
    STALL_FENCED,
    STALL_NONE,
    STALL_REORDER_HOLD,
    STALL_WAL_SYNC,
    FlightRecorder,
    analyze_flight,
    load_flight,
    render_flight_lines,
)


def _steady(recorder, t0=0.0, n=20):
    """A healthy baseline: admissions, watermark moves, quick syncs."""
    for i in range(n):
        t = t0 + i
        recorder.note(t, "admit", "s1", value=i)
        recorder.note(t + 0.1, "watermark", value=i)
        recorder.note(t + 0.2, "sync", value=200)  # 0.2 ms commits


def test_ring_is_bounded_and_counts_drops():
    recorder = FlightRecorder(capacity=8)
    for i in range(20):
        recorder.note(float(i), "admit", "s1", value=i)
    assert len(recorder) == 8
    assert recorder.recorded == 20
    assert recorder.dropped == 12
    assert recorder.records()[0].value == 12  # oldest survivor


def test_dump_and_load_round_trip():
    recorder = FlightRecorder()
    recorder.note(1.0, "admit", "s1", value=5)
    recorder.note(2.0, "fence", "s2", detail="silent 3.0s")
    recorder.note(3.0, "crash", value=17)
    lines = recorder.dump_lines("crash", meta={"stream": "orders"})
    header = json.loads(lines[0])
    assert header["flight"] == 1
    assert header["reason"] == "crash"
    assert header["records"] == 3
    assert header["stream"] == "orders"

    parsed_header, records = load_flight("\n".join(lines))
    assert parsed_header == header
    assert [r.kind for r in records] == ["admit", "fence", "crash"]
    assert records[1].source == "s2"
    assert records[1].detail == "silent 3.0s"


def test_load_skips_torn_trailing_line_and_blank_lines():
    recorder = FlightRecorder()
    recorder.note(1.0, "admit", "s1")
    text = "\n" + "\n".join(recorder.dump_lines("sigterm")) + '\n{"t": 2.0, "ki'
    header, records = load_flight(text)
    assert header["reason"] == "sigterm"
    assert len(records) == 1


def test_verdict_backpressure_wins():
    recorder = FlightRecorder()
    _steady(recorder)
    # Busy refusals in the final quarter beat everything else.
    recorder.note(19.5, "fence", "s2")
    recorder.note(19.6, "busy", "s1", value=9700)
    header, records = load_flight("\n".join(recorder.dump_lines("crash")))
    report = analyze_flight(header, records)
    assert report.verdict == STALL_BACKPRESSURE
    assert "0.97" in report.cause


def test_verdict_fenced_source_with_stalled_watermark():
    recorder = FlightRecorder()
    _steady(recorder, n=10)
    recorder.note(12.0, "fence", "s2")
    recorder.note(13.0, "sync", value=180)  # watermark never moves again
    header, records = load_flight("\n".join(recorder.dump_lines("sigterm")))
    report = analyze_flight(header, records)
    assert report.verdict == STALL_FENCED
    assert "s2" in report.cause


def test_unfence_clears_the_fence_verdict():
    recorder = FlightRecorder()
    _steady(recorder, n=10)
    recorder.note(3.0, "fence", "s2")
    recorder.note(4.0, "unfence", "s2")
    header, records = load_flight("\n".join(recorder.dump_lines("manual")))
    report = analyze_flight(header, records)
    assert report.verdict != STALL_FENCED


def test_verdict_slow_wal_sync():
    recorder = FlightRecorder()
    _steady(recorder)
    recorder.note(19.9, "sync", value=80_000)  # 80 ms against a 0.2 ms median
    header, records = load_flight("\n".join(recorder.dump_lines("crash")))
    report = analyze_flight(header, records)
    assert report.verdict == STALL_WAL_SYNC
    assert "80.0 ms" in report.cause


def test_verdict_reorder_hold():
    recorder = FlightRecorder()
    _steady(recorder)
    recorder.note(19.9, "hold", value=12, detail="134")
    header, records = load_flight("\n".join(recorder.dump_lines("crash")))
    report = analyze_flight(header, records)
    assert report.verdict == STALL_REORDER_HOLD
    assert "12" in report.cause and "134" in report.cause


def test_verdict_none_apparent_on_healthy_tail():
    recorder = FlightRecorder()
    _steady(recorder)
    header, records = load_flight("\n".join(recorder.dump_lines("sigterm")))
    report = analyze_flight(header, records)
    assert report.verdict == STALL_NONE


def test_empty_recording():
    header, records = load_flight("")
    report = analyze_flight(header, records)
    assert report.verdict == STALL_NONE
    assert report.records == 0


def test_render_lines_name_the_stall_and_sources():
    recorder = FlightRecorder()
    _steady(recorder, n=5)
    recorder.note(6.0, "fence", "s1")
    header, records = load_flight("\n".join(recorder.dump_lines("crash")))
    lines = render_flight_lines(header, records)
    assert lines[0].startswith("flight recording:")
    assert any("source 's1'" in line for line in lines)
    assert lines[-1].startswith("proximate stall:")


def test_timelines_are_per_source_and_bounded():
    recorder = FlightRecorder()
    for i in range(50):
        recorder.note(float(i), "admit", "s%d" % (i % 2))
    header, records = load_flight("\n".join(recorder.dump_lines("manual")))
    report = analyze_flight(header, records, last=5)
    assert sorted(report.timelines) == ["s0", "s1"]
    assert all(len(entries) == 5 for entries in report.timelines.values())
    # Oldest-first within each timeline.
    for entries in report.timelines.values():
        assert [r.t for r in entries] == sorted(r.t for r in entries)
