"""Metrics across subsystem boundaries: checkpoints, crash recovery,
parallel workers, the bench harness, and the CLI exporters."""

from __future__ import annotations

import json
import random

import pytest

from repro.bench import make_engine, run_cell
from repro.cli import main
from repro.core.engine import OutOfOrderEngine
from repro.core.event import Event
from repro.core.partition import ParallelPartitionedEngine
from repro.core.parser import parse
from repro.core.recovery import ResilientRunner
from repro.faultinject import CrashError, FaultInjector
from repro.obs.export import parse_prometheus, read_metrics_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.streams import dump_trace

QUERY = "PATTERN SEQ(A a, B b, C c) WHERE a.x == c.x WITHIN 30"
PART_QUERY = (
    "PATTERN SEQ(A a, B b) WHERE a.part == b.part AND a.x < b.x WITHIN 20"
)


def _trace(count=200, seed=9, types="ABC", parted=False):
    rng = random.Random(seed)
    events = []
    for ts in range(1, count + 1):
        attrs = {"x": rng.randint(0, 3)}
        if parted:
            attrs["part"] = rng.randint(0, 3)
        events.append(Event(rng.choice(types), ts, attrs))
    keyed = [(e.ts + rng.randint(0, 4), i, e) for i, e in enumerate(events)]
    keyed.sort()
    return [e for __, __, e in keyed]


# -- snapshot / restore ----------------------------------------------------------


def test_engine_snapshot_carries_registry_state():
    pattern = parse(QUERY)
    engine = OutOfOrderEngine(pattern, k=5)
    registry = MetricsRegistry()
    engine.enable_observability(metrics=registry)
    arrival = _trace()
    for element in arrival[:100]:
        engine.feed(element)
    state = engine.snapshot()
    mid_value = registry.get("repro_events_total").value
    assert mid_value == 100

    for element in arrival[100:]:
        engine.feed(element)
    assert registry.get("repro_events_total").value == 200

    engine.restore(state)
    # Restore rewinds the SAME handle the engine registered.
    assert registry.get("repro_events_total").value == mid_value


def test_restored_engine_produces_same_metrics_as_straight_run():
    pattern = parse(QUERY)
    arrival = _trace()

    straight = OutOfOrderEngine(pattern, k=5)
    reg_straight = MetricsRegistry()
    straight.enable_observability(metrics=reg_straight)
    for element in arrival:
        straight.feed(element)
    straight.close()

    half = OutOfOrderEngine(pattern, k=5)
    reg_half = MetricsRegistry()
    half.enable_observability(metrics=reg_half)
    for element in arrival[:100]:
        half.feed(element)
    state = half.snapshot()

    resumed = OutOfOrderEngine(pattern, k=5)
    reg_resumed = MetricsRegistry()
    resumed.enable_observability(metrics=reg_resumed)
    resumed.restore(state)
    for element in arrival[100:]:
        resumed.feed(element)
    resumed.close()

    assert reg_resumed.snapshot_state() == reg_straight.snapshot_state()


# -- crash recovery --------------------------------------------------------------


def test_metrics_survive_crash_recovery(tmp_path):
    pattern = parse(QUERY)
    arrival = _trace()

    def build():
        engine = OutOfOrderEngine(pattern, k=5)
        engine.enable_observability(metrics=MetricsRegistry())
        return engine

    fault = FaultInjector(crash_at=[120])
    first = ResilientRunner(build(), tmp_path, checkpoint_every=25, fault=fault)
    with pytest.raises(CrashError):
        first.run(arrival)

    engine = build()
    registry = engine.observability.registry
    second = ResilientRunner(engine, tmp_path, checkpoint_every=25)
    second.run(arrival)

    # Flow metrics cover the WHOLE logical stream, not just post-crash.
    assert registry.get("repro_events_total").value == len(arrival)
    assert registry.get("repro_runner_recoveries_total").value == 1
    assert registry.get("repro_runner_replayed_total").value == second.replayed_elements

    # And they equal an uninterrupted instrumented run's flow counters.
    reference = OutOfOrderEngine(pattern, k=5)
    ref_registry = MetricsRegistry()
    reference.enable_observability(metrics=ref_registry)
    for element in arrival:
        reference.feed(element)
    reference.close()
    ref_state = ref_registry.snapshot_state()
    got_state = registry.snapshot_state()
    assert got_state["histograms"] == ref_state["histograms"]
    for name, payload in ref_state["counters"].items():
        assert got_state["counters"][name] == payload


# -- parallel workers ------------------------------------------------------------


def test_parallel_worker_metrics_merge_deterministically():
    pattern = parse(PART_QUERY)
    arrival = _trace(count=300, seed=17, types="AB", parted=True)

    def run_once():
        engine = ParallelPartitionedEngine(pattern, k=4, workers=3)
        registry = MetricsRegistry()
        engine.enable_observability(metrics=registry)
        for element in arrival:
            engine.feed(element)
        engine.close()
        return engine, registry

    first_engine, first = run_once()
    __, second = run_once()
    assert first.snapshot_state() == second.snapshot_state()
    # Worker metrics are namespaced; totals reconcile with the router's.
    assert first.get("repro_worker_matches_total").value == len(first_engine.results)
    assert first.get("repro_worker_events_total").value <= len(arrival)
    assert first.get("repro_events_total").value == len(arrival)


# -- bench harness ---------------------------------------------------------------


def test_run_cell_metrics_option_adds_histogram_summaries():
    pattern = parse(QUERY)
    arrival = _trace()
    cell = run_cell(make_engine("ooo", pattern, k=5), arrival, metrics=True)
    assert "lat_hist_p50" in cell and "lat_hist_p99" in cell
    assert cell["metrics"]["counters"]["repro_events_total"]["value"] == len(arrival)
    plain = run_cell(make_engine("ooo", pattern, k=5), arrival)
    assert "metrics" not in plain
    assert plain["matches"] == cell["matches"]


# -- CLI -------------------------------------------------------------------------


class TestCliMetricsOut:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_trace(_trace(), path)
        return str(path)

    def test_prometheus_and_jsonl_round_trip(self, tmp_path, trace_path):
        out = tmp_path / "metrics.jsonl"
        code = main(
            ["run", "--query", QUERY, "--trace", trace_path, "--k", "5",
             "--metrics-out", str(out), "--metrics-every", "50"]
        )
        assert code == 0

        records = read_metrics_jsonl(out.read_text())
        # The final boundary lands exactly on the cadence: the close-time
        # snapshot replaces the periodic one (no duplicate seq 200), and
        # it is the post-seal registry.
        assert [r["seq"] for r in records] == [50, 100, 150, 200]
        # Each line's payload feeds restore_state; the registry then
        # snapshots back to exactly the recorded dict.
        for record in records:
            registry = MetricsRegistry()
            registry.restore_state(record["metrics"])
            assert registry.snapshot_state() == record["metrics"]
            assert json.loads(json.dumps(record["metrics"])) == record["metrics"]

        samples = parse_prometheus((tmp_path / "metrics.jsonl.prom").read_text())
        assert samples["repro_events_total"] == 200
        final = records[-1]["metrics"]["counters"]["repro_matches_total"]["value"]
        assert samples["repro_matches_total"] == final

    def test_partial_final_interval_is_flushed(self, tmp_path):
        """A trace length off the cadence still ends with a snapshot."""
        path = tmp_path / "trace.jsonl"
        dump_trace(_trace(count=130), path)
        out = tmp_path / "metrics.jsonl"
        code = main(
            ["run", "--query", QUERY, "--trace", str(path), "--k", "5",
             "--metrics-out", str(out), "--metrics-every", "50"]
        )
        assert code == 0
        records = read_metrics_jsonl(out.read_text())
        assert [r["seq"] for r in records] == [50, 100, 130]
        assert records[-1]["metrics"]["counters"]["repro_events_total"]["value"] == 130

    def test_final_only_snapshot_without_every(self, tmp_path, trace_path):
        out = tmp_path / "final.jsonl"
        code = main(
            ["run", "--query", QUERY, "--trace", trace_path, "--k", "5",
             "--metrics-out", str(out)]
        )
        assert code == 0
        records = read_metrics_jsonl(out.read_text())
        assert len(records) == 1
        assert records[0]["metrics"]["counters"]["repro_events_total"]["value"] == 200

    def test_resilient_run_with_metrics(self, tmp_path, trace_path):
        out = tmp_path / "resilient.jsonl"
        code = main(
            ["run", "--query", QUERY, "--trace", trace_path, "--k", "5",
             "--checkpoint-every", "40", "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--crash-at", "100", "--metrics-out", str(out)]
        )
        assert code == 0
        records = read_metrics_jsonl(out.read_text())
        counters = records[-1]["metrics"]["counters"]
        assert counters["repro_events_total"]["value"] == 200
        assert counters["repro_runner_recoveries_total"]["value"] == 1
