"""Metrics primitives: registration, histograms, snapshot/restore, merge."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
)


def test_counter_and_gauge_basics():
    counter = Counter("c", "help")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = Gauge("g")
    gauge.set(7)
    gauge.set(3)
    assert gauge.value == 3


def test_registration_is_idempotent_and_returns_the_same_object():
    registry = MetricsRegistry()
    first = registry.counter("repro_x", "help text")
    second = registry.counter("repro_x")
    assert first is second
    assert registry.get("repro_x") is first
    assert "repro_x" in registry
    assert len(registry) == 1


def test_kind_collision_raises():
    registry = MetricsRegistry()
    registry.counter("repro_x")
    with pytest.raises(ConfigurationError):
        registry.gauge("repro_x")


def test_histogram_bucket_layout_collision_raises():
    registry = MetricsRegistry()
    registry.histogram("repro_h", buckets=(1, 2, 3))
    with pytest.raises(ConfigurationError):
        registry.histogram("repro_h", buckets=(1, 2, 4))


def test_histogram_buckets_must_be_ascending():
    with pytest.raises(ConfigurationError):
        Histogram("h", buckets=(5, 2))
    with pytest.raises(ConfigurationError):
        Histogram("h", buckets=())


def test_histogram_le_semantics_and_overflow():
    histogram = Histogram("h", buckets=(1, 5, 10))
    for value in (0, 1, 2, 5, 9, 10, 11, 1000):
        histogram.observe(value)
    # counts: <=1 {0,1}, <=5 {2,5}, <=10 {9,10}, +Inf {11,1000}
    assert histogram.counts == [2, 2, 2, 2]
    assert histogram.count == 8
    assert histogram.total == sum((0, 1, 2, 5, 9, 10, 11, 1000))


def test_histogram_quantiles_report_bucket_upper_bounds():
    histogram = Histogram("h", buckets=(1, 5, 10))
    for value in (0, 0, 2, 3, 7):
        histogram.observe(value)
    assert histogram.quantile(0.5) == 5.0  # 3rd of 5 ranked obs is in <=5
    assert histogram.quantile(0.0) == 1.0
    assert histogram.quantile(1.0) == 10.0
    histogram.observe(99)  # overflow
    assert histogram.quantile(1.0) == float("inf")
    assert Histogram("empty", buckets=(1,)).quantile(0.9) == 0.0


def test_histogram_summary_keys():
    histogram = Histogram("h", buckets=(1, 5, 10))
    histogram.observe(3)
    summary = histogram.summary()
    assert set(summary) == {"count", "mean", "p50", "p90", "p99"}
    assert summary["count"] == 1
    assert summary["mean"] == 3.0


def test_histogram_merge_requires_identical_bounds():
    left = Histogram("h", buckets=(1, 2))
    right = Histogram("h", buckets=(1, 2))
    left.observe(1)
    right.observe(2)
    right.observe(50)
    left.merge(right)
    assert left.count == 3
    assert left.counts == [1, 1, 1]
    with pytest.raises(ConfigurationError):
        left.merge(Histogram("h", buckets=(1, 3)))


def test_snapshot_state_is_json_round_trippable():
    registry = MetricsRegistry()
    registry.counter("repro_c", "a counter").inc(3)
    registry.gauge("repro_g", "a gauge").set(9)
    registry.histogram("repro_h", "a histogram", buckets=(1, 2)).observe(2)
    state = registry.snapshot_state()
    assert json.loads(json.dumps(state)) == state
    assert state["counters"]["repro_c"]["value"] == 3
    assert state["histograms"]["repro_h"]["counts"] == [0, 1, 0]


def test_restore_state_mutates_live_handles_in_place():
    registry = MetricsRegistry()
    counter = registry.counter("repro_c")
    histogram = registry.histogram("repro_h", buckets=(1, 2))
    counter.inc(2)
    histogram.observe(1)
    state = registry.snapshot_state()
    counter.inc(10)
    histogram.observe(2)
    registry.restore_state(state)
    # The objects registered before the snapshot are the ones restored.
    assert counter.value == 2
    assert histogram.count == 1
    assert registry.get("repro_c") is counter


def test_restore_state_creates_missing_and_zeroes_absent():
    registry = MetricsRegistry()
    stale = registry.counter("repro_stale")
    stale.inc(5)
    registry.restore_state(
        {"counters": {"repro_new": {"help": "h", "value": 4}}, "gauges": {}, "histograms": {}}
    )
    assert registry.get("repro_new").value == 4
    assert stale.value == 0


def test_merge_state_adds_counters_and_max_merges_gauges():
    registry = MetricsRegistry()
    registry.counter("repro_c").inc(1)
    registry.gauge("repro_g").set(5)
    registry.histogram("repro_h", buckets=LATENCY_BUCKETS).observe(3)

    incoming = MetricsRegistry()
    incoming.counter("repro_c").inc(2)
    incoming.gauge("repro_g").set(3)
    incoming.histogram("repro_h", buckets=LATENCY_BUCKETS).observe(7)

    registry.merge_state(incoming.snapshot_state())
    assert registry.get("repro_c").value == 3
    assert registry.get("repro_g").value == 5  # max, not sum
    assert registry.get("repro_h").count == 2


def test_merge_state_rename_prefixes_incoming_names():
    registry = MetricsRegistry()
    incoming = MetricsRegistry()
    incoming.counter("repro_events_total").inc(7)
    registry.merge_state(
        incoming.snapshot_state(),
        rename=lambda name: name.replace("repro_", "repro_worker_", 1),
    )
    assert registry.get("repro_worker_events_total").value == 7
    assert registry.get("repro_events_total") is None
