"""`repro explain`: lifecycle reconstruction for emitted and missing matches.

The acceptance scenario: a trace whose disorder exceeds the configured K
produces late drops, so the engine misses oracle matches; ``explain``
must reconstruct the lifecycle of at least one emitted match AND one
oracle-only (missing) match, naming the proximate cause of the miss.
"""

from __future__ import annotations

import random

import pytest

from repro.cli import main
from repro.core.engine import OutOfOrderEngine
from repro.core.event import Event
from repro.core.parser import parse
from repro.obs import explain as explain_mod
from repro.obs import trace as stages
from repro.streams import dump_trace

QUERY = "PATTERN SEQ(A a, B b, C c) WHERE a.x == c.x WITHIN 30"


def _lossy_arrival():
    """A trace with more disorder than K=2 tolerates: some late drops."""
    rng = random.Random(42)
    events = [
        Event(rng.choice("ABC"), ts, {"x": rng.randint(0, 2)})
        for ts in range(1, 161)
    ]
    keyed = [(e.ts + rng.randint(0, 12), i, e) for i, e in enumerate(events)]
    keyed.sort()
    return [e for __, __, e in keyed]


@pytest.fixture(scope="module")
def replayed():
    pattern = parse(QUERY)
    arrival = _lossy_arrival()
    engine = OutOfOrderEngine(pattern, k=2)
    tracer = explain_mod.replay_with_tracing(engine, arrival)
    return pattern, arrival, engine, tracer


def test_scenario_has_both_emitted_and_missing(replayed):
    pattern, arrival, engine, __ = replayed
    missing, total = explain_mod.missing_matches(pattern, arrival, engine)
    assert engine.results, "scenario must emit at least one match"
    assert missing, "scenario must miss at least one oracle match"
    # The oracle total accounts for both the hits and the misses.
    assert total == len(missing) + len(engine.result_set())


def test_emitted_match_lifecycle_is_complete(replayed):
    __, __, engine, tracer = replayed
    match = explain_mod.emitted_matches(engine)[0]
    text = explain_mod.explain_match(tracer, match)
    assert "emitted match" in text
    for event in match.events:
        # Every contributing event's lifecycle starts with admission and
        # includes its participation in this match.
        spans = tracer.spans_for(event.eid)
        assert spans[0].stage == stages.ADMITTED
        assert any(s.stage == stages.MATCH_EMITTED for s in spans)
        assert f"eid {event.eid}" in text or f"(eid {event.eid})" in text


def test_missing_match_names_a_proximate_cause(replayed):
    pattern, arrival, engine, tracer = replayed
    missing, __ = explain_mod.missing_matches(pattern, arrival, engine)
    causes = set()
    for match in missing:
        text = explain_mod.explain_missing(tracer, match)
        assert "missing match" in text
        for event in match.events:
            causes.add(explain_mod.diagnose(tracer, event.eid).split(" ")[0])
    # At least one miss must be attributed to a concrete terminal stage.
    assert causes & {stages.LATE_DROPPED, stages.PURGED, stages.SHED}


def test_match_filter_by_contributing_eids(replayed):
    __, __, engine, tracer = replayed
    match = explain_mod.emitted_matches(engine)[0]
    eids = [event.eid for event in match.events]
    filtered = explain_mod.emitted_matches(engine, eids)
    assert match.key() in {m.key() for m in filtered}
    assert explain_mod.emitted_matches(engine, [10**9]) == []


def test_missing_matches_order_is_deterministic(replayed):
    pattern, arrival, engine, __ = replayed
    first, __ = explain_mod.missing_matches(pattern, arrival, engine)
    second, __ = explain_mod.missing_matches(pattern, arrival, engine)
    assert [m.key() for m in first] == [m.key() for m in second]


def test_overflowed_ring_is_reported():
    pattern = parse(QUERY)
    arrival = _lossy_arrival()
    engine = OutOfOrderEngine(pattern, k=2)
    tracer = explain_mod.replay_with_tracing(engine, arrival, capacity=8)
    assert tracer.overflowed()
    lines = explain_mod.summary_lines(tracer)
    assert any("overflow" in line for line in lines)


class TestExplainCli:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = tmp_path / "lossy.jsonl"
        dump_trace(_lossy_arrival(), path)
        return str(path)

    def test_missing_mode_prints_lifecycles(self, trace_path, capsys):
        code = main(
            ["explain", "--query", QUERY, "--trace", trace_path,
             "--k", "2", "--missing", "--limit", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine missed" in out
        assert "missing match" in out
        assert stages.LATE_DROPPED in out or stages.PURGED in out

    def test_match_mode_explains_named_eids(self, trace_path, capsys):
        pattern = parse(QUERY)
        engine = OutOfOrderEngine(pattern, k=2)
        from repro.streams import load_trace

        arrival = load_trace(trace_path)
        for element in arrival:
            engine.feed(element)
        engine.close()
        target = engine.results[0]
        eids = ",".join(str(event.eid) for event in target.events)
        code = main(
            ["explain", "--query", QUERY, "--trace", trace_path,
             "--k", "2", "--match", eids, "--limit", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "emitted match" in out
        assert stages.ADMITTED in out

    def test_unknown_eids_exit_nonzero(self, trace_path, capsys):
        code = main(
            ["explain", "--query", QUERY, "--trace", trace_path,
             "--k", "2", "--match", "999999"]
        )
        assert code == 1
        assert "no emitted match" in capsys.readouterr().out

    def test_default_mode_explains_first_emitted(self, trace_path, capsys):
        code = main(
            ["explain", "--query", QUERY, "--trace", trace_path, "--k", "2",
             "--limit", "1"]
        )
        assert code == 0
        assert "emitted match" in capsys.readouterr().out


class TestRetractionDiagnosis:
    def test_retracted_is_the_proximate_cause(self):
        # A1 C3 speculates, the late B2 retracts it at seal: for a
        # missing-match question the retraction IS the answer, not
        # whatever the events did earlier in their lifecycle.
        pattern = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x "
            "WITHIN 20"
        )
        engine = OutOfOrderEngine(pattern, k=6, speculative=True)
        arrival = [
            Event("A", 1, {"x": 0}),
            Event("C", 3, {"x": 0}),
            Event("B", 2, {"x": 0}),
        ]
        tracer = explain_mod.replay_with_tracing(engine, arrival)
        assert engine.results == []
        a_eid = arrival[0].eid
        cause = explain_mod.diagnose(tracer, a_eid)
        assert cause.startswith("retracted")
        assert "negation-violated" in cause

    def test_open_speculation_is_reported_not_terminal(self):
        pattern = parse("PATTERN SEQ(A a, !B b, C c) WITHIN 20")
        engine = OutOfOrderEngine(pattern, k=50, speculative=True)
        arrival = [Event("A", 1), Event("C", 3)]
        tracer = explain_mod.Tracer(4096)
        engine.enable_observability(tracer=tracer)
        for event in arrival:
            engine.feed(event)
        # No close(): the bracket stays unsealed, the record stays open.
        cause = explain_mod.diagnose(tracer, arrival[0].eid)
        assert cause == "participated in a speculative match (not yet sealed)"
