"""Tracer unit tests: span ids, ring bounds, stream tags."""

from __future__ import annotations

import pytest

from repro.obs import trace as stages
from repro.obs.trace import NullTracer, Span, Tracer


def test_span_ids_derive_from_arrival_and_sub_index():
    tracer = Tracer(capacity=16)
    first = tracer.record(0, stages.ADMITTED, eid=1, ts=5, etype="A")
    second = tracer.record(0, stages.MATCH_EMITTED, eid=1, ts=5, etype="A")
    third = tracer.record(1, stages.IGNORED, eid=2, ts=6, etype="B")
    assert [s.span_id for s in (first, second, third)] == ["0.0", "0.1", "1.0"]


def test_span_ids_are_deterministic_across_replays():
    def run():
        tracer = Tracer(capacity=64)
        for arrival in range(5):
            tracer.record(arrival, stages.ADMITTED, eid=arrival)
            tracer.record(arrival, stages.PURGED, eid=arrival)
        return [s.span_id for s in tracer.spans()]

    assert run() == run()


def test_stream_tag_prefixes_and_isolates_sub_counters():
    tracer = Tracer(capacity=32)
    tracer.record(5, stages.BUFFERED, eid=1, stream="")
    tracer.record(3, stages.ADMITTED, eid=1, stream="inner")
    # Back to the outer stream on the SAME arrival: the sub counter must
    # continue, not reset — interleaved layers share one tracer.
    span = tracer.record(5, stages.RELEASED, eid=1, stream="")
    assert span.span_id == "5.1"
    inner = [s for s in tracer.spans() if s.stream == "inner"]
    assert [s.span_id for s in inner] == ["inner:3.0"]
    ids = [s.span_id for s in tracer.spans()]
    assert len(ids) == len(set(ids))


def test_recorded_for_tracks_per_stream():
    tracer = Tracer(capacity=8)
    tracer.record(4, stages.ADMITTED, eid=1)
    assert tracer.recorded_for(4)
    assert not tracer.recorded_for(4, stream="inner")
    assert not tracer.recorded_for(3)


def test_ring_buffer_bounds_retention_and_reports_overflow():
    tracer = Tracer(capacity=4)
    for arrival in range(10):
        tracer.record(arrival, stages.ADMITTED, eid=arrival)
    assert len(tracer) == 4
    assert tracer.recorded == 10
    assert tracer.overflowed()
    # Oldest spans fell off the front; the newest four remain.
    assert [s.arrival for s in tracer.spans()] == [6, 7, 8, 9]


def test_spans_for_filters_by_eid_in_record_order():
    tracer = Tracer(capacity=16)
    tracer.record(0, stages.ADMITTED, eid=7)
    tracer.record(1, stages.ADMITTED, eid=8)
    tracer.record(2, stages.MATCH_EMITTED, eid=7)
    assert [s.stage for s in tracer.spans_for(7)] == [
        stages.ADMITTED,
        stages.MATCH_EMITTED,
    ]
    assert tracer.spans_for(99) == []


def test_stage_counts_and_clear():
    tracer = Tracer(capacity=16)
    tracer.record(0, stages.ADMITTED, eid=1)
    tracer.record(1, stages.ADMITTED, eid=2)
    tracer.record(2, stages.PURGED, eid=1)
    assert tracer.stage_counts() == {stages.ADMITTED: 2, stages.PURGED: 1}
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.stage_counts() == {}
    # Sub counters reset too: the next record restarts at .0.
    assert tracer.record(2, stages.ADMITTED, eid=1).span_id == "2.0"


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_null_tracer_is_inert():
    tracer = NullTracer()
    assert tracer.enabled is False
    tracer.record(0, stages.ADMITTED, eid=1, detail="ignored")
    assert tracer.spans() == []
    assert tracer.spans_for(1) == []
    assert len(tracer) == 0


def test_span_as_dict_round_trips_fields():
    span = Span("3.1", 3, stages.SHED, eid=9, ts=40, etype="A", detail="why", stream="inner")
    payload = span.as_dict()
    assert payload == {
        "span_id": "3.1",
        "arrival": 3,
        "stage": stages.SHED,
        "eid": 9,
        "ts": 40,
        "etype": "A",
        "detail": "why",
        "stream": "inner",
    }
