"""Exporter tests: Prometheus exposition and JSON-lines round-trips."""

from __future__ import annotations

import io
import random

import pytest

from repro.obs.export import (
    MetricsJsonWriter,
    parse_help_lines,
    parse_prometheus,
    parse_sample_line,
    read_metrics_jsonl,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry, format_sample_name


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_events_total", "events fed").inc(42)
    registry.gauge("repro_state_size_now", "retained state").set(7)
    histogram = registry.histogram("repro_latency", "latency", buckets=(1, 5, 10))
    for value in (0, 2, 6, 11):
        histogram.observe(value)
    return registry


def test_prometheus_exposition_structure():
    text = render_prometheus(_populated_registry())
    lines = text.splitlines()
    assert "# HELP repro_events_total events fed" in lines
    assert "# TYPE repro_events_total counter" in lines
    assert "# TYPE repro_state_size_now gauge" in lines
    assert "# TYPE repro_latency histogram" in lines
    # Cumulative buckets, ending at +Inf == _count.
    assert 'repro_latency_bucket{le="1"} 1' in lines
    assert 'repro_latency_bucket{le="5"} 2' in lines
    assert 'repro_latency_bucket{le="10"} 3' in lines
    assert 'repro_latency_bucket{le="+Inf"} 4' in lines
    assert "repro_latency_sum 19" in lines
    assert "repro_latency_count 4" in lines
    assert text.endswith("\n")


def test_prometheus_parse_round_trip():
    registry = _populated_registry()
    samples = parse_prometheus(render_prometheus(registry))
    assert samples["repro_events_total"] == 42
    assert samples["repro_state_size_now"] == 7
    assert samples['repro_latency_bucket{le="+Inf"}'] == 4
    assert samples["repro_latency_count"] == 4


def test_prometheus_help_escaping():
    registry = MetricsRegistry()
    registry.counter("repro_c", "line one\nback\\slash").inc()
    text = render_prometheus(registry)
    assert "# HELP repro_c line one\\nback\\\\slash" in text.splitlines()
    assert parse_prometheus(text)["repro_c"] == 1


def test_parse_prometheus_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_prometheus("justonetoken\n")


def test_json_writer_lines_restore_into_a_registry():
    registry = _populated_registry()
    sink = io.StringIO()
    writer = MetricsJsonWriter(sink)
    writer.write(100, registry)
    registry.get("repro_events_total").inc(8)
    writer.write(200, registry)
    assert writer.written == 2

    records = read_metrics_jsonl(sink.getvalue())
    assert [record["seq"] for record in records] == [100, 200]

    # Round-trip: restoring the first snapshot rewinds the live registry.
    registry.restore_state(records[0]["metrics"])
    assert registry.get("repro_events_total").value == 42
    # And the final snapshot restores into a brand-new registry.
    fresh = MetricsRegistry()
    fresh.restore_state(records[1]["metrics"])
    assert fresh.get("repro_events_total").value == 50
    assert fresh.get("repro_latency").count == 4
    assert fresh.snapshot_state() == records[1]["metrics"]


# -- escaping round-trip property --------------------------------------------------


#: Characters exposition escaping must survive: backslashes, quotes,
#: newlines, spaces, braces, commas, equals — alone and adjacent.
_NASTY_FRAGMENTS = [
    "\\", '"', "\n", " ", "{", "}", ",", "=", "\\n", '\\"', "\\\\",
    'a"b', "tail\\", "\nlead", 'mix\\"\n, ok=1}',
]


def _random_nasty(rng: random.Random) -> str:
    return "".join(
        rng.choice(_NASTY_FRAGMENTS + ["plain", "x1", "µ"])
        for _ in range(rng.randint(1, 5))
    )


def test_sample_line_round_trips_nasty_label_values():
    rng = random.Random(20260808)
    for trial in range(200):
        labels = {
            f"l{i}": _random_nasty(rng) for i in range(rng.randint(1, 3))
        }
        registry = MetricsRegistry()
        counter = registry.counter("repro_nasty_total", "n", labels=labels)
        counter.inc(trial + 1)
        line = [
            ln for ln in render_prometheus(registry).splitlines()
            if ln and not ln.startswith("#")
        ][0]
        name, parsed, value = parse_sample_line(line)
        assert name == "repro_nasty_total"
        assert dict(parsed) == labels, f"trial {trial}: {line!r}"
        assert value == trial + 1


def test_parse_prometheus_keys_are_canonical_for_nasty_labels():
    rng = random.Random(7)
    registry = MetricsRegistry()
    expected = {}
    for i in range(30):
        labels = {"v": _random_nasty(rng)}
        gauge = registry.gauge("repro_nasty_now", "g", labels=labels)
        gauge.set(i)
        expected[format_sample_name("repro_nasty_now", tuple(sorted(labels.items())))] = i
    samples = parse_prometheus(render_prometheus(registry))
    for key, value in expected.items():
        assert samples[key] == value


def test_help_text_round_trips_escapes():
    rng = random.Random(99)
    for __ in range(50):
        help_text = _random_nasty(rng)
        registry = MetricsRegistry()
        registry.counter("repro_h_total", help_text).inc()
        text = render_prometheus(registry)
        # One logical HELP line regardless of embedded newlines.
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP")]
        assert len(help_lines) == 1
        assert parse_help_lines(text)["repro_h_total"] == help_text


def test_labeled_histogram_renders_le_alongside_labels():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_stagey", "h", buckets=(1, 2), labels={"stage": "a b"}
    )
    histogram.observe(1.5)
    samples = parse_prometheus(render_prometheus(registry))
    # ``le`` is appended after the metric's own (sorted) labels.
    assert samples['repro_stagey_bucket{stage="a b",le="2"}'] == 1
    assert samples['repro_stagey_bucket{stage="a b",le="+Inf"}'] == 1
    assert samples['repro_stagey_count{stage="a b"}'] == 1


def test_parse_sample_line_rejects_malformed():
    for bad in (
        "",
        "{}",
        'name{x="unterminated} 1',
        'name{x="v"',
        'name{x=unquoted} 1',
        'name{x="v"} ',
        'name{x="dangling\\',
    ):
        with pytest.raises(ValueError):
            parse_sample_line(bad)
