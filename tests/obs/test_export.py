"""Exporter tests: Prometheus exposition and JSON-lines round-trips."""

from __future__ import annotations

import io

import pytest

from repro.obs.export import (
    MetricsJsonWriter,
    parse_prometheus,
    read_metrics_jsonl,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_events_total", "events fed").inc(42)
    registry.gauge("repro_state_size_now", "retained state").set(7)
    histogram = registry.histogram("repro_latency", "latency", buckets=(1, 5, 10))
    for value in (0, 2, 6, 11):
        histogram.observe(value)
    return registry


def test_prometheus_exposition_structure():
    text = render_prometheus(_populated_registry())
    lines = text.splitlines()
    assert "# HELP repro_events_total events fed" in lines
    assert "# TYPE repro_events_total counter" in lines
    assert "# TYPE repro_state_size_now gauge" in lines
    assert "# TYPE repro_latency histogram" in lines
    # Cumulative buckets, ending at +Inf == _count.
    assert 'repro_latency_bucket{le="1"} 1' in lines
    assert 'repro_latency_bucket{le="5"} 2' in lines
    assert 'repro_latency_bucket{le="10"} 3' in lines
    assert 'repro_latency_bucket{le="+Inf"} 4' in lines
    assert "repro_latency_sum 19" in lines
    assert "repro_latency_count 4" in lines
    assert text.endswith("\n")


def test_prometheus_parse_round_trip():
    registry = _populated_registry()
    samples = parse_prometheus(render_prometheus(registry))
    assert samples["repro_events_total"] == 42
    assert samples["repro_state_size_now"] == 7
    assert samples['repro_latency_bucket{le="+Inf"}'] == 4
    assert samples["repro_latency_count"] == 4


def test_prometheus_help_escaping():
    registry = MetricsRegistry()
    registry.counter("repro_c", "line one\nback\\slash").inc()
    text = render_prometheus(registry)
    assert "# HELP repro_c line one\\nback\\\\slash" in text.splitlines()
    assert parse_prometheus(text)["repro_c"] == 1


def test_parse_prometheus_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_prometheus("justonetoken\n")


def test_json_writer_lines_restore_into_a_registry():
    registry = _populated_registry()
    sink = io.StringIO()
    writer = MetricsJsonWriter(sink)
    writer.write(100, registry)
    registry.get("repro_events_total").inc(8)
    writer.write(200, registry)
    assert writer.written == 2

    records = read_metrics_jsonl(sink.getvalue())
    assert [record["seq"] for record in records] == [100, 200]

    # Round-trip: restoring the first snapshot rewinds the live registry.
    registry.restore_state(records[0]["metrics"])
    assert registry.get("repro_events_total").value == 42
    # And the final snapshot restores into a brand-new registry.
    fresh = MetricsRegistry()
    fresh.restore_state(records[1]["metrics"])
    assert fresh.get("repro_events_total").value == 50
    assert fresh.get("repro_latency").count == 4
    assert fresh.snapshot_state() == records[1]["metrics"]
