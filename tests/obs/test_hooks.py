"""Observability bundle tests: parity with the plain path, lifecycle
stages, and per-family metric registration.

The load-bearing invariant: attaching a tracer/registry must not change
WHAT the engine computes — results, emission order, and every counter in
``EngineStats`` stay byte-identical to an uninstrumented run.
"""

from __future__ import annotations

import pytest
from helpers import bounded_shuffle, make_events

from repro.core.aggressive import AggressiveEngine
from repro.core.engine import LatePolicy, OutOfOrderEngine, ValidationPolicy
from repro.core.event import Event, Punctuation
from repro.core.inorder import InOrderEngine
from repro.core.parser import parse
from repro.core.reorder import ReorderingEngine
from repro.core.shedding import ShedPolicy
from repro.faultinject import forge_event
from repro.obs import trace as stages
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _instrumented_pair(build, elements, batch=False):
    plain = build()
    if batch:
        plain.feed_batch(list(elements))
    else:
        for element in elements:
            plain.feed(element)
    plain.close()

    instrumented = build()
    tracer = Tracer(capacity=1 << 16)
    registry = MetricsRegistry()
    instrumented.enable_observability(tracer=tracer, metrics=registry)
    if batch:
        instrumented.feed_batch(list(elements))
    else:
        for element in elements:
            instrumented.feed(element)
    instrumented.close()
    return plain, instrumented, tracer, registry


def _assert_parity(plain, instrumented):
    assert [m.key() for m in plain.results] == [m.key() for m in instrumented.results]
    assert plain.stats.as_dict() == instrumented.stats.as_dict()


@pytest.mark.parametrize("batch", [False, True])
@pytest.mark.parametrize(
    "family",
    ["ooo", "inorder", "reorder", "aggressive"],
)
def test_instrumentation_changes_nothing(family, batch, abc_pattern, random_trace):
    arrival = bounded_shuffle(random_trace, k=8, seed=3)
    if family == "inorder":
        arrival = sorted(arrival, key=lambda e: (e.ts, e.eid))
    builders = {
        "ooo": lambda: OutOfOrderEngine(abc_pattern, k=8),
        "inorder": lambda: InOrderEngine(abc_pattern),
        "reorder": lambda: ReorderingEngine(abc_pattern, k=8),
        "aggressive": lambda: AggressiveEngine(abc_pattern, k=8),
    }
    plain, instrumented, tracer, registry = _instrumented_pair(
        builders[family], arrival, batch=batch
    )
    _assert_parity(plain, instrumented)
    assert tracer.recorded > 0
    assert registry.get("repro_events_total").value == len(arrival)
    assert registry.get("repro_matches_total").value == len(plain.results)


def test_admission_and_match_spans(abc_pattern):
    events = make_events("A1:0 B2:1 C3:0 D4:9")
    engine = OutOfOrderEngine(abc_pattern, k=0)
    tracer = Tracer()
    engine.enable_observability(tracer=tracer)
    for event in events:
        engine.feed(event)
    engine.close()
    assert len(engine.results) == 1
    a, b, c, d = events
    assert [s.stage for s in tracer.spans_for(a.eid)][0] == stages.ADMITTED
    assert stages.MATCH_EMITTED in [s.stage for s in tracer.spans_for(c.eid)]
    # D matches no step: ignored.
    assert [s.stage for s in tracer.spans_for(d.eid)] == [stages.IGNORED]


def test_predicate_rejection_is_attributed():
    pattern = parse("PATTERN SEQ(A a, B b) WHERE a.x > 5 WITHIN 10")
    engine = OutOfOrderEngine(pattern, k=0)
    tracer = Tracer()
    engine.enable_observability(tracer=tracer)
    reject = Event("A", 1, {"x": 2})
    engine.feed(reject)
    engine.close()
    spans = tracer.spans_for(reject.eid)
    assert [s.stage for s in spans] == [stages.PREDICATE_REJECTED, stages.IGNORED]
    assert "a" in spans[0].detail  # names the rejecting step variable


def test_late_drop_and_purge_spans(abc_pattern):
    events = make_events("A1:0 B2:0 C3:0")
    late = Event("A", 1, {"x": 0})
    engine = OutOfOrderEngine(abc_pattern, k=0, late_policy=LatePolicy.DROP)
    tracer = Tracer()
    engine.enable_observability(tracer=tracer)
    for event in events:
        engine.feed(event)
    engine.feed(Event("C", 40, {"x": 9}))  # advances clock: A1/B2/C3 purge
    engine.feed(late)
    engine.close()
    assert engine.stats.late_dropped == 1
    assert [s.stage for s in tracer.spans_for(late.eid)] == [stages.LATE_DROPPED]
    purged_eids = {s.eid for s in tracer.spans() if s.stage == stages.PURGED}
    assert events[0].eid in purged_eids


def test_quarantine_span_under_validation_policy():
    pattern = parse("PATTERN SEQ(A a, B b) WITHIN 10")
    engine = OutOfOrderEngine(pattern, k=0)
    engine.validation = ValidationPolicy.QUARANTINE
    tracer = Tracer()
    engine.enable_observability(tracer=tracer)
    bad = forge_event("A", -5, eid=999)
    engine.feed(bad)
    engine.close()
    assert engine.stats.events_quarantined == 1
    assert [s.stage for s in tracer.spans_for(bad.eid)] == [stages.QUARANTINED]


def test_punctuation_span(plain_seq2):
    engine = OutOfOrderEngine(plain_seq2, k=None)
    tracer = Tracer()
    engine.enable_observability(tracer=tracer)
    engine.feed(Event("A", 1, {}))
    engine.feed(Punctuation(5))
    engine.close()
    assert stages.PUNCTUATION in tracer.stage_counts()


def test_reorder_buffer_and_release_spans(plain_seq2):
    engine = ReorderingEngine(plain_seq2, k=2)
    tracer = Tracer()
    registry = MetricsRegistry()
    engine.enable_observability(tracer=tracer, metrics=registry)
    for event in make_events("A2 B1 A4 B3 A6 B5"):
        engine.feed(event)
    engine.close()
    counts = tracer.stage_counts()
    assert counts[stages.BUFFERED] == 6
    assert counts[stages.RELEASED] == 6
    # Inner-engine spans ride the same tracer under the "inner" stream.
    assert any(span.stream == "inner" for span in tracer.spans())
    residence = registry.get("repro_reorder_residence_ts")
    assert residence.count == 6
    assert registry.get("repro_reorder_released_total").value == 6


def test_shed_spans_and_gauge(abc_pattern):
    engine = OutOfOrderEngine(
        abc_pattern, k=None, shed=ShedPolicy.drop_oldest(max_state=3)
    )
    tracer = Tracer()
    registry = MetricsRegistry()
    engine.enable_observability(tracer=tracer, metrics=registry)
    for ts in range(1, 9):
        engine.feed(Event("A", ts, {"x": 0}))
    engine.close()
    assert engine.stats.events_shed > 0
    shed_spans = [s for s in tracer.spans() if s.stage == stages.SHED]
    assert len(shed_spans) == engine.stats.events_shed
    assert registry.get("repro_shed_bound").value == 3
    assert registry.get("repro_shed_total").value == engine.stats.events_shed


def test_shed_parity_with_plain_run(abc_pattern):
    def build():
        return OutOfOrderEngine(
            abc_pattern, k=None, shed=ShedPolicy.drop_oldest(max_state=5)
        )

    arrival = [Event("ABC"[i % 3], ts, {"x": i % 2}) for i, ts in enumerate(range(1, 60))]
    plain, instrumented, _, _ = _instrumented_pair(build, arrival)
    _assert_parity(plain, instrumented)


def test_negation_pending_and_cancelled_spans(neg_pattern):
    # A1 C3 with a violating B2 arriving before the seal: cancelled.
    engine = OutOfOrderEngine(neg_pattern, k=2)
    tracer = Tracer()
    engine.enable_observability(tracer=tracer)
    for event in make_events("A1:0 C3:0 B2:0 C30:5"):
        engine.feed(event)
    engine.close()
    counts = tracer.stage_counts()
    assert counts.get(stages.MATCH_PENDING, 0) >= 1
    assert counts.get(stages.MATCH_CANCELLED, 0) >= 1


def test_revocation_spans(neg_pattern):
    # Aggressive engine emits optimistically; the late B revokes.
    engine = AggressiveEngine(neg_pattern, k=5)
    tracer = Tracer()
    engine.enable_observability(tracer=tracer)
    for event in make_events("A1:0 C3:0 B2:0 C30:5"):
        engine.feed(event)
    engine.close()
    if engine.stats.revocations:
        assert stages.MATCH_REVOKED in tracer.stage_counts()


def test_metrics_without_tracer_keeps_tracing_off(abc_pattern, random_trace):
    engine = OutOfOrderEngine(abc_pattern, k=8)
    registry = MetricsRegistry()
    obs = engine.enable_observability(metrics=registry)
    assert obs.tracing is False
    arrival = bounded_shuffle(random_trace, k=8, seed=1)
    for element in arrival:
        engine.feed(element)
    engine.close()
    assert registry.get("repro_events_total").value == len(arrival)
    ticks = registry.get("repro_processing_ticks")
    assert ticks.count == len(arrival)
    latency = registry.get("repro_emission_latency_ts")
    assert latency.count == len(engine.results)


def test_state_size_metrics_track_peak(abc_pattern, random_trace):
    engine = OutOfOrderEngine(abc_pattern, k=8)
    registry = MetricsRegistry()
    engine.enable_observability(metrics=registry)
    for element in bounded_shuffle(random_trace, k=8, seed=2):
        engine.feed(element)
    engine.close()
    histogram = registry.get("repro_state_size")
    assert histogram.count > 0
    # The gauge saw every sample; its max is the engine's peak.
    assert engine.stats.peak_state_size > 0


def test_speculation_spans_and_counters(neg_pattern):
    # A1 C3 speculates at park time; the late B2 retracts it at seal.
    engine = OutOfOrderEngine(neg_pattern, k=6, speculative=True)
    tracer = Tracer()
    registry = MetricsRegistry()
    engine.enable_observability(tracer=tracer, metrics=registry)
    for event in make_events("A1:0 C3:0 B2:0"):
        engine.feed(event)
    engine.close()
    counts = tracer.stage_counts()
    assert counts.get(stages.MATCH_SPECULATED, 0) >= 1
    assert counts.get(stages.MATCH_RETRACTED, 0) >= 1
    assert registry.get("repro_speculative_total").value == 1
    assert registry.get("repro_retractions_total").value == 1
    assert registry.get("repro_speculative_latency_ts").count == 1


def test_speculative_metrics_not_registered_without_mode(abc_pattern):
    engine = OutOfOrderEngine(abc_pattern, k=4)
    registry = MetricsRegistry()
    engine.enable_observability(metrics=registry)
    assert registry.get("repro_speculative_total") is None
    assert registry.get("repro_retractions_total") is None
    assert registry.get("repro_refrozen_k") is None


def test_speculative_parity_with_plain_run(neg_pattern, random_trace):
    # Instrumentation on a speculative engine still changes nothing.
    arrival = bounded_shuffle(random_trace, k=8, seed=5)
    plain, instrumented, __, __ = _instrumented_pair(
        lambda: OutOfOrderEngine(neg_pattern, k=8, speculative=True), arrival
    )
    _assert_parity(plain, instrumented)


def test_refreeze_span_and_gauge(plain_seq2):
    from repro.streams import AdaptiveKController

    controller = AdaptiveKController(
        quality_target=0.5, window=4, min_epoch_events=1
    )
    engine = OutOfOrderEngine(plain_seq2, k=30, controller=controller)
    tracer = Tracer()
    registry = MetricsRegistry()
    engine.enable_observability(tracer=tracer, metrics=registry)
    for event in make_events("A1 B2 A3 B4 A5"):
        engine.feed(event)
    engine.feed(Punctuation(5))
    engine.close()
    assert stages.REFROZEN in tracer.stage_counts()
    assert registry.get("repro_refrozen_k").value == engine.clock.k
    assert engine.clock.k < 30  # the calm epoch decayed the bound
