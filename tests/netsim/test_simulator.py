"""Network simulator (repro.netsim.simulator)."""

import pytest

from repro import ConfigurationError, Event, OfflineOracle, OutOfOrderEngine, parse
from repro.netsim import (
    ConstantLatency,
    FailureSchedule,
    NetworkSimulator,
    Topology,
    UniformLatency,
    simulate_star,
)
from repro.streams import SyntheticSource, measure_disorder


def star_streams(n=3, count=100, interval=2):
    return {
        f"s{i}": SyntheticSource(["A", "B", "C"], count, seed=i, interval=interval).take(count)
        for i in range(n)
    }


class TestDeliveryMechanics:
    def test_constant_latency_shifts_without_reordering_single_source(self):
        streams = {"s0": SyntheticSource(["A"], 50, seed=1).take(50)}
        result = simulate_star(streams, lambda i: ConstantLatency(10))
        assert measure_disorder(result.arrival_order).displaced == 0
        assert result.max_transit() == 10
        assert result.mean_transit() == 10

    def test_jitter_on_single_ordered_link_preserves_fifo(self):
        streams = {"s0": SyntheticSource(["A"], 200, seed=1).take(200)}
        result = simulate_star(streams, lambda i: UniformLatency(0, 50))
        # Per-link FIFO: one source over one link can never reorder.
        assert measure_disorder(result.arrival_order).displaced == 0

    def test_cross_source_jitter_causes_disorder(self):
        result = simulate_star(star_streams(4), lambda i: UniformLatency(0, 40), seed=3)
        assert measure_disorder(result.arrival_order).displaced > 0

    def test_event_set_preserved(self):
        streams = star_streams(3)
        result = simulate_star(streams, lambda i: UniformLatency(0, 20), seed=4)
        sent = sorted(e.eid for events in streams.values() for e in events)
        received = sorted(e.eid for e in result.arrival_order)
        assert sent == received

    def test_deterministic(self):
        streams = star_streams(3)
        first = simulate_star(streams, lambda i: UniformLatency(0, 20), seed=9)
        second = simulate_star(streams, lambda i: UniformLatency(0, 20), seed=9)
        assert [e.eid for e in first.arrival_order] == [
            e.eid for e in second.arrival_order
        ]

    def test_observed_bound_consistent_with_measure(self):
        result = simulate_star(star_streams(4), lambda i: UniformLatency(0, 60), seed=5)
        from repro.streams import required_k

        assert result.observed_disorder_bound() == required_k(result.arrival_order)

    def test_unordered_input_stream_rejected(self):
        simulator = NetworkSimulator(Topology.star(["s0"]))
        with pytest.raises(ConfigurationError):
            simulator.run({"s0": [Event("A", 5), Event("A", 3)]})

    def test_unknown_sink_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkSimulator(Topology.star(["s0"]), sink="nowhere")


class TestMultiHop:
    def test_latency_accumulates_over_hops(self):
        topo = Topology(["src", "relay", "sink"])
        topo.add_link("src", "relay", ConstantLatency(5))
        topo.add_link("relay", "sink", ConstantLatency(7))
        simulator = NetworkSimulator(topo)
        result = simulator.run({"src": [Event("A", 0)]})
        assert result.deliveries[0].arrived_at == 12


class TestFailures:
    def test_outage_holds_traffic_until_recovery(self):
        topo = Topology.star(["s0"])
        failures = FailureSchedule()
        failures.add_outage("s0", 10, 50)
        simulator = NetworkSimulator(topo, failures=failures)
        events = [Event("A", ts) for ts in range(0, 30, 5)]
        result = simulator.run({"s0": events})
        for delivery in result.deliveries:
            if 10 <= delivery.sent_at < 50:
                assert delivery.arrived_at >= 50

    def test_failure_burst_creates_disorder_across_sources(self):
        streams = star_streams(2, count=200, interval=1)
        failures = FailureSchedule()
        failures.add_outage("s0", 50, 120)
        result = simulate_star(streams, lambda i: ConstantLatency(0), failures=failures)
        assert measure_disorder(result.arrival_order).max_delay >= 60

    def test_sink_outage_delays_everything(self):
        topo = Topology.star(["s0"])
        failures = FailureSchedule()
        failures.add_outage("sink", 0, 100)
        simulator = NetworkSimulator(topo, failures=failures)
        result = simulator.run({"s0": [Event("A", 5)]})
        assert result.deliveries[0].arrived_at >= 100


class TestEndToEndWithEngine:
    def test_engine_with_simulated_k_matches_oracle(self):
        streams = star_streams(4, count=150)
        result = simulate_star(streams, lambda i: UniformLatency(0, 30), seed=6)
        pattern = parse("PATTERN SEQ(A a, B b, C c) WITHIN 15")
        truth = OfflineOracle(pattern).evaluate_set(result.arrival_order)
        engine = OutOfOrderEngine(pattern, k=result.observed_disorder_bound())
        engine.run(result.arrival_order)
        assert engine.result_set() == truth
        assert engine.stats.late_dropped == 0
