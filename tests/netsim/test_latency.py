"""Latency distributions (repro.netsim.latency)."""

import random

import pytest

from repro import ConfigurationError
from repro.netsim import (
    ConstantLatency,
    ExponentialLatency,
    GaussianLatency,
    ParetoLatency,
    UniformLatency,
)


@pytest.fixture
def rng():
    return random.Random(42)


class TestConstantLatency:
    def test_always_same(self, rng):
        model = ConstantLatency(7)
        assert all(model.sample(rng) == 7 for __ in range(10))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1)


class TestUniformLatency:
    def test_within_bounds(self, rng):
        model = UniformLatency(3, 9)
        samples = [model.sample(rng) for __ in range(500)]
        assert min(samples) >= 3 and max(samples) <= 9
        assert len(set(samples)) > 3  # actually varies

    def test_degenerate_range(self, rng):
        assert UniformLatency(5, 5).sample(rng) == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(-1, 5)
        with pytest.raises(ConfigurationError):
            UniformLatency(5, 3)


class TestExponentialLatency:
    def test_non_negative_and_mean_scale(self, rng):
        model = ExponentialLatency(mean=20.0)
        samples = [model.sample(rng) for __ in range(3000)]
        assert all(s >= 0 for s in samples)
        average = sum(samples) / len(samples)
        assert 15 < average < 25

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialLatency(0)


class TestParetoLatency:
    def test_min_scale_and_cap(self, rng):
        model = ParetoLatency(scale=2, alpha=1.2, cap=50)
        samples = [model.sample(rng) for __ in range(2000)]
        assert min(samples) >= 2
        assert max(samples) <= 50

    def test_heavy_tail_vs_uniform(self, rng):
        pareto = ParetoLatency(scale=1, alpha=1.1, cap=100000)
        samples = sorted(pareto.sample(rng) for __ in range(5000))
        p50 = samples[len(samples) // 2]
        p999 = samples[int(len(samples) * 0.999)]
        assert p999 > 20 * p50  # tail dwarfs the median

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParetoLatency(scale=-1)
        with pytest.raises(ConfigurationError):
            ParetoLatency(alpha=0)
        with pytest.raises(ConfigurationError):
            ParetoLatency(scale=10, cap=5)


class TestGaussianLatency:
    def test_clipped_at_zero(self, rng):
        model = GaussianLatency(mean=1, stddev=10)
        samples = [model.sample(rng) for __ in range(1000)]
        assert all(s >= 0 for s in samples)

    def test_centred_near_mean(self, rng):
        model = GaussianLatency(mean=50, stddev=5)
        samples = [model.sample(rng) for __ in range(2000)]
        average = sum(samples) / len(samples)
        assert 45 < average < 55

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianLatency(-1, 5)
        with pytest.raises(ConfigurationError):
            GaussianLatency(1, -5)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: UniformLatency(0, 100),
            lambda: ExponentialLatency(10),
            lambda: ParetoLatency(1, 1.5),
            lambda: GaussianLatency(10, 3),
        ],
    )
    def test_same_seed_same_samples(self, factory):
        first = [factory().sample(random.Random(7)) for __ in range(1)]
        second = [factory().sample(random.Random(7)) for __ in range(1)]
        assert first == second
