"""Failure-induced disorder meets K-slack estimation (S3 integration).

The paper's second disorder cause: a node outage holds traffic, and
recovery releases it as a burst of stale events.  These tests pin the
full chain — outage → bursty disorder signature at the sink → adaptive
K estimation absorbing the burst without a
:class:`DisorderBoundViolation` — and the outage → crash-point mapping
that turns simulated failures into engine crash/restart drills.
"""

import pytest

from repro import (
    Event,
    FaultInjector,
    OfflineOracle,
    OutOfOrderEngine,
    ResilientRunner,
    CrashError,
    parse,
)
from repro.core.engine import LatePolicy
from repro.core.errors import DisorderBoundViolation
from repro.netsim import ConstantLatency, FailureSchedule, UniformLatency, simulate_star
from repro.streams import SyntheticSource, measure_disorder, required_k
from repro.streams.kslack import AdaptiveEngineFeeder, MaxObservedK, QuantileK

PATTERN = parse("PATTERN SEQ(A a, B b) WITHIN 25")


def star_streams(n=3, count=200, interval=1):
    return {
        f"s{i}": SyntheticSource(["A", "B", "C"], count, seed=i, interval=interval).take(
            count
        )
        for i in range(n)
    }


def outage_arrival(outage=(60, 160), count=250, seed=0):
    """Two-source star with one node down during *outage*."""
    streams = star_streams(2, count=count)
    failures = FailureSchedule()
    failures.add_outage("s0", *outage)
    result = simulate_star(
        streams, lambda i: ConstantLatency(0), failures=failures, seed=seed
    )
    return result, failures


class TestFailureDisorderSignature:
    def test_recovery_burst_is_bursty_disorder(self):
        clean = simulate_star(star_streams(2), lambda i: ConstantLatency(0))
        result, _ = outage_arrival()
        burst = measure_disorder(result.arrival_order)
        baseline = measure_disorder(clean.arrival_order)
        # The outage manufactures lateness of the order of its duration,
        # far beyond anything latency jitter produces here.
        assert burst.max_delay >= 90
        assert burst.max_delay > baseline.max_delay + 50
        assert burst.displaced > baseline.displaced

    def test_burst_delay_bounded_by_outage_duration(self):
        result, _ = outage_arrival(outage=(60, 160))
        stats = measure_disorder(result.arrival_order)
        # Held events are released at recovery: max staleness cannot
        # exceed outage length plus the jitter-free transit (zero here).
        assert stats.max_delay <= 100

    def test_outage_only_disorder_needs_k_of_outage_scale(self):
        result, _ = outage_arrival(outage=(60, 160))
        assert required_k(result.arrival_order) >= 90


class TestAdaptiveKUnderFailures:
    def _train_and_run(self, estimator, training=250):
        # With s0 down over [40, 130), the recovery burst lands around
        # arrival index 170; the training window must cover it so the
        # estimator sees the failure-scale lateness before K freezes.
        result, _ = outage_arrival(outage=(40, 130), count=300)
        arrival = result.arrival_order
        feeder = AdaptiveEngineFeeder(estimator, training=training)
        engine = feeder.run(
            lambda k: OutOfOrderEngine(PATTERN, k=k, late_policy=LatePolicy.RAISE),
            arrival,
        )
        return feeder, engine, arrival

    def test_max_observed_k_absorbs_recovery_burst(self):
        # Training window covers the recovery burst, so the frozen K is
        # at least the burst's staleness: no violation ever raises.
        feeder, engine, arrival = self._train_and_run(MaxObservedK(margin=0.1))
        assert feeder.chosen_k >= required_k(arrival[: feeder.training])
        assert feeder.violations == 0
        assert engine.stats.late_dropped == 0

    def test_quantile_k_with_margin_adapts(self):
        feeder, engine, _ = self._train_and_run(
            QuantileK(quantile=1.0, window=500, margin=5)
        )
        assert feeder.chosen_k > 0
        assert feeder.violations == 0

    def test_undersized_fixed_k_raises_where_adaptive_does_not(self):
        result, _ = outage_arrival(outage=(40, 130), count=300)
        engine = OutOfOrderEngine(PATTERN, k=5, late_policy=LatePolicy.RAISE)
        with pytest.raises(DisorderBoundViolation):
            engine.run(result.arrival_order)

    def test_adaptive_engine_matches_oracle(self):
        feeder, engine, arrival = self._train_and_run(MaxObservedK(margin=0.0))
        truth = OfflineOracle(PATTERN).evaluate_set(arrival)
        assert engine.result_set() == truth


class TestCrashIndices:
    def test_outage_maps_to_first_arrival_at_or_after_start(self):
        result, failures = outage_arrival(outage=(60, 160))
        indices = result.crash_indices(failures, "s0")
        assert len(indices) == 1
        index = indices[0]
        assert result.deliveries[index].arrived_at >= 60
        assert index == 0 or result.deliveries[index - 1].arrived_at < 60

    def test_outage_after_last_delivery_produces_no_crash(self):
        result, _ = outage_arrival()
        last = result.deliveries[-1].arrived_at
        late_failures = FailureSchedule()
        late_failures.add_outage("sink", last + 10, last + 20)
        assert result.crash_indices(late_failures, "sink") == []

    def test_node_without_outages_produces_no_crash(self):
        result, failures = outage_arrival()
        assert result.crash_indices(failures, "s1") == []

    def test_simulated_outage_drives_crash_recovery(self, tmp_path):
        # Full chain: netsim outage → crash index → FaultInjector →
        # ResilientRunner dies at that position and recovers exactly-once.
        result, failures = outage_arrival(outage=(60, 160), count=200)
        arrival = result.arrival_order
        k = required_k(arrival)
        crash_at = result.crash_indices(failures, "s0")
        assert crash_at

        plain = ResilientRunner(
            OutOfOrderEngine(PATTERN, k=k), tmp_path / "plain", checkpoint_every=40
        )
        plain.run(arrival)

        fault = FaultInjector.from_outages(crash_at)
        crashes = 0
        while True:
            runner = ResilientRunner(
                OutOfOrderEngine(PATTERN, k=k),
                tmp_path / "crash",
                checkpoint_every=40,
                fault=fault,
            )
            try:
                runner.run(arrival)
                break
            except CrashError:
                crashes += 1
        assert crashes == len(crash_at)
        assert (tmp_path / "crash" / "delivered.jsonl").read_bytes() == (
            tmp_path / "plain" / "delivered.jsonl"
        ).read_bytes()
