"""Topology and routing (repro.netsim.topology)."""

import pytest

from repro import ConfigurationError
from repro.netsim import ConstantLatency, Topology


class TestConstruction:
    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(["a", "a"])

    def test_add_link(self):
        topo = Topology(["a", "b"])
        link = topo.add_link("a", "b", ConstantLatency(1))
        assert topo.link("a", "b") is link

    def test_self_loop_rejected(self):
        topo = Topology(["a", "b"])
        with pytest.raises(ConfigurationError):
            topo.add_link("a", "a", ConstantLatency(1))

    def test_unknown_node_rejected(self):
        topo = Topology(["a", "b"])
        with pytest.raises(ConfigurationError):
            topo.add_link("a", "zz", ConstantLatency(1))

    def test_duplicate_link_rejected(self):
        topo = Topology(["a", "b"])
        topo.add_link("a", "b", ConstantLatency(1))
        with pytest.raises(ConfigurationError):
            topo.add_link("a", "b", ConstantLatency(2))

    def test_missing_link_lookup(self):
        topo = Topology(["a", "b"])
        with pytest.raises(ConfigurationError):
            topo.link("a", "b")


class TestRouting:
    def _chain(self):
        topo = Topology(["a", "b", "c", "d"])
        topo.add_link("a", "b", ConstantLatency(1))
        topo.add_link("b", "c", ConstantLatency(1))
        topo.add_link("c", "d", ConstantLatency(1))
        return topo

    def test_multi_hop_route(self):
        topo = self._chain()
        route = topo.route("a", "d")
        assert [(l.src, l.dst) for l in route] == [("a", "b"), ("b", "c"), ("c", "d")]

    def test_route_to_self_is_empty(self):
        assert self._chain().route("a", "a") == []

    def test_shortest_path_chosen(self):
        topo = Topology(["a", "b", "sink"])
        topo.add_link("a", "b", ConstantLatency(1))
        topo.add_link("b", "sink", ConstantLatency(1))
        topo.add_link("a", "sink", ConstantLatency(50))
        route = topo.route("a", "sink")
        assert len(route) == 1  # direct link wins on hop count

    def test_unreachable_raises(self):
        topo = Topology(["a", "b"])
        with pytest.raises(ConfigurationError, match="no route"):
            topo.route("a", "b")

    def test_unknown_endpoint_raises(self):
        with pytest.raises(ConfigurationError):
            self._chain().route("a", "zz")

    def test_direction_matters(self):
        topo = Topology(["a", "b"])
        topo.add_link("a", "b", ConstantLatency(1))
        with pytest.raises(ConfigurationError):
            topo.route("b", "a")


class TestStarFactory:
    def test_star_links_every_source(self):
        topo = Topology.star(["s1", "s2", "s3"])
        for name in ("s1", "s2", "s3"):
            assert len(topo.route(name, "sink")) == 1

    def test_latency_factory_applied_per_index(self):
        topo = Topology.star(
            ["s1", "s2"], latency_factory=lambda i: ConstantLatency(i * 10)
        )
        assert topo.link("s1", "sink").latency.delay == 0
        assert topo.link("s2", "sink").latency.delay == 10
