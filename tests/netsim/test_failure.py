"""Failure schedules (repro.netsim.failure)."""

import pytest

from repro import ConfigurationError
from repro.netsim import FailureSchedule


class TestOutages:
    def test_available_outside_outage(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 10, 20)
        assert schedule.available_at("n", 5) == 5
        assert schedule.available_at("n", 20) == 20

    def test_held_until_recovery_inside_outage(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 10, 20)
        assert schedule.available_at("n", 10) == 20
        assert schedule.available_at("n", 15) == 20
        assert schedule.available_at("n", 19) == 20

    def test_is_down(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 10, 20)
        assert schedule.is_down("n", 12)
        assert not schedule.is_down("n", 9)

    def test_unknown_node_always_up(self):
        assert FailureSchedule().available_at("x", 7) == 7

    def test_multiple_outages_binary_search(self):
        schedule = FailureSchedule()
        for start in range(0, 100, 20):
            schedule.add_outage("n", start, start + 5)
        assert schedule.available_at("n", 41) == 45
        assert schedule.available_at("n", 46) == 46

    def test_empty_outage_rejected(self):
        schedule = FailureSchedule()
        with pytest.raises(ConfigurationError):
            schedule.add_outage("n", 10, 10)

    def test_overlapping_outage_rejected(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 10, 20)
        with pytest.raises(ConfigurationError):
            schedule.add_outage("n", 15, 25)

    def test_adjacent_outages_allowed(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 10, 20)
        schedule.add_outage("n", 20, 30)
        assert schedule.available_at("n", 15) == 20  # not merged (held per interval)

    def test_outages_listing(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 30, 40)
        schedule.add_outage("n", 10, 20)
        assert schedule.outages("n") == [(10, 20), (30, 40)]
        assert schedule.outages("other") == []


class TestRandomOutages:
    def test_deterministic(self):
        first = FailureSchedule.random_outages(["a", "b"], 1000, 0.01, 20, seed=5)
        second = FailureSchedule.random_outages(["a", "b"], 1000, 0.01, 20, seed=5)
        assert first.outages("a") == second.outages("a")

    def test_bounded_by_horizon(self):
        schedule = FailureSchedule.random_outages(["a"], 500, 0.05, 30, seed=1)
        for start, end in schedule.outages("a"):
            assert 0 <= start < 500
            assert end <= 500

    def test_zero_rate_no_outages(self):
        schedule = FailureSchedule.random_outages(["a"], 500, 0.0, 30, seed=1)
        assert schedule.outages("a") == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule.random_outages(["a"], 100, 1.5, 10)
        with pytest.raises(ConfigurationError):
            FailureSchedule.random_outages(["a"], 100, 0.1, 0)


class TestFrameOutages:
    """Outage windows composed onto one source's own frame sequence."""

    @staticmethod
    def deliveries():
        from repro import Event
        from repro.netsim import Delivery

        rows = []
        for source, sent_times in (("s1", [0, 5, 12, 18, 25]), ("s2", [2, 9, 22])):
            for ts in sent_times:
                rows.append(Delivery(Event("A", ts, {}), ts, ts + 1, source))
        return rows

    def test_outage_maps_to_frame_index_window(self):
        schedule = FailureSchedule()
        schedule.add_outage("s1", 4, 20)
        # s1's frames sent at 5, 12, 18 fall inside [4, 20): indices 1..4.
        assert schedule.frame_outages(self.deliveries(), "s1") == [(1, 4)]

    def test_other_sources_frames_do_not_count(self):
        schedule = FailureSchedule()
        schedule.add_outage("s2", 4, 20)
        # Only s2's own sends (at 9) land in the window, at its index 1.
        assert schedule.frame_outages(self.deliveries(), "s2") == [(1, 2)]

    def test_window_covering_no_frames_is_dropped(self):
        schedule = FailureSchedule()
        schedule.add_outage("s1", 13, 17)  # between sends 12 and 18
        assert schedule.frame_outages(self.deliveries(), "s1") == []

    def test_multiple_windows_stay_ordered(self):
        schedule = FailureSchedule()
        schedule.add_outage("s1", 0, 6)
        schedule.add_outage("s1", 17, 30)
        assert schedule.frame_outages(self.deliveries(), "s1") == [(0, 2), (3, 5)]

    def test_source_without_outages_is_empty(self):
        assert FailureSchedule().frame_outages(self.deliveries(), "s1") == []
