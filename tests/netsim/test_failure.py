"""Failure schedules (repro.netsim.failure)."""

import pytest

from repro import ConfigurationError
from repro.netsim import FailureSchedule


class TestOutages:
    def test_available_outside_outage(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 10, 20)
        assert schedule.available_at("n", 5) == 5
        assert schedule.available_at("n", 20) == 20

    def test_held_until_recovery_inside_outage(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 10, 20)
        assert schedule.available_at("n", 10) == 20
        assert schedule.available_at("n", 15) == 20
        assert schedule.available_at("n", 19) == 20

    def test_is_down(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 10, 20)
        assert schedule.is_down("n", 12)
        assert not schedule.is_down("n", 9)

    def test_unknown_node_always_up(self):
        assert FailureSchedule().available_at("x", 7) == 7

    def test_multiple_outages_binary_search(self):
        schedule = FailureSchedule()
        for start in range(0, 100, 20):
            schedule.add_outage("n", start, start + 5)
        assert schedule.available_at("n", 41) == 45
        assert schedule.available_at("n", 46) == 46

    def test_empty_outage_rejected(self):
        schedule = FailureSchedule()
        with pytest.raises(ConfigurationError):
            schedule.add_outage("n", 10, 10)

    def test_overlapping_outage_rejected(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 10, 20)
        with pytest.raises(ConfigurationError):
            schedule.add_outage("n", 15, 25)

    def test_adjacent_outages_allowed(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 10, 20)
        schedule.add_outage("n", 20, 30)
        assert schedule.available_at("n", 15) == 20  # not merged (held per interval)

    def test_outages_listing(self):
        schedule = FailureSchedule()
        schedule.add_outage("n", 30, 40)
        schedule.add_outage("n", 10, 20)
        assert schedule.outages("n") == [(10, 20), (30, 40)]
        assert schedule.outages("other") == []


class TestRandomOutages:
    def test_deterministic(self):
        first = FailureSchedule.random_outages(["a", "b"], 1000, 0.01, 20, seed=5)
        second = FailureSchedule.random_outages(["a", "b"], 1000, 0.01, 20, seed=5)
        assert first.outages("a") == second.outages("a")

    def test_bounded_by_horizon(self):
        schedule = FailureSchedule.random_outages(["a"], 500, 0.05, 30, seed=1)
        for start, end in schedule.outages("a"):
            assert 0 <= start < 500
            assert end <= 500

    def test_zero_rate_no_outages(self):
        schedule = FailureSchedule.random_outages(["a"], 500, 0.0, 30, seed=1)
        assert schedule.outages("a") == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule.random_outages(["a"], 100, 1.5, 10)
        with pytest.raises(ConfigurationError):
            FailureSchedule.random_outages(["a"], 100, 0.1, 0)
