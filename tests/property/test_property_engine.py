"""Property-based tests: engine == oracle on arbitrary traces & arrivals.

These are the library's strongest correctness evidence: hypothesis
generates random event traces, random patterns knobs, and random
K-bounded arrival permutations; the out-of-order engine must equal the
offline oracle on every one of them, and the exactly-once/purge/seal
machinery must hold its invariants.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import (
    AggressiveEngine,
    Event,
    OfflineOracle,
    OutOfOrderEngine,
    PurgePolicy,
    ReorderingEngine,
    seq,
)
from helpers import bounded_shuffle


def trace_strategy(types="ABCX", max_ts=60, max_len=60, attr_range=3):
    event = st.tuples(
        st.sampled_from(types),
        st.integers(min_value=0, max_value=max_ts),
        st.integers(min_value=0, max_value=attr_range - 1),
    )
    return st.lists(event, min_size=0, max_size=max_len).map(
        lambda items: [Event(t, ts, {"x": x}) for t, ts, x in items]
    )


PATTERNS = [
    seq("A a", "B b", within=10, name="p2"),
    seq("A a", "B b", "C c", within=20, name="p3"),
    seq("A a", "!B b", "C c", within=15, name="pneg"),
    seq("!B b", "A a", "C c", within=15, name="plead"),
    seq("A a", "C c", "!B b", within=15, name="ptrail"),
    seq("A first", "A second", within=12, name="prep"),
]


@given(
    trace=trace_strategy(),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    k=st.integers(min_value=0, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=120, deadline=None)
def test_ooo_engine_equals_oracle_on_bounded_permutations(trace, pattern_index, k, seed):
    pattern = PATTERNS[pattern_index]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    truth = OfflineOracle(pattern).evaluate_set(trace)
    engine = OutOfOrderEngine(pattern, k=k)
    engine.run(arrival)
    assert engine.result_set() == truth
    assert engine.stats.late_dropped == 0


@given(
    trace=trace_strategy(),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=80, deadline=None)
def test_unbounded_k_handles_arbitrary_permutations(trace, pattern_index, seed):
    pattern = PATTERNS[pattern_index]
    arrival = trace[:]
    random.Random(seed).shuffle(arrival)
    truth = OfflineOracle(pattern).evaluate_set(trace)
    engine = OutOfOrderEngine(pattern, k=None)
    engine.run(arrival)
    assert engine.result_set() == truth


@given(
    trace=trace_strategy(max_len=40),
    k=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
    interval=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_purge_policies_never_change_results(trace, k, seed, interval):
    pattern = PATTERNS[2]  # negation pattern: hardest for purge
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    results = []
    for policy in (PurgePolicy.eager(), PurgePolicy.lazy(interval), PurgePolicy.none()):
        engine = OutOfOrderEngine(pattern, k=k, purge=policy)
        engine.run(arrival)
        results.append(engine.result_set())
    assert results[0] == results[1] == results[2]


@given(
    trace=trace_strategy(max_len=40),
    k=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_exactly_once_no_duplicate_emissions(trace, k, seed):
    pattern = PATTERNS[1]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    engine = OutOfOrderEngine(pattern, k=k)
    engine.run(arrival)
    keys = [m.key() for m in engine.results]
    assert len(keys) == len(set(keys))


@given(
    trace=trace_strategy(max_len=40),
    k=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_reorder_engine_equals_oracle(trace, k, seed):
    pattern = PATTERNS[2]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    truth = OfflineOracle(pattern).evaluate_set(trace)
    engine = ReorderingEngine(pattern, k=k)
    engine.run(arrival)
    assert engine.result_set() == truth


@given(
    trace=trace_strategy(max_len=40),
    k=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_aggressive_net_results_equal_oracle(trace, k, seed):
    pattern = PATTERNS[2]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    truth = OfflineOracle(pattern).evaluate_set(trace)
    engine = AggressiveEngine(pattern, k=k)
    engine.run(arrival)
    assert engine.net_result_set() == truth
    # Revocations only ever remove matches that were emitted.
    emitted = engine.result_set()
    for revocation in engine.revocations:
        assert revocation.match.key() in emitted


@given(
    trace=trace_strategy(max_len=50),
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=60, deadline=None)
def test_emission_never_precedes_trigger(trace, seed, k):
    pattern = PATTERNS[1]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    engine = OutOfOrderEngine(pattern, k=k)
    engine.run(arrival)
    for record in engine.emissions:
        assert record.emitted_seq >= record.match.detected_at
