"""Property-based tests for speculative emission and the adaptive controller.

The two pinned contracts:

* **Sealed-output identity** — a speculative engine's sealed streams
  (``results`` with detection order, ``emissions`` with seq/clock) are
  byte-identical to a pessimistic run of the same arrival permutation,
  under any combination of disorder, mid-stream snapshot/restore, and
  load shedding.
* **Convergence** — after ``close()``, the speculative stream net of
  retractions equals the sealed result set exactly, and no record is
  left open.

Plus the controller's soundness envelope: under random punctuation
placement and re-freeze decisions, the engine horizon stays monotone
and K changes only at punctuation boundaries.
"""

from hypothesis import given, settings, strategies as st

from repro import (
    Event,
    OutOfOrderEngine,
    Punctuation,
    ShedPolicy,
    seq,
)
from repro.streams import AdaptiveKController
from helpers import bounded_shuffle

PATTERNS = [
    seq("A a", "B b", within=10, name="s2"),
    seq("A a", "!B b", "C c", within=15, name="sneg"),
    seq("!B b", "A a", "C c", within=15, name="slead"),
    seq("A a", "C c", "!B b", within=15, name="strail"),
]


def trace_strategy(types="ABCX", max_ts=60, max_len=60, attr_range=3):
    event = st.tuples(
        st.sampled_from(types),
        st.integers(min_value=0, max_value=max_ts),
        st.integers(min_value=0, max_value=attr_range - 1),
    )
    return st.lists(event, min_size=0, max_size=max_len).map(
        lambda items: [Event(t, ts, {"x": x}) for t, ts, x in items]
    )


def _sealed_trail(engine):
    return (
        [(m.key(), m.detected_at) for m in engine.results],
        [(r.match.key(), r.emitted_seq, r.emitted_clock) for r in engine.emissions],
    )


def _run(engine, arrival, cut=None, rebuild=None):
    """Feed *arrival*, optionally snapshot/restore into *rebuild()* at *cut*."""
    if cut is None:
        engine.feed_many(arrival)
        engine.close()
        return engine
    for element in arrival[:cut]:
        engine.feed(element)
    resumed = rebuild()
    resumed.restore(engine.snapshot())
    for element in arrival[cut:]:
        resumed.feed(element)
    resumed.close()
    return resumed


@given(
    trace=trace_strategy(),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    k=st.integers(min_value=0, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100, deadline=None)
def test_sealed_output_identical_across_disorder(trace, pattern_index, k, seed):
    pattern = PATTERNS[pattern_index]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    plain = _run(OutOfOrderEngine(pattern, k=k), arrival)
    spec = _run(OutOfOrderEngine(pattern, k=k, speculative=True), arrival)
    assert _sealed_trail(spec) == _sealed_trail(plain)
    assert spec.speculation.open_count == 0
    assert spec.speculation.net_keys() == spec.result_set()


@given(
    trace=trace_strategy(max_len=50),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    k=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
    cut_fraction=st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=60, deadline=None)
def test_sealed_output_identical_across_snapshot_restore(
    trace, pattern_index, k, seed, cut_fraction
):
    pattern = PATTERNS[pattern_index]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    cut = int(len(arrival) * cut_fraction)
    plain = _run(OutOfOrderEngine(pattern, k=k), arrival)
    spec = _run(
        OutOfOrderEngine(pattern, k=k, speculative=True),
        arrival,
        cut=cut,
        rebuild=lambda: OutOfOrderEngine(pattern, k=k, speculative=True),
    )
    assert _sealed_trail(spec) == _sealed_trail(plain)
    assert spec.speculation.net_keys() == spec.result_set()
    # The speculative stream itself also survives the restore intact:
    # sequence ids stay gapless and totally ordered.
    seqs = sorted(
        [r.seq for r in spec.speculation.emissions]
        + [r.seq for r in spec.speculation.retractions]
    )
    assert seqs == list(range(len(seqs)))


@given(
    trace=trace_strategy(max_ts=40, max_len=60),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    k=st.integers(min_value=0, max_value=15),
    seed=st.integers(min_value=0, max_value=10_000),
    max_state=st.integers(min_value=2, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_sealed_output_identical_under_shedding(
    trace, pattern_index, k, seed, max_state
):
    pattern = PATTERNS[pattern_index]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    shed = ShedPolicy.drop_oldest(max_state)
    plain = _run(OutOfOrderEngine(pattern, k=k, shed=shed), arrival)
    spec = _run(
        OutOfOrderEngine(pattern, k=k, shed=shed, speculative=True), arrival
    )
    assert _sealed_trail(spec) == _sealed_trail(plain)
    assert spec.stats.events_shed == plain.stats.events_shed
    assert spec.speculation.net_keys() == spec.result_set()


@given(
    trace=trace_strategy(max_ts=80, max_len=80),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    seed=st.integers(min_value=0, max_value=10_000),
    punct_every=st.integers(min_value=5, max_value=25),
    initial_k=st.integers(min_value=0, max_value=40),
    quality=st.sampled_from([0.5, 0.9, 0.99]),
)
@settings(max_examples=60, deadline=None)
def test_controller_keeps_horizon_monotone_and_k_epoch_stable(
    trace, pattern_index, seed, punct_every, initial_k, quality
):
    pattern = PATTERNS[pattern_index]
    arrival = bounded_shuffle(trace, k=10, seed=seed)
    elements = []
    for index, event in enumerate(arrival):
        elements.append(event)
        if (index + 1) % punct_every == 0:
            remaining = arrival[index + 1 :]
            horizon = min((e.ts for e in remaining), default=event.ts + 1) - 1
            if horizon >= 0:
                elements.append(Punctuation(horizon))
    controller = AdaptiveKController(
        quality_target=quality, window=16, initial_k=initial_k, min_epoch_events=4
    )
    engine = OutOfOrderEngine(
        pattern, k=initial_k, speculative=True, controller=controller
    )
    previous_horizon = engine.clock.horizon()
    previous_k = engine.clock.k
    for element in elements:
        engine.feed(element)
        horizon = engine.clock.horizon()
        assert horizon >= previous_horizon
        previous_horizon = horizon
        if engine.clock.k != previous_k:
            assert isinstance(element, Punctuation), (
                "K changed mid-epoch (not at a punctuation boundary)"
            )
            previous_k = engine.clock.k
    engine.close()
    assert engine.speculation.open_count == 0
    assert engine.speculation.net_keys() == engine.result_set()
