"""Equality-index ablation property: the index never changes results.

The equality-index layer (posting lists inside the stacks plus the
per-pattern pushdown plan) is a pure access-path optimisation, so for
any trace, any K-bounded arrival permutation, any purge interleaving,
and a snapshot/restore at any cut point, three engines must agree:

* ``index=True``   — hash-probe pushdown where the plan allows,
* ``index=False``  — range-scan construction (E19 ablation),
* ``optimize_construction=False`` — the unoptimised reference path,

and all of them must equal the offline oracle.  The indexed and
range-only engines must further agree on the **ordered emission
stream** (keys and detection stamps), not just the result set — that is
the byte-identical contract the CLI's ``--no-index`` flag advertises.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import (
    Attr,
    Eq,
    Event,
    Ne,
    OfflineOracle,
    OutOfOrderEngine,
    Punctuation,
    PurgePolicy,
    seq,
)
from helpers import bounded_shuffle

# Small ts range relative to trace length: duplicate timestamps are the
# norm here, not the exception, so posting-list eid tie-breaking is
# exercised on nearly every example.
def trace_strategy(types="ABCX", max_ts=40, max_len=60, attr_range=3):
    event = st.tuples(
        st.sampled_from(types),
        st.integers(min_value=0, max_value=max_ts),
        st.integers(min_value=0, max_value=attr_range - 1),
    )
    return st.lists(event, min_size=0, max_size=max_len).map(
        lambda items: [Event(t, ts, {"x": x}) for t, ts, x in items]
    )


def _x(var):
    return Attr(var, "x")


PATTERNS = [
    # Equi-joined chains: the planner indexes "x" at non-trigger depths.
    seq("A a", "B b", within=10, where=[Eq(_x("a"), _x("b"))], name="i2"),
    seq("A a", "B b", "C c", within=20,
        where=[Eq(_x("a"), _x("b")), Eq(_x("b"), _x("c"))], name="i3"),
    # Mixed predicates: only the bare equality is index-satisfied; the
    # residual inequality must still run in the reduced pipeline.
    seq("A a", "B b", "C c", within=20,
        where=[Eq(_x("a"), _x("c")), Ne(_x("b"), _x("c"))], name="imix"),
    # Negation alongside an indexed join.
    seq("A a", "!B b", "C c", within=15,
        where=[Eq(_x("a"), _x("c"))], name="ineg"),
    # Repeated event type joined on itself (duplicate-ts heavy).
    seq("A first", "A second", within=12,
        where=[Eq(_x("first"), _x("second"))], name="irep"),
    # No equality at all: the plan indexes nothing; the flag must be a
    # no-op rather than an error.
    seq("A a", "B b", within=10, name="iplain"),
]


def emission_trail(engine):
    return [(m.key(), m.detected_at) for m in engine.results]


def interleave_punctuations(arrival, rng):
    """Splice *valid* purge triggers at random points.

    A punctuation at position ``i`` asserts nothing at or below its ts
    arrives later, so its ts is capped just under the smallest ts still
    to come — otherwise the engine would rightly drop those events as
    late and could no longer match the oracle on the full trace.
    """
    if not arrival:
        return arrival
    out = list(arrival)
    for __ in range(rng.randint(0, 3)):
        position = rng.randrange(len(out) + 1)
        remaining = [e.ts for e in out[position:] if isinstance(e, Event)]
        seen = [e.ts for e in out[:position] if isinstance(e, Event)]
        bound = min(remaining) - 1 if remaining else max(seen, default=0)
        if bound >= 0:
            out.insert(position, Punctuation(bound))
    return out


@given(
    trace=trace_strategy(),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    k=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
    lazy_purge=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_indexed_equals_range_only_equals_unoptimised_equals_oracle(
    trace, pattern_index, k, seed, lazy_purge
):
    pattern = PATTERNS[pattern_index]
    rng = random.Random(seed)
    arrival = interleave_punctuations(bounded_shuffle(trace, k=k, seed=seed), rng)
    purge = PurgePolicy.lazy(rng.choice([1, 4, 32])) if lazy_purge else None

    def run(**kwargs):
        engine = OutOfOrderEngine(
            pattern,
            k=k,
            purge=None if purge is None else purge.clone(),
            **kwargs,
        )
        engine.run(arrival)
        return engine

    indexed = run(index=True)
    range_only = run(index=False)
    unoptimised = run(optimize_construction=False)

    assert emission_trail(indexed) == emission_trail(range_only)
    truth = OfflineOracle(pattern).evaluate_set(trace)
    assert indexed.result_set() == truth
    assert unoptimised.result_set() == truth


@given(
    trace=trace_strategy(),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    k=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
    cut_fraction=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_snapshot_restore_mid_stream_preserves_index_behaviour(
    trace, pattern_index, k, seed, cut_fraction
):
    """Posting lists are derived state: a restore at any cut point must
    rebuild them well enough that the resumed indexed engine stays
    byte-identical to both an uninterrupted one and the ablation."""
    pattern = PATTERNS[pattern_index]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    cut = int(len(arrival) * cut_fraction)

    straight = OutOfOrderEngine(pattern, k=k, index=True)
    straight.run(arrival)

    interrupted = OutOfOrderEngine(pattern, k=k, index=True)
    for element in arrival[:cut]:
        interrupted.feed(element)
    resumed = OutOfOrderEngine(pattern, k=k, index=True)
    resumed.restore(interrupted.snapshot())
    for element in arrival[cut:]:
        resumed.feed(element)
    resumed.close()

    assert emission_trail(resumed) == emission_trail(straight)
    assert resumed.stats.as_dict() == straight.stats.as_dict()

    range_only = OutOfOrderEngine(pattern, k=k, index=False)
    range_only.run(arrival)
    assert emission_trail(resumed) == emission_trail(range_only)
    assert resumed.result_set() == OfflineOracle(pattern).evaluate_set(trace)
