"""Property-based tests on core data structures and stream substrates."""

import random

from hypothesis import given, settings, strategies as st

from repro import Event
from repro.core.clock import StreamClock
from repro.core.stacks import Instance, NegativeStore, SortedStack
from repro.streams import (
    BurstDropoutModel,
    RandomDelayModel,
    SwapModel,
    measure_disorder,
    required_k,
)
from repro.streams.kslack import MaxObservedK, QuantileK


timestamps = st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=200)


@given(timestamps)
@settings(max_examples=100, deadline=None)
def test_sorted_stack_invariant(ts_list):
    stack = SortedStack(0)
    for arrival, ts in enumerate(ts_list):
        stack.insert(Instance(Event("A", ts), arrival))
    observed = [i.sort_key() for i in stack]
    assert observed == sorted(observed)
    assert len(stack) == len(ts_list)


@given(timestamps, st.integers(min_value=0, max_value=1000))
@settings(max_examples=100, deadline=None)
def test_sorted_stack_purge_removes_exactly_prefix(ts_list, threshold):
    stack = SortedStack(0)
    for arrival, ts in enumerate(ts_list):
        stack.insert(Instance(Event("A", ts), arrival))
    expected_kept = sorted(ts for ts in ts_list if ts > threshold)
    stack.purge_through(threshold)
    assert [i.ts for i in stack] == expected_kept


@given(timestamps, st.integers(min_value=0, max_value=1000), st.integers(min_value=0, max_value=1000))
@settings(max_examples=100, deadline=None)
def test_sorted_stack_range_queries_match_bruteforce(ts_list, a, b):
    lo, hi = min(a, b), max(a, b)
    stack = SortedStack(0)
    for arrival, ts in enumerate(ts_list):
        stack.insert(Instance(Event("A", ts), arrival))
    assert [i.ts for i in stack.range_before(hi, min_ts=lo)] == sorted(
        ts for ts in ts_list if lo <= ts < hi
    )
    assert [i.ts for i in stack.range_after(lo, max_ts=hi)] == sorted(
        ts for ts in ts_list if lo < ts <= hi
    )
    assert stack.has_in_range(lo, hi) == any(lo <= ts <= hi for ts in ts_list)


@given(timestamps)
@settings(max_examples=100, deadline=None)
def test_negative_store_between_matches_bruteforce(ts_list):
    store = NegativeStore(["B"])
    events = [Event("B", ts) for ts in ts_list]
    for event in events:
        store.insert(event)
    lo, hi = 100, 600
    expected = sorted(
        (e.ts, e.eid) for e in events if lo < e.ts < hi
    )
    observed = [(e.ts, e.eid) for e in store.between("B", lo, hi)]
    assert observed == expected


@given(timestamps, st.one_of(st.none(), st.integers(min_value=0, max_value=50)))
@settings(max_examples=100, deadline=None)
def test_clock_horizon_monotone(ts_list, k):
    clock = StreamClock(k)
    previous_horizon = clock.horizon()
    for ts in ts_list:
        clock.observe(Event("A", ts))
        horizon = clock.horizon()
        assert horizon >= previous_horizon
        previous_horizon = horizon
        if k is not None:
            assert horizon <= clock.now - k - 1 or horizon == -1 or True
            # precise form:
            assert horizon == max(-1, clock.now - k - 1)


@given(timestamps, st.floats(min_value=0, max_value=1), st.integers(min_value=0, max_value=30), st.integers())
@settings(max_examples=80, deadline=None)
def test_random_delay_model_is_permutation_with_bounded_k(ts_list, rate, max_delay, seed):
    events = [Event("A", ts) for ts in sorted(ts_list)]
    model = RandomDelayModel(rate, max_delay, seed=seed)
    arrival = model.apply(events)
    assert sorted(e.eid for e in arrival) == sorted(e.eid for e in events)
    assert required_k(arrival) <= max_delay


@given(timestamps, st.integers(min_value=1, max_value=20), st.integers())
@settings(max_examples=80, deadline=None)
def test_swap_model_is_permutation(ts_list, block, seed):
    events = [Event("A", ts) for ts in sorted(ts_list)]
    arrival = SwapModel(block, seed=seed).apply(events)
    assert sorted(e.eid for e in arrival) == sorted(e.eid for e in events)


@given(
    timestamps,
    st.floats(min_value=0, max_value=0.3),
    st.integers(min_value=1, max_value=30),
    st.integers(),
)
@settings(max_examples=80, deadline=None)
def test_burst_model_is_permutation(ts_list, fail_rate, outage, seed):
    events = [Event("A", ts) for ts in sorted(ts_list)]
    arrival = BurstDropoutModel(fail_rate, outage, seed=seed).apply(events)
    assert sorted(e.eid for e in arrival) == sorted(e.eid for e in events)


@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
@settings(max_examples=80, deadline=None)
def test_max_observed_k_dominates_all_delays(ts_list):
    events = [Event("A", ts) for ts in ts_list]
    estimator = MaxObservedK()
    for event in events:
        estimator.observe(event)
    assert estimator.current() == required_k(events)


@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_quantile_k_never_exceeds_max_k(ts_list):
    events = [Event("A", ts) for ts in ts_list]
    quantile = QuantileK(quantile=0.9, window=1000)
    maximum = MaxObservedK()
    for event in events:
        quantile.observe(event)
        maximum.observe(event)
    assert quantile.current() <= maximum.current()


@given(timestamps)
@settings(max_examples=80, deadline=None)
def test_measure_disorder_rate_bounds(ts_list):
    events = [Event("A", ts) for ts in ts_list]
    stats = measure_disorder(events)
    assert 0.0 <= stats.rate <= 1.0
    assert stats.max_delay >= 0
    if stats.displaced == 0:
        assert stats.max_delay == 0
