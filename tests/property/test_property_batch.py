"""Property-based tests: batched and parallel paths are observably serial.

``feed_batch`` is a pure performance lever — the contract (pinned here
across random traces, disorder permutations, purge policies, batch
sizes, and punctuations) is that an engine fed in batches is
*indistinguishable* from the same engine fed one element at a time:
same matches in the same emission order, same counters, same residual
state, same clock.  Likewise ``ParallelPartitionedEngine`` must produce
the serial ``PartitionedEngine``'s results for every worker count, and
be byte-identical at ``workers=1``.
"""

from hypothesis import given, settings, strategies as st

from repro import (
    AggressiveEngine,
    Attr,
    Eq,
    Event,
    InOrderEngine,
    OutOfOrderEngine,
    ParallelPartitionedEngine,
    PartitionedEngine,
    Punctuation,
    PurgePolicy,
    ReorderingEngine,
    seq,
)
from helpers import bounded_shuffle

PATTERNS = [
    seq("A a", "B b", within=10, name="p2"),
    seq("A a", "B b", "C c", within=20, name="p3"),
    seq("A a", "!B b", "C c", within=15, name="pneg"),
    seq("A first", "A second", within=12, name="prep"),
]

# All steps joined on one attribute -> partitionable (for the parallel
# property; the flat engines run it too, it is just another pattern).
PART_PATTERN = seq(
    "A a",
    "B b",
    "C c",
    within=20,
    where=[Eq(Attr("a", "x"), Attr("b", "x")), Eq(Attr("b", "x"), Attr("c", "x"))],
    name="pkey",
)

BATCH_SIZES = [1, 2, 3, 7, 16, 64]


def trace_strategy(types="ABCX", max_ts=60, max_len=50, attr_range=3):
    event = st.tuples(
        st.sampled_from(types),
        st.integers(min_value=0, max_value=max_ts),
        st.integers(min_value=0, max_value=attr_range - 1),
    )
    return st.lists(event, min_size=0, max_size=max_len).map(
        lambda items: [Event(t, ts, {"x": x}) for t, ts, x in items]
    )


def _with_punctuations(arrival):
    """Insert a safe punctuation mid-stream and at the end."""
    if len(arrival) < 2:
        return list(arrival)
    mid = len(arrival) // 2
    head = list(arrival[:mid])
    mid_ts = max(e.ts for e in head)
    tail = list(arrival[mid:])
    end_ts = max(mid_ts, max(e.ts for e in tail))
    return head + [Punctuation(mid_ts)] + tail + [Punctuation(end_ts)]


def _purge(kind, interval):
    if kind == "eager":
        return PurgePolicy.eager()
    if kind == "lazy":
        return PurgePolicy.lazy(interval)
    return PurgePolicy.none()


def _snapshot(engine):
    """Everything externally observable about an engine after feeding."""
    return {
        "keys": [m.key() for m in engine.results],
        "emissions": [(r.emitted_seq, r.emitted_clock) for r in engine.emissions],
        "stats": engine.stats.as_dict(),
        "state": engine.state_size(),
        "clock": (engine.clock.now, engine.clock.horizon(), engine.clock.observations),
    }


def _feed_serial(engine, elements):
    for element in elements:
        engine.feed(element)


def _feed_batched(engine, elements, batch_size):
    for lo in range(0, len(elements), batch_size):
        engine.feed_batch(elements[lo : lo + batch_size])


def _assert_batch_equals_serial(make_engine, elements, batch_size):
    serial = make_engine()
    _feed_serial(serial, elements)
    batched = make_engine()
    _feed_batched(batched, elements, batch_size)
    assert _snapshot(batched) == _snapshot(serial)
    # ... and closing both yields the same final result set.
    serial.close()
    batched.close()
    assert _snapshot(batched) == _snapshot(serial)


@given(
    trace=trace_strategy(),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS)),
    k=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
    batch_size=st.sampled_from(BATCH_SIZES),
    purge_kind=st.sampled_from(["eager", "lazy", "none"]),
    interval=st.integers(min_value=1, max_value=32),
    punctuate=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_ooo_feed_batch_is_observably_serial(
    trace, pattern_index, k, seed, batch_size, purge_kind, interval, punctuate
):
    pattern = (PATTERNS + [PART_PATTERN])[pattern_index]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    if punctuate:
        arrival = _with_punctuations(arrival)
    _assert_batch_equals_serial(
        lambda: OutOfOrderEngine(pattern, k=k, purge=_purge(purge_kind, interval)),
        arrival,
        batch_size,
    )


@given(
    trace=trace_strategy(max_len=40),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    k=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
    batch_size=st.sampled_from(BATCH_SIZES),
    purge_kind=st.sampled_from(["eager", "lazy", "none"]),
    interval=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=60, deadline=None)
def test_aggressive_feed_batch_is_observably_serial(
    trace, pattern_index, k, seed, batch_size, purge_kind, interval
):
    pattern = PATTERNS[pattern_index]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    _assert_batch_equals_serial(
        lambda: AggressiveEngine(pattern, k=k, purge=_purge(purge_kind, interval)),
        arrival,
        batch_size,
    )


@given(
    trace=trace_strategy(max_len=40),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    batch_size=st.sampled_from(BATCH_SIZES),
    purge_kind=st.sampled_from(["eager", "lazy", "none"]),
    interval=st.integers(min_value=1, max_value=32),
    punctuate=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_inorder_feed_batch_is_observably_serial(
    trace, pattern_index, batch_size, purge_kind, interval, punctuate
):
    # The SASE baseline promises correctness only on ordered arrival.
    pattern = PATTERNS[pattern_index]
    arrival = sorted(trace, key=lambda e: e.ts)
    if punctuate:
        arrival = _with_punctuations(arrival)
    _assert_batch_equals_serial(
        lambda: InOrderEngine(pattern, purge=_purge(purge_kind, interval)),
        arrival,
        batch_size,
    )


@given(
    trace=trace_strategy(max_len=40),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    k=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
    batch_size=st.sampled_from(BATCH_SIZES),
    punctuate=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_reorder_feed_batch_is_observably_serial(
    trace, pattern_index, k, seed, batch_size, punctuate
):
    pattern = PATTERNS[pattern_index]
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    if punctuate:
        arrival = _with_punctuations(arrival)

    def snapshot_with_inner(engine):
        snap = _snapshot(engine)
        snap["inner_stats"] = engine.inner.stats.as_dict()
        snap["buffer_peak"] = engine.buffer_peak
        return snap

    serial = ReorderingEngine(pattern, k=k)
    _feed_serial(serial, arrival)
    batched = ReorderingEngine(pattern, k=k)
    _feed_batched(batched, arrival, batch_size)
    assert snapshot_with_inner(batched) == snapshot_with_inner(serial)
    serial.close()
    batched.close()
    assert snapshot_with_inner(batched) == snapshot_with_inner(serial)


@given(
    trace=trace_strategy(max_len=60, max_ts=80),
    k=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=40, deadline=None)
def test_parallel_workers_match_serial_fallback(trace, k, seed, workers):
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    reference = ParallelPartitionedEngine(PART_PATTERN, k=k, workers=1)
    reference.run(list(arrival))
    candidate = ParallelPartitionedEngine(PART_PATTERN, k=k, workers=workers)
    candidate.run(list(arrival))
    assert candidate.result_set() == reference.result_set()
    assert candidate.stats.late_dropped == reference.stats.late_dropped
    if workers == 1:
        assert [m.key() for m in candidate.results] == [
            m.key() for m in reference.results
        ]


@given(
    trace=trace_strategy(max_len=60, max_ts=80),
    k=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_parallel_serial_fallback_equals_partitioned_engine(trace, k, seed):
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    serial = PartitionedEngine(PART_PATTERN, k=k)
    serial.run(list(arrival))
    fallback = ParallelPartitionedEngine(PART_PATTERN, k=k, workers=1)
    fallback.run(list(arrival))
    assert _snapshot(fallback) == _snapshot(serial)
