"""Observability-parity property for the ingestion gateway.

Enabling the full observability stack — metrics registry, stage-latency
spans, lag panel, flight recorder — must NEVER change what the gateway
*does*: every ack payload, every admission decision, the sealed match
log, recovery behaviour, and the operator stats must be byte-identical
to an unobserved gateway fed the same frames.  The instrumented half
even runs with a deliberately skewed clock to prove timing never leaks
into decisions.

Scenarios are seeded from ``REPRO_OBS_SEED`` (CI sweeps disjoint seeds;
failures name their seed) and mix disorder, redeliveries, malformed
frames, watermark asserts, liveness ticks, and crash/restart cycles.
"""

from __future__ import annotations

import os
import random

import pytest

from repro import CrashError, FaultInjector, OutOfOrderEngine, parse
from repro.ingest import EventSchema, FieldSpec, GatewayConfig, IngestGateway, StreamSchema
from repro.obs import MetricsRegistry
from repro.obs.flight import FlightRecorder
from repro.obs.span import mint_span

SEED = int(os.environ.get("REPRO_OBS_SEED", "0"))
SCENARIOS = 5
QUERY = "PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 20"


def _schema() -> StreamSchema:
    return StreamSchema(
        "orders",
        t_event="ts",
        events=[
            EventSchema("A", [FieldSpec("ts", "int"), FieldSpec("x", "int")]),
            EventSchema("B", [FieldSpec("ts", "int"), FieldSpec("x", "int")]),
        ],
        ordering_scope="global",
        source_slack=2,
    )


def _build(directory, observed: bool, fault=None, clock_skew=0.0):
    pattern = parse(QUERY)
    config = GatewayConfig(_schema(), liveness_timeout=5.0)
    kwargs = {}
    if observed:
        kwargs = {"metrics": MetricsRegistry(), "flight": FlightRecorder()}
    return IngestGateway(
        lambda: OutOfOrderEngine(pattern, k=4),
        config,
        directory=directory,
        fault=fault,
        clock=lambda: 1000.0 + clock_skew,
        **kwargs,
    )


def _script(rng: random.Random, length: int):
    """One reproducible frame script: (op, payload) steps."""
    events = []
    for ts in range(1, length + 1):
        events.append(("A" if rng.random() < 0.5 else "B",
                       {"ts": ts, "x": rng.randint(0, 3)}))
    # Bounded disorder: each event drifts at most k positions from
    # timestamp order, matching the engine's slack model.
    k = rng.randint(0, 4)
    keyed = [
        (attrs["ts"] + rng.randint(0, k), index, (etype, attrs))
        for index, (etype, attrs) in enumerate(events)
    ]
    keyed.sort(key=lambda item: item[:2])
    events = [event for __, __, event in keyed]
    steps = []
    clock = 0.0
    for etype, attrs in events:
        clock += rng.random() * 0.01
        steps.append(("event", ("s%d" % rng.randint(1, 3), etype, attrs, clock)))
        if rng.random() < 0.15:  # redelivery
            steps.append(("event", ("s1", etype, attrs, clock + 0.001)))
        if rng.random() < 0.08:  # malformed frame
            steps.append(("event", ("s2", "bogus", {"ts": attrs["ts"]}, clock)))
        if rng.random() < 0.10:
            steps.append(("watermark", ("s3", attrs["ts"] + 1, clock)))
        if rng.random() < 0.05:
            steps.append(("tick", clock + 0.002))
    steps.append(("sync", None))
    return steps


def _drive(gateway, steps, with_spans: bool):
    """Apply the script; returns every reply payload (crash markers included)."""
    replies = []
    for op, payload in steps:
        try:
            if op == "event":
                source, etype, attrs, now = payload
                span = mint_span(now - 0.05) if with_spans else None
                replies.append(gateway.admit_frame(
                    source, etype, attrs, now=now, span=span
                ))
            elif op == "watermark":
                source, ts, now = payload
                replies.append(gateway.assert_watermark(source, ts, now=now))
            elif op == "tick":
                transitions = gateway.tick(now=payload)
                replies.append([(t.source, t.status.value) for t in transitions])
            elif op == "sync":
                gateway.sync_acks()
        except CrashError:
            replies.append("CRASH")
            return replies, False
    return replies, True


@pytest.mark.parametrize("scenario", range(SCENARIOS))
def test_observability_never_changes_behaviour(tmp_path, scenario):
    rng = random.Random(SEED * 1000 + scenario)
    steps = _script(rng, rng.randint(30, 80))

    plain = _build(tmp_path / "plain", observed=False)
    observed = _build(tmp_path / "observed", observed=True, clock_skew=123.456)

    plain_replies, __ = _drive(plain, steps, with_spans=False)
    observed_replies, __ = _drive(observed, steps, with_spans=True)
    assert plain_replies == observed_replies, f"seed {SEED} scenario {scenario}"

    assert plain.stats() == observed.stats()
    assert plain.seal() is not None
    observed.seal()
    assert [m.key() for m in plain.runner.matches] == [
        m.key() for m in observed.runner.matches
    ]


@pytest.mark.parametrize("scenario", range(SCENARIOS))
def test_parity_holds_across_crash_and_restart(tmp_path, scenario):
    rng = random.Random(SEED * 7000 + 31 * scenario)
    steps = _script(rng, rng.randint(20, 50))
    crash_at = rng.randint(1, 25)

    halves = {}
    for name, observed in (("plain", False), ("observed", True)):
        directory = tmp_path / name
        first = _build(
            directory, observed, fault=FaultInjector(crash_at=[crash_at]),
            clock_skew=99.9 if observed else 0.0,
        )
        before, completed = _drive(first, steps, with_spans=observed)
        assert first.crashed or completed
        second = _build(directory, observed)
        after, __ = _drive(second, steps, with_spans=observed)
        second.seal()
        halves[name] = (
            before, after, second.recovered_frames, second.stats(),
            [m.key() for m in second.runner.matches],
        )

    assert halves["plain"] == halves["observed"], (
        f"seed {SEED} scenario {scenario} crash_at {crash_at}"
    )
