"""Property tests across the substrate pipeline: punctuation, partition,
replay, parser round-trips, and the spill buffer."""

from hypothesis import given, settings, strategies as st

from repro import (
    Event,
    OfflineOracle,
    OutOfOrderEngine,
    PartitionedEngine,
    parse,
)
from repro.streams import (
    PeriodicPunctuator,
    SpillingReorderBuffer,
    strip_punctuation,
    validate_punctuation,
)
from helpers import bounded_shuffle


def keyed_trace_strategy(max_ts=60, max_len=50, keys=4):
    event = st.tuples(
        st.sampled_from("ABCX"),
        st.integers(min_value=0, max_value=max_ts),
        st.integers(min_value=0, max_value=keys - 1),
    )
    return st.lists(event, min_size=0, max_size=max_len).map(
        lambda items: [Event(t, ts, {"x": x}) for t, ts, x in items]
    )


KEYED_PATTERN = parse(
    "PATTERN SEQ(A a, B b, C c) WHERE a.x == b.x AND b.x == c.x WITHIN 25",
    name="chain",
)
NEG_KEYED_PATTERN = parse(
    "PATTERN SEQ(A a, !B b, C c) WHERE a.x == c.x AND b.x == a.x WITHIN 25",
    name="negchain",
)


@given(
    trace=keyed_trace_strategy(),
    k=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=5000),
)
@settings(max_examples=60, deadline=None)
def test_partitioned_engine_equals_oracle(trace, k, seed):
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    truth = OfflineOracle(KEYED_PATTERN).evaluate_set(trace)
    engine = PartitionedEngine(KEYED_PATTERN, k=k, punctuate_every=7)
    engine.run(arrival)
    assert engine.result_set() == truth


@given(
    trace=keyed_trace_strategy(),
    k=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=5000),
)
@settings(max_examples=60, deadline=None)
def test_partitioned_negation_equals_oracle(trace, k, seed):
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    truth = OfflineOracle(NEG_KEYED_PATTERN).evaluate_set(trace)
    engine = PartitionedEngine(NEG_KEYED_PATTERN, k=k, punctuate_every=5)
    engine.run(arrival)
    assert engine.result_set() == truth


@given(
    trace=keyed_trace_strategy(),
    k=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=5000),
    period=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=60, deadline=None)
def test_punctuated_stream_changes_nothing_but_state(trace, k, seed, period):
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    punctuated = list(PeriodicPunctuator(period=period, slack=k).apply(arrival))
    assert validate_punctuation(punctuated)
    assert strip_punctuation(punctuated) == arrival
    plain = OutOfOrderEngine(KEYED_PATTERN, k=k)
    plain.run(arrival)
    with_punct = OutOfOrderEngine(KEYED_PATTERN, k=k)
    with_punct.run(punctuated)
    assert with_punct.result_set() == plain.result_set()
    assert with_punct.stats.peak_state_size <= plain.stats.peak_state_size + len(trace)


@given(
    trace=keyed_trace_strategy(max_len=80),
    seed=st.integers(min_value=0, max_value=5000),
    limit=st.integers(min_value=1, max_value=20),
    batch=st.integers(min_value=1, max_value=10),
    horizon_step=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=50, deadline=None)
def test_spill_buffer_equals_heap(trace, seed, limit, batch, horizon_step):
    import heapq
    import random

    arrival = trace[:]
    random.Random(seed).shuffle(arrival)
    buffer = SpillingReorderBuffer(memory_limit=limit, spill_batch=batch)
    heap: list = []
    out_spill, out_heap = [], []
    horizon = -1
    for index, event in enumerate(arrival):
        buffer.push(event)
        heapq.heappush(heap, (event.ts, event.eid, event))
        if index % 3 == 0:
            horizon += horizon_step
            out_spill.extend(buffer.release(horizon))
            while heap and heap[0][0] <= horizon:
                out_heap.append(heapq.heappop(heap)[2])
    out_spill.extend(buffer.drain())
    while heap:
        out_heap.append(heapq.heappop(heap)[2])
    buffer.close()
    assert [e.eid for e in out_spill] == [e.eid for e in out_heap]


@given(
    trace=keyed_trace_strategy(),
    seed=st.integers(min_value=0, max_value=5000),
)
@settings(max_examples=40, deadline=None)
def test_pattern_repr_reparses_equivalently(trace, seed):
    """repr(pattern) is valid query-language text with identical semantics."""
    reparsed = parse(repr(KEYED_PATTERN), name=KEYED_PATTERN.name)
    assert (
        OfflineOracle(reparsed).evaluate_set(trace)
        == OfflineOracle(KEYED_PATTERN).evaluate_set(trace)
    )
    reparsed_neg = parse(repr(NEG_KEYED_PATTERN), name=NEG_KEYED_PATTERN.name)
    assert (
        OfflineOracle(reparsed_neg).evaluate_set(trace)
        == OfflineOracle(NEG_KEYED_PATTERN).evaluate_set(trace)
    )


KLEENE_PATTERN = parse(
    "PATTERN SEQ(A a, B+ bs, C c) WHERE a.x == c.x AND bs.x == a.x WITHIN 25",
    name="kleene",
)


@given(
    trace=keyed_trace_strategy(),
    k=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=5000),
)
@settings(max_examples=60, deadline=None)
def test_kleene_engine_equals_oracle(trace, k, seed):
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    truth = OfflineOracle(KLEENE_PATTERN).evaluate_set(trace)
    engine = OutOfOrderEngine(KLEENE_PATTERN, k=k)
    engine.run(arrival)
    assert engine.result_set() == truth


@given(
    trace=keyed_trace_strategy(),
    k=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=5000),
)
@settings(max_examples=40, deadline=None)
def test_kleene_collections_nonempty_and_inside_interval(trace, k, seed):
    arrival = bounded_shuffle(trace, k=k, seed=seed)
    engine = OutOfOrderEngine(KLEENE_PATTERN, k=k)
    engine.run(arrival)
    for match in engine.results:
        elements = match.collections["bs"]
        assert elements  # the "+" guarantees one-or-more
        lo, hi = match.events[0].ts, match.events[1].ts
        assert all(lo < e.ts < hi for e in elements)
        timestamps = [(e.ts, e.eid) for e in elements]
        assert timestamps == sorted(timestamps)
