"""Crash-anywhere recovery property: kill the runner at arbitrary points.

For every engine family: pick an arbitrary crash schedule (any input
indices) and any checkpoint interval, crash and restart the runner
until the trace completes, and require the delivered log to be
**byte-identical** to an uninterrupted run — same matches, same order,
same sequence numbers, each match exactly once.

The scenario generator is seeded from ``REPRO_RECOVERY_SEED`` so the CI
fault-smoke matrix sweeps disjoint schedules while every run stays
reproducible: a failure names its seed, and re-running with that seed
replays the identical crash script.
"""

import json
import os
import random

import pytest

from repro import (
    AggressiveEngine,
    Attr,
    CrashError,
    Eq,
    Event,
    FaultInjector,
    InOrderEngine,
    OutOfOrderEngine,
    PartitionedEngine,
    Punctuation,
    ReorderingEngine,
    ResilientRunner,
    seq,
)
from repro.core.recovery import DELIVERED_NAME
from helpers import bounded_shuffle

SEED = int(os.environ.get("REPRO_RECOVERY_SEED", "0"))
SCENARIOS_PER_FAMILY = 6
K = 9

PATTERN = seq(
    "A a",
    "!B b",
    "C c",
    within=18,
    where=[Eq(Attr("a", "x"), Attr("c", "x"))],
    name="crashprop",
)

ENGINE_KINDS = ["ooo", "inorder", "reorder", "aggressive", "partitioned"]


def build(kind):
    if kind == "ooo":
        return OutOfOrderEngine(PATTERN, k=K)
    if kind == "inorder":
        return InOrderEngine(PATTERN)
    if kind == "reorder":
        return ReorderingEngine(PATTERN, k=K)
    if kind == "aggressive":
        return AggressiveEngine(PATTERN, k=K)
    if kind == "partitioned":
        return PartitionedEngine(PATTERN, k=K, key="x")
    raise AssertionError(kind)


def make_stream(kind, rng):
    n = rng.randint(180, 300)
    events = [
        Event(rng.choice("ABC"), ts, {"x": rng.randint(0, 2)})
        for ts in range(1, n + 1)
    ]
    if kind == "inorder":
        return events
    arrival = bounded_shuffle(events, k=K, seed=rng.randrange(2**30))
    if rng.random() < 0.5:
        arrival.insert(
            rng.randrange(len(arrival)), Punctuation(events[len(events) // 3].ts)
        )
    return arrival


def family_rng(kind):
    # str.__hash__ is per-process randomized; derive the per-family seed
    # from stable integers only.
    return random.Random(SEED * 1009 + ENGINE_KINDS.index(kind))


def run_to_completion(kind, directory, stream, interval, fault):
    """Crash/restart loop: what a supervisor does to a dying process."""
    restarts = 0
    while True:
        runner = ResilientRunner(
            build(kind), directory, checkpoint_every=interval, fault=fault
        )
        try:
            runner.run(stream)
            return runner, restarts
        except CrashError:
            restarts += 1
            assert restarts < 50, "crash schedule failed to drain"


@pytest.mark.parametrize("kind", ENGINE_KINDS)
class TestCrashAnywhere:
    def test_recovery_is_byte_identical(self, kind, tmp_path):
        rng = family_rng(kind)
        for case in range(SCENARIOS_PER_FAMILY):
            stream = make_stream(kind, rng)
            interval = rng.choice([1, 7, 25, 60, 500])
            crash_at = sorted(
                rng.sample(range(len(stream)), rng.randint(1, 3))
            )

            plain_dir = tmp_path / f"plain{case}"
            crash_dir = tmp_path / f"crash{case}"
            ResilientRunner(build(kind), plain_dir, checkpoint_every=interval).run(
                stream
            )
            fault = FaultInjector(crash_at=crash_at)
            runner, restarts = run_to_completion(
                kind, crash_dir, stream, interval, fault
            )

            context = f"kind={kind} seed={SEED} case={case} crash_at={crash_at} interval={interval}"
            assert restarts == len(crash_at), context
            assert (crash_dir / DELIVERED_NAME).read_bytes() == (
                plain_dir / DELIVERED_NAME
            ).read_bytes(), context

            # Exactly-once: no duplicate (seq, key) records.
            records = [
                json.loads(line)
                for line in (crash_dir / DELIVERED_NAME).read_text().splitlines()
            ]
            assert [r["seq"] for r in records] == list(range(len(records))), context
            keys = [json.dumps(r["key"]) for r in records]
            assert len(keys) == len(set(keys)), context

            # The delivered log agrees with a bare, never-checkpointed engine.
            bare = build(kind)
            bare.run(stream)
            assert len(records) == len(bare.results), context


def test_aggressive_net_results_survive_crashes(tmp_path):
    """Revoked matches stay revoked across a crash/restore boundary."""
    rng = random.Random(SEED + 7)
    stream = make_stream("aggressive", rng)
    crash_at = sorted(rng.sample(range(len(stream)), 2))

    bare = build("aggressive")
    bare.run(stream)

    fault = FaultInjector(crash_at=crash_at)
    runner, restarts = run_to_completion("aggressive", tmp_path, stream, 20, fault)
    assert restarts == 2
    assert runner.engine.net_result_set() == bare.net_result_set()
